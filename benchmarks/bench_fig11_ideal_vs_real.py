"""Figure 11: validating the Ideal models against "real" hardware models.

Paper's two properties: (1) the Ideal 32-core / Ideal GPU are always faster
than their real counterparts (they are upper bounds); (2) on real hardware
the GPU loses to the multicore on two of five benchmarks (Allstate, Mq2008),
confirming that irregularity limits real GPUs.
"""

from repro.sim.report import render_table

SYSTEMS = ["ideal-32-core", "real-32-core", "ideal-gpu", "real-gpu", "booster"]


def test_fig11_ideal_vs_real(benchmark, executor, emit):
    def build():
        out = {}
        for name in executor.all_datasets():
            cmp = executor.compare(name, systems=SYSTEMS)
            base = cmp.seconds("ideal-32-core")
            out[name] = {s: cmp.seconds(s) / base for s in SYSTEMS}
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, t in data.items():
        rows.append(
            [
                name,
                f"{t['ideal-32-core']:.2f}",
                f"{t['real-32-core']:.2f}",
                f"{t['ideal-gpu']:.2f}",
                f"{t['real-gpu']:.2f}",
                f"{t['booster']:.3f}",
                "yes" if t["real-gpu"] > t["real-32-core"] else "no",
            ]
        )
    table = render_table(
        ["dataset", "Ideal 32", "Real 32", "Ideal GPU", "Real GPU", "Booster", "GPU loses?"],
        rows,
        title="Fig. 11 -- execution time normalized to Ideal 32-core "
        "(paper: real GPU loses on Allstate and Mq2008)",
    )
    emit("fig11_ideal_vs_real", table)

    losers = [n for n, t in data.items() if t["real-gpu"] > t["real-32-core"]]
    assert sorted(losers) == ["allstate", "mq2008"]
    for name, t in data.items():
        assert t["real-32-core"] >= t["ideal-32-core"], name
        assert t["real-gpu"] >= t["ideal-gpu"], name
        assert t["ideal-gpu"] < t["ideal-32-core"], name  # ideal GPU always wins
