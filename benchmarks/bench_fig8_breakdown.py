"""Figure 8: execution-time breakdown normalized to Ideal 32-core.

Paper: the Ideal GPU shrinks the three accelerated steps modestly and leaves
step 2 alone; Booster makes the accelerated steps vanishingly small, leaving
a residual dominated by the unaccelerated step 2 / offload path.
"""

from repro.sim.report import render_table

SYSTEMS = ["ideal-32-core", "ideal-gpu", "booster"]


def test_fig8_execution_breakdown(benchmark, executor, emit):
    def build():
        out = {}
        for name in executor.all_datasets():
            cmp = executor.compare(name, systems=SYSTEMS)
            out[name] = {s: cmp.normalized_breakdown(s) for s in SYSTEMS}
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for name, by_system in data.items():
        for system in SYSTEMS:
            nb = by_system[system]
            rows.append(
                [
                    name if system == SYSTEMS[0] else "",
                    system,
                    f"{nb['step1']:.3f}",
                    f"{nb['step2']:.3f}",
                    f"{nb['step3']:.3f}",
                    f"{nb['step5']:.3f}",
                    f"{nb['other']:.3f}",
                    f"{nb['total']:.3f}",
                ]
            )
    table = render_table(
        ["dataset", "system", "step1", "step2", "step3", "step5", "other", "total"],
        rows,
        title="Fig. 8 -- per-step time normalized to Ideal 32-core total",
    )
    emit("fig8_breakdown", table)

    for name, by_system in data.items():
        gpu = by_system["ideal-gpu"]
        booster = by_system["booster"]
        # GPU halves the parallel steps, cannot touch step 2.
        assert 0.4 < gpu["step1"] / by_system["ideal-32-core"]["step1"] < 0.6, name
        assert gpu["step2"] >= by_system["ideal-32-core"]["step2"] * 0.99, name
        # Booster's accelerated steps are far smaller than the baseline's.
        base135 = sum(by_system["ideal-32-core"][k] for k in ("step1", "step3", "step5"))
        mine135 = sum(booster[k] for k in ("step1", "step3", "step5"))
        assert mine135 < 0.35 * base135, name
