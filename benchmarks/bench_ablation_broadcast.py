"""Ablation B: broadcast link fan-in and the micro/analytic validation.

The paper's broadcast is pipelined over point-to-point links (16 BUs/link ->
200-cycle fill, negligible against millions of records).  The sweep verifies
the fill latency is insensitive territory; the micro-simulation check mirrors
the paper's RTL validation of the rate-matching equations.
"""

import pytest

from repro.core import BroadcastBus, PAPER_CONFIG, simulate_step1_micro
from repro.datasets import dataset_spec
from repro.sim.report import render_table


def test_ablation_broadcast_fanin(benchmark, executor, emit):
    prof = executor.profile("higgs")

    def sweep():
        rows = []
        for fanin in (4, 8, 16, 32, 64):
            bus = BroadcastBus(PAPER_CONFIG, fanin=fanin)
            fill = bus.fill_cycles
            per_node_overhead = fill / 1e9  # seconds at 1 GHz
            nodes = prof.step2_evaluations()
            rows.append(
                [fanin, fill, f"{1e3 * per_node_overhead * nodes:.3f} ms"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["BUs/link", "fill cycles", "total fill time (500 trees)"],
        rows,
        title="Ablation B -- broadcast fan-in sweep (paper: 16 BUs/link, 200-cycle fill)",
    )
    emit("ablation_broadcast", table)
    fills = {r[0]: r[1] for r in rows}
    assert fills[16] == 200  # the paper's number


@pytest.mark.parametrize("name", ["higgs", "flight", "mq2008"])
def test_micro_pipeline_validates_analytic(benchmark, name, emit):
    spec = dataset_spec(name, n_records=1500)

    def run():
        return simulate_step1_micro(1500, spec)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["quantity", "cycles"],
        [
            ["micro-simulated", res.total_cycles],
            ["analytic rate-match", f"{res.analytic_cycles:.0f}"],
            ["memory stream", res.mem_cycles],
            ["relative error", f"{100 * res.relative_error:.1f}%"],
        ],
        title=f"Ablation B (cont.) -- step-1 micro vs analytic model ({name})",
    )
    emit(f"ablation_micro_{name}", table)
    assert res.relative_error < 0.15
