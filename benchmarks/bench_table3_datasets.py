"""Table III: dataset and model characteristics.

Regenerates the structural columns of the paper's Table III from the synthetic
registry (they must match exactly) plus our measured quantities: functional
training wall time at simulation scale and the modeled sequential training
time at paper scale (the paper's "Seq. Time (mins)" column analogue).
"""

from repro.datasets import paper_seq_minutes, table3_rows
from repro.sim.report import render_table


def test_table3_dataset_characteristics(benchmark, executor, emit):
    def build():
        rows = []
        for meta in table3_rows():
            name = meta["name"]
            prof = executor.profile(name)
            seq_minutes = executor.model("sequential").training_seconds(prof) / 60.0
            rows.append(
                [
                    name,
                    f"{meta['paper_records'] / 1e6:.0f}M",
                    meta["sim_records"],
                    meta["fields"],
                    meta["categorical_fields"],
                    meta["features_onehot"],
                    f"{seq_minutes:.1f}",
                    f"{paper_seq_minutes(name):.1f}",
                    meta["comment"],
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        [
            "name",
            "paper recs",
            "sim recs",
            "fields",
            "categ",
            "features",
            "model seq-min",
            "paper seq-min",
            "comment",
        ],
        rows,
        title="Table III -- dataset and model characteristics",
    )
    emit("table3_datasets", table)
    # Structural columns are exact reproductions.
    assert [r[3] for r in rows] == [115, 28, 32, 46, 8]
    assert [r[5] for r in rows] == [115, 28, 4232, 46, 666]
