"""Shared benchmark fixtures.

One session-scoped :class:`Executor` trains every benchmark dataset exactly
once; each bench file then derives its table/figure from the cached work
profiles.  Rendered tables go both to stdout (captured by pytest -s or the
bench log) and to ``results/<name>.txt`` so regenerated artifacts can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ScenarioSpec
from repro.gbdt import TrainParams
from repro.sim import Executor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Boosting rounds for the benchmark suite; per-tree work is homogeneous so
#: ratios are stable (tests assert the same shapes at 6 rounds).
BENCH_TREES = 10

#: The suite's experiment configuration, declared once; training artifacts
#: are served from the persistent cache across sessions.
BENCH_SCENARIO = ScenarioSpec(train=TrainParams(n_trees=BENCH_TREES))


@pytest.fixture(scope="session")
def executor():
    return Executor.from_scenario(BENCH_SCENARIO)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> str:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit
