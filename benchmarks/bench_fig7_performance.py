"""Figure 7: training speedups over the Ideal 32-core baseline.

Paper: Ideal GPU 1.6-1.9x; IR modest; Booster 4.6x (Flight) to 30.6x (IoT),
geometric mean 11.4x (6.4x over the Ideal GPU).
"""

from repro.sim import geomean
from repro.sim.report import render_table

PAPER_SPEEDUPS = {"iot": 30.6, "flight": 4.6}  # published per-benchmark points


def test_fig7_training_speedups(benchmark, executor, emit):
    def build():
        out = {}
        for name in executor.all_datasets():
            cmp = executor.compare(name)
            out[name] = {
                "gpu": cmp.speedup("ideal-gpu"),
                "ir": cmp.speedup("inter-record"),
                "booster": cmp.speedup("booster"),
            }
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for name, d in data.items():
        paper = PAPER_SPEEDUPS.get(name)
        rows.append(
            [
                name,
                f"{d['gpu']:.2f}x",
                f"{d['ir']:.2f}x",
                f"{d['booster']:.2f}x",
                f"{paper:.1f}x" if paper else "-",
            ]
        )
    g_b = geomean(d["booster"] for d in data.values())
    g_g = geomean(d["gpu"] for d in data.values())
    g_over_gpu = geomean(d["booster"] / d["gpu"] for d in data.values())
    rows.append(["geomean", f"{g_g:.2f}x", "-", f"{g_b:.2f}x", "11.4x"])
    table = render_table(
        ["dataset", "Ideal GPU", "Inter-record", "Booster", "paper (Booster)"],
        rows,
        title=(
            "Fig. 7 -- speedup over Ideal 32-core "
            f"(Booster over Ideal GPU geomean: {g_over_gpu:.2f}x, paper 6.4x)"
        ),
    )
    emit("fig7_performance", table)

    booster = {k: v["booster"] for k, v in data.items()}
    assert max(booster, key=booster.get) == "iot"
    assert min(booster, key=booster.get) == "flight"
    assert 8.0 < g_b < 16.0  # paper: 11.4x
    assert 4.0 < g_over_gpu < 10.0  # paper: 6.4x
    for name, d in data.items():
        assert 1.4 < d["gpu"] < 2.0, name
