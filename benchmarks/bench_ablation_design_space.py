"""Ablation A: BU count / SRAM size design space (Sec. III-B rate matching).

The paper sizes Booster so that on-chip work is rate-matched to DRAM:
3200 BUs at 8 cycles/field saturate 6.25 blocks/cycle.  This sweep shows the
knee: fewer BUs leave bandwidth unused (compute-bound), more BUs buy nothing
(memory-bound), and the area model prices each point.
"""

from repro.core import BoosterConfig, BoosterEngine
from repro.energy import AreaPowerModel
from repro.sim.report import render_table


def test_ablation_bu_count(benchmark, executor, emit):
    prof = executor.profile("higgs")
    base = executor.compare("higgs", systems=["ideal-32-core"]).seconds("ideal-32-core")
    area_model = AreaPowerModel()

    def sweep():
        rows = []
        for clusters in (2, 5, 10, 25, 50, 100, 200):
            cfg = BoosterConfig(n_clusters=clusters)
            engine = BoosterEngine(config=cfg, bandwidth=executor.bandwidth)
            total = engine.training_times(prof).total
            budget = area_model.estimate(n_bus=cfg.n_bus, n_clusters=clusters)
            rows.append(
                [
                    cfg.n_bus,
                    f"{base / total:.2f}x",
                    f"{budget.total_mm2:.1f}",
                    f"{budget.total_w:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["BUs", "speedup vs Ideal 32", "area mm2", "power W"],
        rows,
        title="Ablation A -- BU count sweep on Higgs (paper design point: 3200 BUs)",
    )
    emit("ablation_design_space", table)

    speedups = [float(r[1][:-1]) for r in rows]
    # Speedup grows steeply while compute-bound, then saturates at the
    # memory-bound knee; beyond it the extra BUs only add broadcast fill and
    # replica-reduction overheads, so the curve flattens (and may dip
    # slightly) -- the rate-matching argument for the paper's 3200-BU point.
    assert speedups[1] / speedups[0] > 1.2
    assert abs(speedups[-1] - speedups[-3]) / speedups[-3] < 0.05
    knee = max(speedups)
    assert knee / speedups[0] > 3.0
    assert speedups[4] > 0.95 * knee  # the paper's 3200-BU point sits on the plateau


def test_ablation_sram_size(benchmark, executor, emit):
    prof = executor.profile("allstate")
    base = executor.compare("allstate", systems=["ideal-32-core"]).seconds("ideal-32-core")
    area_model = AreaPowerModel()

    def sweep():
        rows = []
        for sram in (512, 1024, 2048, 4096, 8192):
            cfg = BoosterConfig(sram_bytes=sram)
            engine = BoosterEngine(config=cfg, bandwidth=executor.bandwidth)
            mapping = engine.bin_mapping(prof)
            total = engine.training_times(prof).total
            budget = area_model.estimate(sram_bytes=sram)
            rows.append(
                [
                    sram,
                    mapping.srams_per_copy,
                    mapping.replicas,
                    f"{base / total:.2f}x",
                    f"{budget.total_mm2:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["SRAM B", "SRAMs/copy", "replicas", "speedup", "area mm2"],
        rows,
        title="Ablation A (cont.) -- BU SRAM size sweep on Allstate "
        "(paper: 2 KB, 'the smallest that accommodates ... a field')",
    )
    emit("ablation_sram_size", table)
    # Bigger SRAMs cost area; the paper's 2 KB point should be near-optimal
    # in speedup-per-area terms for a 256-bin numerical field.
    areas = [float(r[4]) for r in rows]
    assert areas == sorted(areas)
