"""Figure 13: batch inference speedups over the Ideal 32-core.

Paper: 45x mean; the four deep-tree benchmarks cluster near 55.5x while IoT's
shallow trees land at 21.1x (Booster pays the max tree depth regardless,
while the CPU's work shrinks with the actual path length).
"""

from repro.sim import geomean
from repro.sim.report import render_table


def test_fig13_batch_inference(benchmark, executor, emit):
    def build():
        return {
            name: executor.inference(name).speedup("booster")
            for name in executor.all_datasets()
        }

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, f"{v:.1f}x", "21.1x" if name == "iot" else "~55.5x"]
        for name, v in data.items()
    ]
    mean = geomean(data.values())
    rows.append(["mean", f"{mean:.1f}x", "45x"])
    table = render_table(
        ["dataset", "Booster speedup", "paper"],
        rows,
        title="Fig. 13 -- batch inference over all records (500 trees, 6 tree replicas)",
    )
    emit("fig13_inference", table)

    deep = [v for n, v in data.items() if n != "iot"]
    assert max(deep) / min(deep) < 1.3  # deep-tree cluster behaves similarly
    assert data["iot"] < 0.8 * min(deep)  # the shallow-tree outlier
    assert 30.0 < mean < 65.0  # paper: 45x
