"""Figure 6: XGBoost sequential execution-time breakdown.

Paper claims: steps 1 (histogram binning), 3 (single-predicate), and
5 (one-tree traversal) constitute over 98% of sequential run time except for
Mq2008; IoT is the most step-1-heavy because of its shallow trees.
"""

from repro.sim.report import render_table


def test_fig6_sequential_breakdown(benchmark, executor, emit):
    def build():
        rows = []
        shares = {}
        for name in executor.all_datasets():
            st = executor.model("sequential").training_times(executor.profile(name))
            total = st.total
            shares[name] = {
                "s1": st.step1 / total,
                "s2": st.step2 / total,
                "s3": st.step3 / total,
                "s5": st.step5 / total,
            }
            rows.append(
                [
                    name,
                    f"{100 * st.step1 / total:.1f}%",
                    f"{100 * st.step2 / total:.2f}%",
                    f"{100 * st.step3 / total:.1f}%",
                    f"{100 * st.step5 / total:.1f}%",
                    f"{total / 60:.1f} min",
                ]
            )
        return rows, shares

    rows, shares = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["dataset", "step1", "step2", "step3", "step5", "total (paper-scale)"],
        rows,
        title="Fig. 6 -- sequential training-time breakdown "
        "(paper: steps 1/3/5 >98% except Mq2008; IoT step-1-heavy)",
    )
    emit("fig6_seq_breakdown", table)

    for name in ("iot", "higgs", "allstate", "flight"):
        s = shares[name]
        assert s["s1"] + s["s3"] + s["s5"] > 0.95, name
    # Mq2008's step-2 share is the largest of the five.
    assert shares["mq2008"]["s2"] == max(s["s2"] for s in shares.values())
    # IoT is the most step-1-dominated benchmark.
    assert shares["iot"]["s1"] == max(s["s1"] for s in shares.values())
