"""Figure 12: sensitivity to dataset size (10x scaled records).

Paper: at 10x the Ideal GPU's speedup stays modest (<2x) while Booster's
range improves from 4.6-30.6x to 9.8-61.5x (geomean 11.4 -> 27.9).  Our
model reproduces the direction for every benchmark; the magnitude of the
growth is weaker (see EXPERIMENTS.md for the accounting).
"""

from repro.sim import geomean
from repro.sim.report import render_table


def test_fig12_dataset_scaling(benchmark, executor, emit):
    def build():
        out = {}
        for name in executor.all_datasets():
            base = executor.compare(name, systems=["ideal-32-core", "ideal-gpu", "booster"])
            scaled = executor.compare(
                name,
                systems=["ideal-32-core", "ideal-gpu", "booster"],
                extra_scale=10.0,
            )
            out[name] = {
                "base": base.speedup("booster"),
                "scaled": scaled.speedup("booster"),
                "gpu_scaled": scaled.speedup("ideal-gpu"),
            }
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{d['base']:.2f}x",
            f"{d['scaled']:.2f}x",
            f"{d['scaled'] / d['base']:.2f}",
            f"{d['gpu_scaled']:.2f}x",
        ]
        for name, d in data.items()
    ]
    g1 = geomean(d["base"] for d in data.values())
    g10 = geomean(d["scaled"] for d in data.values())
    rows.append(["geomean", f"{g1:.2f}x", f"{g10:.2f}x", f"{g10 / g1:.2f}", "-"])
    table = render_table(
        ["dataset", "Booster 1x", "Booster 10x", "growth", "GPU 10x"],
        rows,
        title="Fig. 12 -- 10x dataset scaling (paper: geomean 11.4 -> 27.9, GPU flat)",
    )
    emit("fig12_scaling", table)

    for name, d in data.items():
        assert d["scaled"] > d["base"], name  # every benchmark improves
        assert d["gpu_scaled"] < 2.0, name  # GPU remains modest
    assert g10 > 1.2 * g1
