"""Table VI: ASIC area and power estimates for the 3200-BU Booster chip.

Paper (45 nm, 1 GHz): control 8.4 mm^2 / 4.3 W, FPU 18.4 / 9.5, SRAM
33.1 / 9.4, total 60.0 mm^2 / 23.2 W.  The model is calibrated at this design
point and must land within 2%.
"""

import pytest

from repro.energy import TABLE6, AreaPowerModel
from repro.sim.report import render_table


def test_table6_area_power(benchmark, emit):
    model = AreaPowerModel()
    budget = benchmark(model.estimate)
    paper = [TABLE6["control"], TABLE6["fpu"], TABLE6["sram"], TABLE6["total"]]
    rows = []
    for (name, area, power), (ref_a, ref_p) in zip(budget.rows(), paper):
        rows.append([name, f"{area:.1f}", f"{ref_a:.1f}", f"{power:.1f}", f"{ref_p:.1f}"])
    table = render_table(
        ["component", "area mm2", "paper", "power W", "paper"],
        rows,
        title="Table VI -- Booster ASIC area/power (45 nm, 1 GHz)",
    )
    emit("table6_area_power", table)
    assert budget.total_mm2 == pytest.approx(60.0, rel=0.02)
    assert budget.total_w == pytest.approx(23.2, rel=0.02)


def test_table6_banking_facts(benchmark, emit):
    # The two structural claims behind the SRAM row (Sec. V-G): 3200 banks
    # cost ~70% more area and ~59% more power than a 1-bank 6.4 MB array.
    model = AreaPowerModel()
    many = benchmark(model.estimate)
    one = model.estimate(n_bus=1, n_clusters=1, sram_bytes=3200 * 2048)
    area_ratio = many.sram_mm2 / one.sram_mm2
    power_ratio = many.sram_w / one.sram_w
    table = render_table(
        ["quantity", "model", "paper"],
        [
            ["3200-bank / 1-bank SRAM area", f"{area_ratio:.2f}", "~1.70"],
            ["3200-bank / 1-bank SRAM power", f"{power_ratio:.2f}", "~1.59"],
        ],
        title="Table VI (cont.) -- SRAM banking overheads",
    )
    emit("table6_banking", table)
    assert area_ratio == pytest.approx(1.70, rel=0.03)
    assert power_ratio == pytest.approx(1.59, rel=0.03)
