"""The full reproduction claim checklist in one artifact.

Runs :func:`repro.sim.validate.validate_all` -- the machine-readable version
of EXPERIMENTS.md -- and renders the per-claim verdicts.  Any model-stack
regression that moves a result out of its acceptance band fails here.
"""

from repro.sim.validate import report, validate_all


def test_claims_checklist(benchmark, executor, emit):
    claims = benchmark.pedantic(lambda: validate_all(executor), rounds=1, iterations=1)
    emit("claims_checklist", report(claims))
    failing = [c for c in claims if not c.passed]
    assert not failing, f"failing claims: {[(c.exp_id, c.name) for c in failing]}"
