"""Table V: hardware parameters and normalized SRAM access energies.

The normalized-energy column (1.00 / 2.64 / 0.71) must reproduce exactly:
the CACTI-like model is calibrated at precisely these published points.
"""

from repro.energy import SRAMEnergyModel
from repro.sim.calibrate import DEFAULT_COSTS
from repro.sim.report import render_table


def test_table5_hardware_parameters(benchmark, emit):
    c = DEFAULT_COSTS
    model = SRAMEnergyModel()

    def build():
        return [
            ["Ideal Multicore", "32 cores", f"{c.cpu_clock_ghz}", "32 KB L1D",
             f"{model.normalized(32 * 1024, 1):.2f}"],
            ["Ideal GPU", "64 (64-wide) SMs", f"{c.gpu_clock_ghz}", "96 KB shared (32-bank)",
             f"{model.normalized(96 * 1024, 32):.2f}"],
            ["Booster", "3200 BUs", f"{c.booster_clock_ghz}", "2 KB BU SRAM",
             f"{model.normalized(2 * 1024, 1):.2f}"],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "cores/units", "clock GHz", "SRAM", "energy (norm.)"],
        rows,
        title="Table V -- hardware parameters (paper energies: 1.00 / 2.64 / 0.71)",
    )
    emit("table5_hwparams", table)
    assert [r[-1] for r in rows] == ["1.00", "2.64", "0.71"]
