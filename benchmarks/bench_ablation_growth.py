"""Ablation C: vertex-by-vertex vs level-by-level growth on Booster.

The paper assumes vertex-by-vertex growth and notes the level-by-level
alternative "maintains a separate histogram per vertex" (Sec. II-A).  Both
schedules build the identical model; on Booster they trade off differently:
level-wise batches a level's split decisions into one host round trip
(cheaper offload) but keeps one histogram per live vertex resident, eating
the replicas that vertex-wise growth spends on inter-record parallelism
(slower step 1).
"""

from repro.datasets import dataset_spec, generate
from repro.gbdt import TrainParams, train, train_level_wise
from repro.sim.executor import PAPER_TREES
from repro.sim.report import render_table


def test_ablation_growth_strategy(benchmark, executor, emit):
    def build():
        rows = []
        for name in ("higgs", "flight"):
            data = generate(dataset_spec(name, n_records=4000))
            params = TrainParams(n_trees=6)
            engine = executor.model("booster")
            out = {}
            for label, fn in (("vertex", train), ("level", train_level_wise)):
                prof = fn(data, params).profile
                k = prof.spec.paper_records / prof.spec.n_records
                prof = prof.scaled(k).with_trees_scaled(PAPER_TREES)
                st = engine.training_times(prof)
                out[label] = st
            rows.append(
                [
                    name,
                    f"{out['vertex'].step1:.3f}",
                    f"{out['level'].step1:.3f}",
                    f"{out['vertex'].other:.3f}",
                    f"{out['level'].other:.3f}",
                    f"{out['vertex'].total:.3f}",
                    f"{out['level'].total:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        [
            "dataset",
            "step1 vertex (s)",
            "step1 level",
            "offload vertex",
            "offload level",
            "total vertex",
            "total level",
        ],
        rows,
        title="Ablation C -- growth schedule on Booster "
        "(level-wise: cheaper offload, costlier step-1 residency)",
    )
    emit("ablation_growth", table)

    for row in rows:
        assert float(row[2]) >= float(row[1])  # step 1: level >= vertex
        assert float(row[4]) <= float(row[3])  # offload: level <= vertex
