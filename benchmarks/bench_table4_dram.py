"""Table IV: DRAM configuration and the ~400 GB/s sustained-bandwidth claim.

Runs the cycle-level DRAM model on the calibration patterns and regenerates
the configuration table plus the measured sustained bandwidths ("This memory
achieves a sustained bandwidth of about 400 GB/s", Sec. IV).
"""

from repro.memory import DRAMConfig, DRAMSimulator, gather_blocks, sequential
from repro.sim.report import render_table


def test_table4_dram_configuration(benchmark, emit):
    cfg = benchmark(DRAMConfig)
    table = render_table(
        ["parameter", "value"],
        [
            ["channels", cfg.n_channels],
            ["banks/channel", cfg.n_banks],
            ["row size", f"{cfg.row_bytes} B"],
            ["tCAS-tRP-tRCD-tRAS", f"{cfg.t_cas}-{cfg.t_rp}-{cfg.t_rcd}-{cfg.t_ras}"],
            ["block", f"{cfg.block_bytes} B"],
            ["peak bandwidth", f"{cfg.peak_gbps:.0f} GB/s"],
        ],
        title="Table IV -- DRAM configuration",
    )
    emit("table4_dram_config", table)
    assert (cfg.t_cas, cfg.t_rp, cfg.t_rcd, cfg.t_ras) == (12, 12, 12, 28)


def test_table4_sustained_bandwidth(benchmark, emit):
    sim = DRAMSimulator()

    def run_stream():
        return sim.run(sequential(24_000))

    stats = benchmark(run_stream)
    rows = [["sequential stream", f"{stats.sustained_gbps:.1f}", f"{stats.row_hit_rate:.3f}"]]
    for density in (0.5, 0.1, 0.02):
        g = sim.run(gather_blocks(int(24_000 / density), density, seed=17))
        rows.append(
            [f"gather density {density:4.2f}", f"{g.sustained_gbps:.1f}", f"{g.row_hit_rate:.3f}"]
        )
    table = render_table(
        ["pattern", "sustained GB/s", "row hit rate"],
        rows,
        title="Table IV (cont.) -- measured sustained bandwidth (paper: ~400 GB/s)",
    )
    emit("table4_dram_bandwidth", table)
    assert 360 < stats.sustained_gbps <= 384
