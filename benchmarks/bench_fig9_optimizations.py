"""Figure 9: isolating Booster's optimizations.

Three Booster variants over the Ideal 32-core: (1) no-opts (naive bin
packing, row-major only), (2) + group-by-field mapping (helps only the
categorical benchmarks, Allstate/Flight), (3) + redundant column-major
format (helps everywhere, most where speedups are already high).
"""

from repro.sim.report import render_table

VARIANTS = ["booster-no-opts", "booster-group-by-field", "booster"]


def test_fig9_optimization_ablation(benchmark, executor, emit):
    def build():
        out = {}
        for name in executor.all_datasets():
            cmp = executor.compare(name, systems=["ideal-32-core"] + VARIANTS)
            out[name] = [cmp.speedup(v) for v in VARIANTS]
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, f"{no:.2f}x", f"{gf:.2f}x", f"{full:.2f}x"]
        for name, (no, gf, full) in data.items()
    ]
    table = render_table(
        ["dataset", "no-opts", "+group-by-field", "+column format"],
        rows,
        title="Fig. 9 -- contribution of Booster's optimizations (speedup over Ideal 32-core)",
    )
    emit("fig9_optimizations", table)

    for name, (no, gf, full) in data.items():
        assert no <= gf * 1.001 <= full * 1.001, name
    # Mapping helps exactly the categorical benchmarks (Sec. V-C).
    assert data["allstate"][1] > data["allstate"][0] * 1.05
    for name in ("iot", "higgs", "mq2008"):
        assert abs(data[name][1] - data[name][0]) / data[name][0] < 0.02
