"""Figure 10: SRAM and DRAM energy, averaged over benchmarks.

Paper: Ideal GPU's SRAM energy exceeds the multicore's (banked 96 KB shared
memory vs 32 KB L1); Booster's 2 KB SRAMs are cheaper; CPU and GPU move
identical DRAM bytes while Booster moves fewer (column-major format).
Booster is strictly lower in both, hence lower total energy regardless of
the SRAM:DRAM ratio.
"""

import numpy as np

from repro.energy import EnergyModel
from repro.sim.report import render_table


def test_fig10_energy_comparison(benchmark, executor, emit):
    em = EnergyModel()

    def build():
        sram = {s: [] for s in ("ideal-32-core", "ideal-gpu", "booster")}
        dram = {s: [] for s in ("ideal-32-core", "ideal-gpu", "booster")}
        for name in executor.all_datasets():
            cmp = em.compare(executor.profile(name))
            base_s = cmp["ideal-32-core"].sram_joules
            base_d = cmp["ideal-32-core"].dram_joules
            for s, e in cmp.items():
                sram[s].append(e.sram_joules / base_s)
                dram[s].append(e.dram_joules / base_d)
        return (
            {s: float(np.mean(v)) for s, v in sram.items()},
            {s: float(np.mean(v)) for s, v in dram.items()},
        )

    sram, dram = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [s, f"{sram[s]:.2f}", f"{dram[s]:.2f}"] for s in sram
    ]
    table = render_table(
        ["system", "SRAM energy (norm.)", "DRAM energy (norm.)"],
        rows,
        title="Fig. 10 -- energy vs Ideal 32-core, mean over benchmarks "
        "(paper: GPU SRAM higher, Booster lower in both)",
    )
    emit("fig10_energy", table)

    assert sram["ideal-gpu"] > 2.0  # banked shared memory penalty
    assert sram["booster"] < 0.8
    assert abs(dram["ideal-gpu"] - 1.0) < 1e-9  # same blocks as the CPU
    assert dram["booster"] < 0.8  # column-format byte savings
