#!/usr/bin/env bash
# End-to-end CLI smokes for the sweep layer, shared by CI and local runs.
#
#   REPRO_CACHE_DIR=/tmp/repro-ci-cache bash scripts/ci_smoke.sh
#
# Each section exercises one operational story against the real CLI:
#   1. interrupt + --resume (zero retrain / zero re-simulate)
#   2. static --shard partition + merge == unsharded sweep
#   3. cost-balanced sharding (plan comparison + merge equivalence)
#   4. work stealing over a shared lease directory (two concurrent
#      workers, both claim work, merge == unsharded, one lease/scenario)
#   5. repro bench --quick (emitted document validates against the bench
#      schema; no absolute-time assertions -- wall times are host-specific)
#   6. repro lint --deep: the whole-tree pass stays green against the
#      committed baseline inside its wall-clock budget, and the seeded
#      cross-function regression is caught by --deep but missed by the
#      shallow per-file rules
#   7. serving sweep (--serve): cold run trains once, warm replay is
#      zero re-simulation, the latency tail diverges from the mean under
#      load (saturation), and serving manifests merge with inference
#      manifests side by side
#   8. work stealing over a remote store URL (repro store-serve + two
#      workers sharing nothing but http://...; merge == unsharded, the
#      served directory holds one done lease per scenario)
#
# Everything lands under /tmp (*.jsonl manifests, *.log transcripts) so a
# failing CI run can upload the lot as artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_CACHE_DIR="${REPRO_CACHE_DIR:-/tmp/repro-ci-cache}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SWEEP="python -m repro.cli sweep --serial --trees 2 --dataset mq2008 --axis max_depth=2,3 --systems ideal-32-core booster"

echo "=== smoke 1/8: sweep interrupt + resume ==="
$SWEEP --out /tmp/sweep.jsonl
# Simulate an interrupted run: drop the manifest's second line.
head -n 1 /tmp/sweep.jsonl > /tmp/sweep.partial && mv /tmp/sweep.partial /tmp/sweep.jsonl
$SWEEP --out /tmp/sweep.jsonl --resume | tee /tmp/resume.log
# The resumed run must not retrain or re-simulate anything.
if grep -q '\[trained\]' /tmp/resume.log; then echo 'resume retrained!' >&2; exit 1; fi
grep -q 'resume: 1/2 scenarios already in' /tmp/resume.log
grep -q '\[stored\]' /tmp/resume.log
python -c 'import json; lines = [json.loads(l) for l in open("/tmp/sweep.jsonl")]; assert len(lines) == 2 and all(l["error"] is None for l in lines), lines; assert lines[1]["stored"] is True, "resumed scenario was re-simulated"'

echo "=== smoke 2/8: sharded sweep + merge ==="
$SWEEP --out /tmp/full.jsonl
# The same sweep as two shards: a disjoint cover of the scenario list,
# each shard streaming its own manifest.
$SWEEP --shard 1/2 --out /tmp/shard1.jsonl | tee /tmp/shards.log
$SWEEP --shard 2/2 --out /tmp/shard2.jsonl | tee -a /tmp/shards.log
# The shards run against the warm store: zero retraining.
if grep -q '\[trained\]' /tmp/shards.log; then echo 'shard retrained!' >&2; exit 1; fi
python -m repro.cli merge /tmp/merged.jsonl /tmp/shard1.jsonl /tmp/shard2.jsonl
python -m repro.cli report --from-manifest /tmp/merged.jsonl
# The merged manifest must match the unsharded run line for line (up to
# order and execution provenance).
python -c 'import json; load = lambda p: {d["cache_key"]: d for d in map(json.loads, open(p))}; full = load("/tmp/full.jsonl"); merged = load("/tmp/merged.jsonl"); assert set(full) == set(merged), (sorted(full), sorted(merged)); assert all(m["error"] is None and m["comparison"] == full[k]["comparison"] and m["scenario"] == full[k]["scenario"] for k, m in merged.items()), "merged manifest diverges from the unsharded sweep"; print(f"merged manifest matches the unsharded sweep ({len(merged)} scenarios)")'

echo "=== smoke 3/8: cost-balanced sharding ==="
# On a heterogeneous sweep (trees x record scale spanning two orders of
# magnitude), the cost-balanced partition must predict a strictly smaller
# max shard cost than the hash partition.
PLAN="python -m repro.cli plan --dataset mq2008 --trees 2 --axis n_trees=50,400 --axis scale=1,8 --shards 2"
$PLAN --balance cost | tee /tmp/plan-cost.log
$PLAN --balance hash | tee /tmp/plan-hash.log
python -c 'maxcost = lambda p: float([l for l in open(p) if l.startswith("predicted max shard cost:")][0].split(":")[1].split("(")[0]); cost, hash_ = maxcost("/tmp/plan-cost.log"), maxcost("/tmp/plan-hash.log"); assert cost < hash_, (cost, hash_); print(f"cost balance wins: max shard cost {cost:g} < {hash_:g}")'
# A 2-shard --balance cost sweep + merge equals the unsharded run (same
# invariant the hash shards satisfy above; /tmp/full.jsonl is reused).
$SWEEP --shard 1/2 --balance cost --out /tmp/cshard1.jsonl | tee /tmp/cshards.log
$SWEEP --shard 2/2 --balance cost --out /tmp/cshard2.jsonl | tee -a /tmp/cshards.log
if grep -q '\[trained\]' /tmp/cshards.log; then echo 'cost shard retrained!' >&2; exit 1; fi
python -m repro.cli merge /tmp/cmerged.jsonl /tmp/cshard1.jsonl /tmp/cshard2.jsonl
python -m repro.cli report --from-manifest /tmp/cmerged.jsonl
python -c 'import json; load = lambda p: {d["cache_key"]: d for d in map(json.loads, open(p))}; full = load("/tmp/full.jsonl"); merged = load("/tmp/cmerged.jsonl"); assert set(full) == set(merged), (sorted(full), sorted(merged)); assert all(m["error"] is None and m["comparison"] == full[k]["comparison"] and m["scenario"] == full[k]["scenario"] for k, m in merged.items()), "cost-balanced merge diverges from the unsharded sweep"; print(f"cost-balanced merge matches the unsharded sweep ({len(merged)} scenarios)")'

echo "=== smoke 4/8: work stealing over a shared lease directory ==="
# Two workers drain ONE sweep through lease files in a shared directory.
# A cold cache makes every scenario cost real training time, so both
# workers reliably get to claim work (a warm store would let the first
# worker drain the whole sweep in milliseconds).
export REPRO_CACHE_DIR=/tmp/repro-ci-steal-cache
rm -rf /tmp/repro-ci-steal-cache /tmp/steal-coord
STEAL_AXES="--axis max_depth=2,3,4,5,6,7"
STEAL="python -m repro.cli sweep --serial --trees 2 --dataset mq2008 $STEAL_AXES --systems ideal-32-core booster --coordinate /tmp/steal-coord --lease-ttl 300"
$STEAL --out /tmp/steal-w1.jsonl > /tmp/steal-w1.log 2>&1 &
W1=$!
$STEAL --out /tmp/steal-w2.jsonl | tee /tmp/steal-w2.log
wait "$W1"
cat /tmp/steal-w1.log
python -m repro.cli steal-status /tmp/steal-coord | tee /tmp/steal-status.log
# Both workers must have claimed at least one scenario.
grep -Eq 'steal: claimed [1-9][0-9]*/6' /tmp/steal-w1.log
grep -Eq 'steal: claimed [1-9][0-9]*/6' /tmp/steal-w2.log
# The union of the worker manifests equals the unsharded sweep, and the
# lease directory shows exactly one (done) lease per scenario.
python -m repro.cli sweep --serial --trees 2 --dataset mq2008 $STEAL_AXES --systems ideal-32-core booster --out /tmp/steal-full.jsonl > /tmp/steal-full.log
python -m repro.cli merge /tmp/steal-merged.jsonl /tmp/steal-w1.jsonl /tmp/steal-w2.jsonl
python -c 'import json, pathlib; load = lambda p: {d["cache_key"]: d for d in map(json.loads, open(p))}; full = load("/tmp/steal-full.jsonl"); merged = load("/tmp/steal-merged.jsonl"); assert set(full) == set(merged), (sorted(full), sorted(merged)); assert all(m["error"] is None and m["comparison"] == full[k]["comparison"] and m["scenario"] == full[k]["scenario"] for k, m in merged.items()), "steal-mode merge diverges from the unsharded sweep"; leases = list(pathlib.Path("/tmp/steal-coord").glob("*.lease")); assert len(leases) == len(full), (len(leases), len(full)); assert all(json.loads(p.read_bytes())["done"] for p in leases), "undone lease left behind"; print(f"steal-mode merge matches the unsharded sweep ({len(merged)} scenarios, {len(leases)} leases, all done)")'

echo "=== smoke 5/8: quick bench + schema validation ==="
# The bench validates before writing; re-validating the file from a fresh
# process proves the committed-trajectory read path too.  Shape only --
# never absolute times (host-specific).  CI uploads the document as an
# artifact so perf on the CI host is observable over time.
python -m repro.cli bench --quick --repeats 2 --out /tmp/bench-quick.json
python -c "import json; from repro.experiments.bench import validate_bench; doc = json.load(open('/tmp/bench-quick.json')); validate_bench(doc); assert doc['quick'] is True; print('bench document valid:', len(doc['cells']), 'cells')"

echo "=== smoke 6/8: deep lint (interprocedural pass) ==="
# (a) The whole-tree deep pass is green against the committed baseline and
# inside the wall-clock budget the pre-commit hook depends on.
timeout 10 python -m repro.devtools src tests --deep --baseline lint-baseline.json
# (b) The seeded regression: a helper returning time.time() feeds a cache
# key across a function boundary.  The shallow per-file rules are clean on
# it; --deep reports RPR101 with the witness chain.
DEEPDIR=/tmp/deep-lint-smoke
rm -rf "$DEEPDIR" && mkdir -p "$DEEPDIR/src/repro"
cp tests/data/lint_fixtures/rpr101_cross_function.py.txt "$DEEPDIR/src/repro/freshness.py"
python -m repro.devtools "$DEEPDIR/src"
if python -m repro.devtools "$DEEPDIR/src" --deep > /tmp/deep-miss.log; then
  echo 'deep lint missed the seeded cross-function regression!' >&2; exit 1
fi
grep -q 'RPR101' /tmp/deep-miss.log
grep -q 'via cache_key -> _freshness_stamp' /tmp/deep-miss.log
echo "deep lint caught the cross-function clock (shallow pass was clean)"

echo "=== smoke 7/8: serving sweep (latency tail under load) ==="
# records_per_request=20000 puts the ideal-32-core design point's serving
# capacity at ~112 qps, so arrival_qps=100,400 straddles it: the cool row
# is stationary, the hot row saturates and the tail diverges from the mean.
export REPRO_CACHE_DIR=/tmp/repro-ci-serve-cache
rm -rf /tmp/repro-ci-serve-cache
SERVE="python -m repro.cli sweep --serial --trees 2 --dataset mq2008 --systems ideal-32-core booster --serve --serve-duration 2.0 --axis records_per_request=20000 --axis arrival_qps=100,400"
$SERVE --out /tmp/serve.jsonl | tee /tmp/serve.log
grep -q '\[trained\]' /tmp/serve.log   # cold cache: the design point trains once
# Warm replay: zero retraining, zero re-simulation, both rows [stored].
$SERVE --out /tmp/serve-warm.jsonl | tee /tmp/serve-warm.log
if grep -q '\[trained\]' /tmp/serve-warm.log; then echo 'warm serving sweep retrained!' >&2; exit 1; fi
test "$(grep -c '\[stored\]' /tmp/serve-warm.log)" -eq 2
python -c 'import json; rows = [json.loads(l) for l in open("/tmp/serve.jsonl")]; assert len(rows) == 2 and all(r["error"] is None and r["kind"] == "serving" for r in rows), rows; by_qps = {r["scenario"]["serving"]["qps"]: r["serving"]["systems"] for r in rows}; hot = by_qps[400.0]["ideal-32-core"]; assert hot["saturated"] and hot["sustained_qps"] < hot["offered_qps"], hot; assert hot["p99_ms"] > 1.5 * hot["mean_ms"] > 0, (hot["p99_ms"], hot["mean_ms"]); cool = by_qps[100.0]["ideal-32-core"]; assert not cool["saturated"], cool; assert cool["p99_ms"] > 2 * cool["mean_ms"] > 0, (cool["p99_ms"], cool["mean_ms"]); assert by_qps[400.0]["booster"]["p99_ms"] < hot["p99_ms"], "booster tail should beat the baseline"; ratio = cool["p99_ms"] / cool["mean_ms"]; print("tail diverges under load: cool p99/mean %.2fx, hot saturated at %.0f/%.0f qps" % (ratio, hot["sustained_qps"], hot["offered_qps"]))'
# Serving manifests merge with inference manifests side by side; report
# renders one table per kind.
python -m repro.cli sweep --serial --trees 2 --dataset mq2008 --systems ideal-32-core booster --inference --axis max_depth=2 --out /tmp/serve-inf.jsonl
python -m repro.cli merge /tmp/serve-mixed.jsonl /tmp/serve.jsonl /tmp/serve-inf.jsonl | tee /tmp/serve-merge.log
grep -q 'kinds: inference+serving' /tmp/serve-merge.log
python -m repro.cli report --from-manifest /tmp/serve-mixed.jsonl | tee /tmp/serve-report.log
grep -q 'p99 (ms)' /tmp/serve-report.log
grep -q 'booster (ms)' /tmp/serve-report.log

echo "=== smoke 8/8: work stealing over a remote store URL ==="
# The smoke-4 story again, but the workers share nothing except the URL
# of a `repro store-serve` process: leases, the sweep descriptor, and
# steal-status all travel over HTTP, and each worker keeps a private
# (cold) local cache -- no shared filesystem anywhere.
rm -rf /tmp/remote-store /tmp/repro-ci-remote-w1 /tmp/repro-ci-remote-w2
python -m repro.cli store-serve /tmp/remote-store --port 0 > /tmp/store-serve.log 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT
for _ in $(seq 50); do grep -q 'store-serve: serving' /tmp/store-serve.log && break; sleep 0.1; done
STORE_URL=$(sed -n 's/.* at \(http:[^ ]*\)$/\1/p' /tmp/store-serve.log)
test -n "$STORE_URL"
REMOTE="python -m repro.cli sweep --serial --trees 2 --dataset mq2008 $STEAL_AXES --systems ideal-32-core booster --coordinate $STORE_URL --lease-ttl 300"
REPRO_CACHE_DIR=/tmp/repro-ci-remote-w1 $REMOTE --out /tmp/remote-w1.jsonl > /tmp/remote-w1.log 2>&1 &
RW1=$!
REPRO_CACHE_DIR=/tmp/repro-ci-remote-w2 $REMOTE --out /tmp/remote-w2.jsonl | tee /tmp/remote-w2.log
wait "$RW1"
cat /tmp/remote-w1.log
python -m repro.cli steal-status "$STORE_URL" | tee /tmp/remote-status.log
# Both workers must have claimed at least one scenario over the wire.
grep -Eq 'steal: claimed [1-9][0-9]*/6' /tmp/remote-w1.log
grep -Eq 'steal: claimed [1-9][0-9]*/6' /tmp/remote-w2.log
# The union of the worker manifests equals the unsharded sweep (smoke 4
# already produced it), and the *served directory* -- a plain local store
# the whole time -- holds exactly one done lease per scenario.
python -m repro.cli merge /tmp/remote-merged.jsonl /tmp/remote-w1.jsonl /tmp/remote-w2.jsonl
python -c 'import json, pathlib; load = lambda p: {d["cache_key"]: d for d in map(json.loads, open(p))}; full = load("/tmp/steal-full.jsonl"); merged = load("/tmp/remote-merged.jsonl"); assert set(full) == set(merged), (sorted(full), sorted(merged)); assert all(m["error"] is None and m["comparison"] == full[k]["comparison"] and m["scenario"] == full[k]["scenario"] for k, m in merged.items()), "remote-store merge diverges from the unsharded sweep"; leases = list(pathlib.Path("/tmp/remote-store").glob("*.lease")); assert len(leases) == len(full), (len(leases), len(full)); assert all(json.loads(p.read_bytes())["done"] for p in leases), "undone lease left behind"; print(f"remote-store merge matches the unsharded sweep ({len(merged)} scenarios, {len(leases)} leases, all done)")'
kill "$SRV" && trap - EXIT

echo "all sweep smokes passed"
