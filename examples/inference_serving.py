#!/usr/bin/env python
"""Batch-inference serving study (Sec. III-D / Fig. 13).

For each benchmark, sizes a Booster deployment for offline batch scoring:
how many records per second one chip sustains with 500 trees (6 on-chip
ensemble replicas), how that compares to the Ideal 32-core, and how the
multi-chip round-robin extension behaves when the ensemble outgrows a chip.

Usage::

    python examples/inference_serving.py
"""

from repro.core import BoosterConfig, BoosterEngine
from repro.experiments import ScenarioSpec
from repro.gbdt import TrainParams
from repro.sim import Executor, geomean
from repro.sim.report import render_table


def main() -> None:
    executor = Executor.from_scenario(ScenarioSpec(train=TrainParams(n_trees=10)))

    print("== Batch inference: one chip, 500 trees ==\n")
    rows = []
    speedups = []
    for name in executor.all_datasets():
        result = executor.inference(name)
        booster_s = result.seconds["booster"]
        cpu_s = result.seconds["ideal-32-core"]
        prof = executor.profile(name)
        throughput = prof.n_records / booster_s
        speedups.append(result.speedup("booster"))
        rows.append(
            [
                name,
                f"{prof.n_records / 1e6:.0f}M",
                f"{booster_s * 1e3:.1f} ms",
                f"{cpu_s * 1e3:.0f} ms",
                f"{throughput / 1e6:.0f}M rec/s",
                f"{result.speedup('booster'):.1f}x",
            ]
        )
    print(
        render_table(
            ["dataset", "records", "Booster", "Ideal 32-core", "throughput", "speedup"],
            rows,
        )
    )
    print(f"\nmean speedup: {geomean(speedups):.1f}x (paper Fig. 13: 45x mean, "
          "~55.5x deep trees, 21.1x IoT)")

    # -- ensembles larger than one chip (Sec. III-D last paragraph) ---------------
    print("\n== Multi-chip round-robin for very large ensembles ==\n")
    from repro.gbdt import EnsemblePredictor

    result = executor.train_result("higgs")  # served from the cache: trained above
    data = executor.dataset("higgs")  # the memoized training dataset, reused
    predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
    engine = BoosterEngine(config=BoosterConfig(), bandwidth=executor.bandwidth)
    rows = []
    for n_trees in (500, 2000, 3200, 6400, 12800):
        work = predictor.inference_work(data, n_trees_target=n_trees)
        work = work.scaled(work.spec.paper_records / work.n_records)
        seconds = engine.inference_seconds(work)
        chips = max(1, -(-n_trees // engine.config.n_bus))
        rows.append([n_trees, chips, f"{seconds * 1e3:.1f} ms"])
    print(render_table(["trees", "chips", "batch time (10M records)"], rows))
    print("\ntrees beyond 3200 spill to additional chips in round-robin;")
    print("latency stays flat because every chip walks its trees in parallel.")


if __name__ == "__main__":
    main()
