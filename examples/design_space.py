#!/usr/bin/env python
"""Accelerator design-space exploration with the area/power model.

Sweeps Booster chip configurations (cluster count x SRAM size) on one
workload and prints the speedup / area / power frontier, annotating the
paper's published design point (50 clusters x 64 BUs x 2 KB = 60 mm^2,
23.2 W).  Demonstrates how the rate-matching argument (Sec. III-B) shows up
as a knee in the curve: past the point where on-chip throughput saturates
DRAM bandwidth, silicon buys nothing.

Usage::

    python examples/design_space.py [dataset]
"""

import sys

from repro.core import BoosterConfig, BoosterEngine
from repro.energy import AreaPowerModel
from repro.experiments import ScenarioSpec
from repro.gbdt import TrainParams
from repro.sim import Executor
from repro.sim.report import render_table


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "higgs"
    scenario = ScenarioSpec(dataset=dataset, train=TrainParams(n_trees=10))
    executor = Executor.from_scenario(scenario)
    profile = executor.profile(dataset)
    baseline = executor.model("ideal-32-core").training_seconds(profile)
    area_model = AreaPowerModel()

    rows = []
    best = None
    for clusters in (5, 10, 25, 50, 100):
        for sram_kb in (1, 2, 4):
            cfg = BoosterConfig(n_clusters=clusters, sram_bytes=sram_kb * 1024)
            engine = BoosterEngine(config=cfg, bandwidth=executor.bandwidth)
            mapping = engine.bin_mapping(profile)
            seconds = engine.training_times(profile).total
            speedup = baseline / seconds
            budget = area_model.estimate(
                n_bus=cfg.n_bus, n_clusters=clusters, sram_bytes=cfg.sram_bytes
            )
            efficiency = speedup / budget.total_mm2
            tag = " <= paper" if (clusters, sram_kb) == (50, 2) else ""
            rows.append(
                [
                    f"{clusters}x64",
                    f"{sram_kb} KB",
                    mapping.replicas,
                    f"{speedup:.2f}x",
                    f"{budget.total_mm2:.1f}",
                    f"{budget.total_w:.1f}",
                    f"{efficiency:.3f}{tag}",
                ]
            )
            if best is None or efficiency > best[0]:
                best = (efficiency, clusters, sram_kb)

    print(f"== Booster design space on {dataset} (speedup vs Ideal 32-core) ==\n")
    print(
        render_table(
            ["clusters", "BU SRAM", "replicas", "speedup", "area mm2", "power W", "speedup/mm2"],
            rows,
        )
    )
    assert best is not None
    print(
        f"\nbest speedup-per-area: {best[1]} clusters at {best[2]} KB "
        f"({best[0]:.3f} x/mm2)"
    )
    print("note the saturation past the DRAM rate-matching knee (Sec. III-B):")
    print("once on-chip throughput covers 6.25 blocks/cycle, extra BUs only add area.")


if __name__ == "__main__":
    main()
