#!/usr/bin/env python
"""Regenerate every paper table and figure in one run.

Thin wrapper around :mod:`repro.sim.artifacts` (the same builders the
benchmark suite and the ``repro figures`` CLI command use), so a reader can
see the whole reproduction without pytest.

Usage::

    python examples/paper_repro.py          # all artifacts
    python examples/paper_repro.py fig7     # just one
"""

import sys

from repro.experiments import ScenarioSpec
from repro.gbdt import TrainParams
from repro.sim.artifacts import ARTIFACTS, build_all
from repro.sim.executor import Executor


def main() -> None:
    wanted = sys.argv[1:] or list(ARTIFACTS)
    unknown = [w for w in wanted if w not in ARTIFACTS]
    if unknown:
        raise SystemExit(f"unknown artifacts {unknown}; choose from {sorted(ARTIFACTS)}")
    executor = Executor.from_scenario(ScenarioSpec(train=TrainParams(n_trees=10)))
    print(build_all(executor, wanted))


if __name__ == "__main__":
    main()
