#!/usr/bin/env python
"""Quickstart: train a GBDT model and compare hardware on identical work.

Runs the full pipeline on the Higgs-like benchmark at simulation scale:

1. synthesize the dataset (same structure as the paper's Table III row),
2. train a gradient-boosted tree ensemble with the instrumented trainer,
3. extrapolate the measured work profile to the paper's 10M-record /
   500-tree operating point,
4. time the Ideal 32-core, Ideal GPU, Inter-record ASIC, and Booster on it.

Usage::

    python examples/quickstart.py [dataset]

where ``dataset`` is one of: iot, higgs, allstate, mq2008, flight.
"""

import sys

from repro.experiments import ScenarioSpec
from repro.gbdt import TrainParams
from repro.sim import Executor


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "higgs"
    print(f"== Booster reproduction quickstart: {dataset} ==\n")

    # Declare the experiment once; the executor facade runs it.  Training is
    # served from the persistent profile cache on repeat runs.
    scenario = ScenarioSpec(dataset=dataset, train=TrainParams(n_trees=10))
    executor = Executor.from_scenario(scenario)

    result = executor.train_result(dataset)
    summary = result.profile.summary()
    print("functional training (simulation scale):")
    print(f"  records={summary['records']}  fields={summary['fields']}  "
          f"bins={summary['total_bins']}  trees trained={summary['trees']}")
    print(f"  loss: {result.losses[0]:.4f} -> {result.losses[-1]:.4f}")
    print(f"  mean leaf depth: {summary['mean_leaf_depth']}  "
          f"smaller-child fraction: {summary['smaller_child_fraction']}")
    print(f"  wall time: {result.profile.train_seconds_wall:.2f} s\n")

    comparison = executor.compare(dataset)
    print("hardware comparison (paper scale: Table III records, 500 trees):")
    print(comparison.table())

    booster = comparison.speedup("booster")
    gpu = comparison.speedup("ideal-gpu")
    print(f"\nBooster: {booster:.1f}x over the Ideal 32-core, "
          f"{booster / gpu:.1f}x over the Ideal GPU")
    print("(paper, Fig. 7: geomean 11.4x over the 32-core, 6.4x over the GPU)")


if __name__ == "__main__":
    main()
