#!/usr/bin/env python
"""The paper's running example: a frequent-flier table (Figs. 1, 2, 4).

Builds the fictional airline dataset the paper uses to explain GB training --
two categorical fields (membership tier, seat preference) and a numerical
field (frequent-flier miles) -- then walks through exactly the artifacts the
figures show:

* Fig. 2: fields, one-hot features, and histogram bins;
* Fig. 3: the left/right cumulative split scan at the root;
* Fig. 4: group-by-field vs naive packing of bins into 2 KB SRAMs;
* Fig. 1: the trained two-tree ensemble predicting for two customers.

Usage::

    python examples/frequent_flier.py
"""

import numpy as np

from repro.core import BoosterConfig, group_by_field_mapping, naive_packing_mapping
from repro.datasets import DatasetSpec, FieldKind, FieldSpec, TaskKind, generate
from repro.gbdt import GBDTTrainer, TrainParams
from repro.sim.report import render_table


def build_dataset() -> DatasetSpec:
    """The Fig. 2 schema: tier and seat are categorical, miles is numerical."""
    return DatasetSpec(
        name="frequent-flier",
        fields=(
            FieldSpec(
                name="tier",
                kind=FieldKind.CATEGORICAL,
                n_categories=3,  # silver / gold / platinum
                skew=0.8,
                target_weight=1.2,
                missing_rate=0.05,  # not every customer enrolled
            ),
            FieldSpec(
                name="seat_pref",
                kind=FieldKind.CATEGORICAL,
                n_categories=2,  # aisle / window
                target_weight=0.4,
            ),
            FieldSpec(
                name="ffmiles",
                kind=FieldKind.NUMERICAL,
                n_bins=6,  # the figure draws six bins for readability
                target_weight=1.5,
            ),
        ),
        n_records=4000,
        task=TaskKind.BINARY,  # e.g. "will buy an upgrade"
        noise=0.25,
        seed=42,
    )


def main() -> None:
    spec = build_dataset()
    data = generate(spec)

    print("== Fig. 2: fields, features, bins ==")
    rows = [
        [f.name, f.kind.value, f.n_features, f.n_value_bins, f.missing_bin]
        for f in spec.fields
    ]
    print(render_table(["field", "kind", "onehot features", "value bins", "absent bin"], rows))
    print(f"\ntotal one-hot features: {spec.n_features}, total bins: {spec.n_total_bins}")

    # -- Fig. 3: split scan at the root -------------------------------------------
    trainer = GBDTTrainer(data, TrainParams(n_trees=2, max_depth=3))
    g, h = trainer.loss.gradients(
        np.full(data.n_records, trainer.loss.base_margin(data.y)), data.y
    )
    hist = trainer.builder.build(np.arange(data.n_records), g, h)
    decision = trainer.searcher.best_split(hist, float(g.sum()), float(h.sum()), data.n_records)
    field = spec.fields[decision.field]
    kind = "category ==" if decision.is_categorical else "bin <="
    print("\n== Fig. 3: best root split from the cumulative scan ==")
    print(
        f"predicate: {field.name} {kind} {decision.threshold_bin} "
        f"(missing goes {'left' if decision.missing_left else 'right'}), "
        f"gain={decision.gain:.1f}, left/right records = "
        f"{decision.count_left:.0f}/{decision.count_right:.0f}"
    )

    # -- Fig. 4: bin-to-SRAM mapping -----------------------------------------------
    # A toy config with 8-bin SRAMs, mirroring the figure's illustration
    # (the figure draws 6-bin SRAMs; 8 is our minimum SRAM granularity).
    toy = BoosterConfig(n_clusters=1, bus_per_cluster=8, sram_bytes=8 * 8)
    grouped = group_by_field_mapping(spec, toy)
    naive = naive_packing_mapping(spec, toy)
    print("\n== Fig. 4: mapping bins to 8-entry SRAMs ==")
    print(render_table(
        ["strategy", "SRAMs/copy", "max updates per SRAM per record"],
        [
            [grouped.strategy, grouped.srams_per_copy, f"{grouped.serialization:.2f}"],
            [naive.strategy, naive.srams_per_copy, f"{naive.serialization:.2f}"],
        ],
    ))
    print("(naive packing serializes several fields' updates in one SRAM;")
    print(" group-by-field guarantees exactly one update per SRAM per record)")

    # -- Fig. 1: the two-tree ensemble predicting ------------------------------------
    result = trainer.fit()
    red, blue = data.codes[:1], data.codes[1:2]
    print("\n== Fig. 1: tree-ensemble prediction for two customers ==")
    for label, record in (("red", red), ("blue", blue)):
        weak = [float(t.predict(record)[0]) for t in result.trees]
        strong = result.predict(record)[0]
        print(
            f"customer {label}: weak predictions {[round(w, 3) for w in weak]} "
            f"-> strong prediction {strong:.3f}"
        )
    print(f"\ntraining losses per round: {np.round(result.losses, 4).tolist()}")


if __name__ == "__main__":
    main()
