"""repro: reproduction of *Booster: An Accelerator for Gradient Boosting
Decision Trees* (He, Vijaykumar, Thottethodi; arXiv:2011.02022).

Layered design (see DESIGN.md):

* ``repro.datasets`` -- benchmark schemas, synthetic generators, memory layouts;
* ``repro.gbdt``     -- from-scratch instrumented histogram-GBDT trainer;
* ``repro.memory``   -- cycle-level DRAM model (Table IV configuration);
* ``repro.core``     -- the Booster accelerator model (the paper's contribution);
* ``repro.baselines``-- Ideal/Real 32-core, Ideal/Real GPU, Inter-record ASIC;
* ``repro.energy``   -- CACTI-like SRAM model, DRAM energy, ASIC area/power;
* ``repro.sim``      -- end-to-end experiment executor and report rendering.

Quickstart::

    from repro import quick_compare
    result = quick_compare("higgs")
    print(result.table())
"""

__version__ = "1.0.0"

__all__ = ["quick_compare", "__version__"]


def __getattr__(name: str) -> object:
    # Lazy import keeps `import repro.datasets` cheap and avoids importing
    # the whole simulator stack for dataset-only users.
    if name == "quick_compare":
        from .sim.executor import quick_compare

        return quick_compare
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
