"""Project indexer and call graph for the whole-program (``--deep``) lint pass.

The per-file rules in :mod:`repro.devtools.rules` go blind the moment an
invariant crosses a function boundary: ``cache_key()`` calling a helper
that calls ``time.time()`` is invisible to a same-function heuristic.
This module supplies the missing whole-program view, still pure stdlib:

* :class:`ProjectIndex` -- a module/symbol table over every ``src/repro``
  file in the lint set: top-level functions, classes with their methods
  and bases, import aliases (``from x import y as z``), and module-level
  name aliases (``_scenario_key = scenario_key``);
* :class:`CallGraph` -- call edges between fully-qualified functions
  (``repro.experiments.steal:Coordinator.claim``), built by resolving
  direct calls, imported names, ``self.``/``cls.`` methods, constructor
  calls (edges to ``__init__`` *and* ``__post_init__``), and attribute
  calls typed through one level of local inference (parameter annotations
  and ``x = ClassName(...)`` assignments).

Resolution is deliberately best-effort: a call that cannot be resolved
degrades to an ``unknown`` edge recording the call text -- never a crash
-- and a last-resort ``heuristic`` edge is added when a method name has
exactly one project-wide definition (common receiver-blind dispatch).
Consumers (:mod:`.taint`, :mod:`.effects`, :mod:`.leasecheck`) choose
whether heuristic edges participate.  The graph serializes to JSON
(``repro lint --graph-out``) and round-trips via :meth:`CallGraph.from_dict`
-- minus the live AST nodes, which only the in-process checkers need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .lint import FileContext

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
]

GRAPH_VERSION = 1

#: Attribute names too generic for the unique-name heuristic fallback:
#: resolving ``x.get(...)`` to *the* project function named ``get`` would
#: fabricate edges through every dict in the tree.
_HEURISTIC_BLACKLIST = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "encode",
        "extend",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "load",
        "open",
        "pop",
        "put",
        "read",
        "remove",
        "run",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "wait",
        "write",
    }
)


def module_name_for(posix: str) -> str | None:
    """Dotted module name for a source path, or ``None`` when not package code.

    ``src/repro/experiments/steal.py`` maps to ``repro.experiments.steal``;
    an ``__init__.py`` maps to its package.  Works on any path whose POSIX
    form contains a ``src/`` segment (fixture trees included) or starts
    with ``repro/``.
    """
    parts = posix.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif parts and parts[0] == "repro":
        pass
    else:
        return None
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method, addressable by fully-qualified name."""

    qualname: str  # "repro.experiments.steal:Coordinator.claim"
    module: str  # "repro.experiments.steal"
    name: str  # "Coordinator.claim" (module-local dotted name)
    path: str  # source path as linted (what reports print)
    lineno: int
    class_name: str | None = None  # owning class, methods only
    returns: str | None = None  # return-annotation text, if any
    node: ast.FunctionDef | ast.AsyncFunctionDef | None = None  # live AST

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "path": self.path,
            "lineno": self.lineno,
            "class_name": self.class_name,
            "returns": self.returns,
        }

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(d["qualname"]),
            module=str(d["module"]),
            name=str(d["name"]),
            path=str(d["path"]),
            lineno=int(d["lineno"]),  # type: ignore[call-overload]
            class_name=None if d.get("class_name") is None else str(d["class_name"]),
            returns=None if d.get("returns") is None else str(d["returns"]),
        )


@dataclass
class ClassInfo:
    """One class: its methods (by bare name) and base-class name texts."""

    name: str
    module: str
    lineno: int
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


@dataclass(frozen=True)
class CallEdge:
    """One call site: caller/callee qualnames plus resolution provenance.

    ``kind`` is ``direct`` (name/import/alias resolution), ``method``
    (``self``/``cls``/typed-receiver dispatch), ``heuristic`` (unique
    project-wide method-name match), or ``unknown`` -- in which case
    ``callee`` is ``"?<call text>"`` rather than a qualname.
    """

    caller: str
    callee: str
    line: int
    kind: str = "direct"

    @property
    def resolved(self) -> bool:
        return self.kind != "unknown"


def _unparse(node: ast.AST | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:
        return ""


def _annotation_class(text: str | None) -> str | None:
    """Extract a plausible class name from an annotation text.

    Handles quoted forward references, ``X | None`` unions, and
    ``Optional[X]``; anything more structured (generics over project
    classes, unions of two classes) resolves to ``None`` -- the analysis
    simply loses that receiver, it never guesses.
    """
    if not text:
        return None
    text = text.strip().strip("'\"")
    for prefix in ("Optional[", "typing.Optional["):
        if text.startswith(prefix) and text.endswith("]"):
            text = text[len(prefix) : -1].strip().strip("'\"")
    if "|" in text:
        parts = [p.strip().strip("'\"") for p in text.split("|")]
        parts = [p for p in parts if p not in ("None", "")]
        if len(parts) != 1:
            return None
        text = parts[0]
    if not text.replace(".", "").isidentifier():
        return None
    return text


class ModuleInfo:
    """Symbol table for one module: defs, classes, imports, aliases."""

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        #: whether this module is a package ``__init__`` (relative imports
        #: anchor at the package itself rather than its parent)
        self.is_package = ctx.posix.endswith("__init__.py")
        #: top-level functions by bare name
        self.functions: dict[str, FunctionInfo] = {}
        #: classes by bare name
        self.classes: dict[str, ClassInfo] = {}
        #: local name -> "dotted.module" or "dotted.module:object"
        self.imports: dict[str, str] = {}
        #: module-level ``a = b`` name aliases (``_scenario_key = scenario_key``)
        self.aliases: dict[str, str] = {}
        #: names bound by module-level assignments, with the defining line
        #: (the state the effects checker watches for worker-side mutation)
        self.module_vars: dict[str, int] = {}

    def _index(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    qualname=f"{self.name}:{node.name}",
                    module=self.name,
                    name=node.name,
                    path=self.ctx.rel,
                    lineno=node.lineno,
                    returns=_unparse(node.returns) or None,
                    node=node,
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_vars.setdefault(target.id, node.lineno)
                if len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and isinstance(node.value, ast.Name):
                        self.aliases[target.id] = node.value.id
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.module_vars.setdefault(node.target.id, node.lineno)
        # Function bodies may import too (lazy imports are idiomatic here:
        # they break cycles and keep worker startup lean); those names are
        # function-local at runtime but safe to resolve module-wide, since
        # the tree has no same-name conflicts between lazy and top imports.
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)

    def _index_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports.setdefault(local, target)
            return
        base = node.module or ""
        if node.level:
            # Relative import: climb from this module's package.  A plain
            # module's package is itself minus the leaf; a package
            # ``__init__`` IS its package, so it climbs one level less.
            pkg_parts = self.name.split(".")
            climb = node.level - (1 if self.is_package else 0)
            anchor = pkg_parts[: len(pkg_parts) - climb]
            base = ".".join(anchor + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = f"{base}:{alias.name}" if base else alias.name
            self.imports.setdefault(local, target)

    def _index_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            module=self.name,
            lineno=node.lineno,
            bases=tuple(_unparse(b) for b in node.bases),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = FunctionInfo(
                    qualname=f"{self.name}:{node.name}.{item.name}",
                    module=self.name,
                    name=f"{node.name}.{item.name}",
                    path=self.ctx.rel,
                    lineno=item.lineno,
                    class_name=node.name,
                    returns=_unparse(item.returns) or None,
                    node=item,
                )
        self.classes[node.name] = info


class ProjectIndex:
    """All indexed modules, with cross-module symbol resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._bare_name_index: dict[str, tuple[FunctionInfo, ...]] | None = None

    def by_bare_name(self) -> dict[str, tuple[FunctionInfo, ...]]:
        """All defs grouped by bare name (for the unique-name heuristic)."""
        if self._bare_name_index is None:
            grouped: dict[str, list[FunctionInfo]] = {}
            for info in self.functions():
                grouped.setdefault(info.name.split(".")[-1], []).append(info)
            self._bare_name_index = {k: tuple(v) for k, v in grouped.items()}
        return self._bare_name_index

    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ProjectIndex":
        index = cls()
        for ctx in contexts:
            name = module_name_for(ctx.posix)
            if name is None:
                continue
            module = ModuleInfo(name, ctx)
            module._index()
            index.modules[name] = module
        return index

    def functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()
            for klass in module.classes.values():
                yield from klass.methods.values()

    # -- symbol resolution -----------------------------------------------------

    def resolve_class(self, module: str, name: str) -> ClassInfo | None:
        """Resolve a (possibly imported or dotted) class name seen in ``module``."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        name = name.strip().strip("'\"")
        if name in mod.classes:
            return mod.classes[name]
        if name in mod.imports:
            target = mod.imports[name]
            if ":" in target:
                target_mod, obj = target.split(":", 1)
                inner = self.modules.get(target_mod)
                if inner is not None and obj in inner.classes:
                    return inner.classes[obj]
        if "." in name:
            head, _, attr = name.rpartition(".")
            target_mod_name = self._imported_module(module, head)
            if target_mod_name is not None:
                inner = self.modules.get(target_mod_name)
                if inner is not None and attr in inner.classes:
                    return inner.classes[attr]
        return None

    def resolve_method(
        self, klass: ClassInfo, method: str, depth: int = 0
    ) -> FunctionInfo | None:
        """Look ``method`` up on ``klass``, walking resolvable bases (bounded)."""
        if method in klass.methods:
            return klass.methods[method]
        if depth >= 4:
            return None
        for base in klass.bases:
            base_info = self.resolve_class(klass.module, base)
            if base_info is not None:
                found = self.resolve_method(base_info, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _imported_module(self, module: str, local: str) -> str | None:
        """The dotted module a local name refers to, if it names a module."""
        mod = self.modules.get(module)
        if mod is None or local not in mod.imports:
            return None
        target = mod.imports[local]
        if ":" in target:
            # ``from repro.experiments import cache`` indexes as
            # "repro.experiments:cache" -- which is the module
            # "repro.experiments.cache" if that exists.
            dotted = target.replace(":", ".")
            return dotted if dotted in self.modules else None
        return target if target in self.modules else None

    def resolve_name(
        self, module: str, name: str, _depth: int = 0
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a bare or dotted name seen in ``module`` to a def or class."""
        mod = self.modules.get(module)
        if mod is None or _depth > 4:
            return None
        if name in mod.functions:
            return mod.functions[name]
        if name in mod.classes:
            return mod.classes[name]
        if name in mod.aliases:
            return self.resolve_name(module, mod.aliases[name], _depth + 1)
        if name in mod.imports:
            target = mod.imports[name]
            if ":" in target:
                target_mod, obj = target.split(":", 1)
                dotted = f"{target_mod}.{obj}"
                if dotted in self.modules:
                    return None  # a module, not a callable
                if target_mod in self.modules:
                    return self.resolve_name(target_mod, obj, _depth + 1)
            return None
        if "." in name:
            head, _, attr = name.rpartition(".")
            target_mod_name = self._imported_module(module, head)
            if target_mod_name is not None:
                return self.resolve_name(target_mod_name, attr, _depth + 1)
        return None


class _FunctionResolver:
    """Per-function call resolution with one level of local type inference."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.types: dict[str, ClassInfo] = {}
        node = info.node
        assert node is not None
        if info.class_name is not None:
            owner = index.resolve_class(info.module, info.class_name)
            if owner is not None:
                self.types["self"] = owner
                self.types["cls"] = owner
        for arg in list(node.args.args) + list(node.args.kwonlyargs) + list(
            node.args.posonlyargs
        ):
            klass = self._class_from_annotation(_unparse(arg.annotation))
            if klass is not None:
                self.types.setdefault(arg.arg, klass)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    klass = self._type_of_expr(stmt.value)
                    if klass is not None:
                        self.types[target.id] = klass
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                klass = self._class_from_annotation(_unparse(stmt.annotation))
                if klass is not None:
                    self.types[stmt.target.id] = klass

    def _class_from_annotation(self, text: str | None) -> ClassInfo | None:
        name = _annotation_class(text)
        if name is None:
            return None
        return self.index.resolve_class(self.info.module, name)

    def _type_of_expr(self, expr: ast.AST) -> ClassInfo | None:
        """Type of ``ClassName(...)`` / ``factory(...)`` result expressions."""
        if not isinstance(expr, ast.Call):
            return None
        resolved = self._resolve_callable(expr.func)
        if isinstance(resolved, ClassInfo):
            return resolved
        if isinstance(resolved, FunctionInfo):
            return self._class_from_annotation(resolved.returns)
        return None

    def _resolve_callable(
        self, func: ast.AST
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a call's ``func`` expression to a project def or class."""
        index, module = self.index, self.info.module
        if isinstance(func, ast.Name):
            return index.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                receiver = self.types.get(value.id)
                if receiver is not None:
                    return index.resolve_method(receiver, attr)
                klass = index.resolve_class(module, value.id)
                if klass is not None:  # ClassName.method / classmethod call
                    return index.resolve_method(klass, attr)
                target_mod = index._imported_module(module, value.id)
                if target_mod is not None:
                    return index.resolve_name(target_mod, attr)
                return None
            if isinstance(value, ast.Attribute):
                # Dotted module attribute: pkg.mod.func
                return index.resolve_name(module, _unparse(func))
            if isinstance(value, ast.Call):
                receiver = self._type_of_expr(value)
                if receiver is not None:
                    return index.resolve_method(receiver, attr)
            return None
        return None

    def edges(self) -> Iterator[CallEdge]:
        node = self.info.node
        assert node is not None
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            resolved = self._resolve_callable(inner.func)
            line = inner.lineno
            if isinstance(resolved, FunctionInfo):
                kind = "method" if resolved.class_name is not None else "direct"
                yield CallEdge(self.info.qualname, resolved.qualname, line, kind)
                continue
            if isinstance(resolved, ClassInfo):
                # Constructor: control flows through __init__ and (dataclass
                # validation) __post_init__ when defined.
                emitted = False
                for hook in ("__init__", "__post_init__"):
                    method = self.index.resolve_method(resolved, hook)
                    if method is not None:
                        emitted = True
                        yield CallEdge(self.info.qualname, method.qualname, line, "method")
                if not emitted:
                    yield CallEdge(
                        self.info.qualname, f"?{_unparse(inner.func)}", line, "unknown"
                    )
                continue
            # Heuristic fallback: a method call on an untyped receiver whose
            # name has exactly one project-wide definition.
            if isinstance(inner.func, ast.Attribute):
                attr = inner.func.attr
                if attr not in _HEURISTIC_BLACKLIST and len(attr) > 3:
                    matches = self._unique_named(attr)
                    if matches is not None:
                        yield CallEdge(
                            self.info.qualname, matches.qualname, line, "heuristic"
                        )
                        continue
            yield CallEdge(
                self.info.qualname, f"?{_unparse(inner.func)}", line, "unknown"
            )

    def _unique_named(self, name: str) -> FunctionInfo | None:
        matches = self.index.by_bare_name().get(name, ())
        return matches[0] if len(matches) == 1 else None


class CallGraph:
    """Functions plus resolved call edges; the deep checkers' substrate."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: list[CallEdge] = []
        self._out: dict[str, list[CallEdge]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls()
        for info in index.functions():
            graph.functions[info.qualname] = info
        for info in list(graph.functions.values()):
            if info.node is None:
                continue
            for edge in _FunctionResolver(index, info).edges():
                graph.edges.append(edge)
                graph._out.setdefault(edge.caller, []).append(edge)
        return graph

    def callees(self, qualname: str) -> list[CallEdge]:
        return self._out.get(qualname, [])

    def reachable(
        self,
        starts: Sequence[str],
        include_heuristic: bool = True,
    ) -> dict[str, tuple[str, ...]]:
        """Functions reachable from ``starts`` via resolved call edges.

        Returns ``{qualname: witness}`` where ``witness`` is the call chain
        (qualnames, starting at one of ``starts``) along which the function
        was first reached -- BFS, so the chain is a shortest path and makes
        a readable diagnostic.
        """
        seen: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for start in starts:
            if start in self.functions and start not in seen:
                seen[start] = (start,)
                queue.append(start)
        while queue:
            current = queue.pop(0)
            for edge in self.callees(current):
                if not edge.resolved:
                    continue
                if edge.kind == "heuristic" and not include_heuristic:
                    continue
                if edge.callee in seen or edge.callee not in self.functions:
                    continue
                seen[edge.callee] = seen[current] + (edge.callee,)
                queue.append(edge.callee)
        return seen

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "version": GRAPH_VERSION,
            "n_functions": len(self.functions),
            "n_edges": len(self.edges),
            "functions": [
                info.to_dict() for _, info in sorted(self.functions.items())
            ],
            "edges": [
                [e.caller, e.callee, e.line, e.kind]
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.line, e.callee)
                )
            ],
        }

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "CallGraph":
        if d.get("version") != GRAPH_VERSION:
            raise ValueError(f"unsupported call-graph version: {d.get('version')!r}")
        graph = cls()
        for raw in d.get("functions", []):  # type: ignore[union-attr]
            info = FunctionInfo.from_dict(raw)
            graph.functions[info.qualname] = info
        for caller, callee, line, kind in d.get("edges", []):  # type: ignore[misc, union-attr]
            edge = CallEdge(str(caller), str(callee), int(line), str(kind))
            graph.edges.append(edge)
            graph._out.setdefault(edge.caller, []).append(edge)
        return graph
