"""The ``RPR`` rule set: one class per machine-checked project invariant.

Each rule guards an invariant that has already caused (or nearly caused) a
real bug in the orchestration stack; the rule docstring states the
invariant, and ``docs/development.md`` carries the full catalogue with
example violations and the suppression policy.  Rules are deliberately
narrow: they pattern-match the specific idioms this codebase uses, not
Python in general, so a hit is nearly always a real hazard and the rare
false positive is silenced inline with a documented ``# repro: noqa``.

Path scoping is by POSIX path suffix/segments (``src/repro/...``), so
fixture tests can reproduce any rule's scope under a temporary directory.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .lint import FileContext, Violation

__all__ = ["ALL_RULES", "VECTORIZED_PAIRS"]

#: Registry of vectorized/reference twins whose names do not follow the
#: ``X`` / ``X_reference`` (or ``X_vectorized`` / ``X_reference``) naming
#: convention.  RPR004 verifies each pair exists and is equivalence-tested
#: exactly like a convention pair -- the registry replaces per-site
#: exemptions, it does not grant any.
#:
#: Entries: (source module path suffix, fast name, reference name).
VECTORIZED_PAIRS: tuple[tuple[str, str, str], ...] = (
    ("gbdt/split.py", "best_split_many", "best_split"),
    ("gbdt/histogram.py", "build_grouped", "build"),
    ("core/engine.py", "_admit_records_vectorized", "_admit_records_scalar"),
    ("memory/dram.py", "run", "run_reference"),
)

#: Identifier tokens that mark a path expression as pointing into a store,
#: cache, or lease directory (the directories whose write protocol is owned
#: by :mod:`repro.experiments.cache`).
_STORE_TOKEN = re.compile(r"\b(root|lease|store|cache)\b|\.lease")

#: Method names that mutate a container in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "extend",
    "insert",
    "remove",
    "discard",
}

_WRITE_MODE = re.compile(r"[wax]")


def _unparse(node: ast.AST | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:
        return ""


class _Scope:
    """One lexical scope (module or function) with its simple assignments."""

    def __init__(self, node: ast.AST) -> None:
        self.node = node
        self.assigns: dict[str, str] = {}
        self.nodes: list[ast.AST] = []


def _scopes(tree: ast.Module) -> list[_Scope]:
    """Split a module into scopes, attributing every node to the nearest one.

    Nested functions own their bodies; a node appears in exactly one
    scope's ``nodes`` list.  ``assigns`` maps a name to the unparsed source
    of its most recent simple assignment in that scope -- one level of
    dataflow, enough to see through ``tmp = self.root / ...`` before
    ``tmp.write_bytes(...)``.
    """
    scopes: list[_Scope] = []

    def visit(node: ast.AST, scope: _Scope) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = _Scope(child)
                scopes.append(inner)
                inner.nodes.append(child)
                visit(child, inner)
            else:
                scope.nodes.append(child)
                if isinstance(child, ast.Assign) and len(child.targets) == 1:
                    target = child.targets[0]
                    if isinstance(target, ast.Name):
                        scope.assigns[target.id] = _unparse(child.value)
                elif isinstance(child, ast.AnnAssign) and child.value is not None:
                    if isinstance(child.target, ast.Name):
                        scope.assigns[child.target.id] = _unparse(child.value)
                visit(child, scope)

    module_scope = _Scope(tree)
    scopes.append(module_scope)
    visit(tree, module_scope)
    return scopes


def _expanded(expr: ast.AST | None, scope: _Scope) -> str:
    """Unparse ``expr``, substituting one level of local assignments."""
    text = _unparse(expr)
    if isinstance(expr, ast.Name) and expr.id in scope.assigns:
        text = f"{text} = {scope.assigns[expr.id]}"
    return text


def _call_name(node: ast.Call) -> str:
    return _unparse(node.func)


def _is_store_path(text: str) -> bool:
    return bool(_STORE_TOKEN.search(text))


#: Modules that *implement* the blessed store-write protocol (atomic
#: temp+rename publication, create-exclusive hard links, flat-name
#: validation).  They necessarily contain the raw writes every other
#: module is forbidden, so the store-discipline rules exempt them.
_PROTOCOL_MODULES = ("experiments/backend.py", "experiments/cache.py")


def _implements_store_protocol(ctx: FileContext) -> bool:
    return any(ctx.module_is(suffix) for suffix in _PROTOCOL_MODULES)


def _defined_functions(ctx: FileContext) -> dict[str, int]:
    """Function/method names defined in a file, mapped to their first line."""
    out: dict[str, int] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, node.lineno)
    return out


def _word_in(name: str, source: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", source) is not None


class Rule:
    """Base class: per-file rules implement :meth:`check`."""

    code = "RPR999"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code, path=ctx.rel, line=getattr(node, "lineno", 1), message=message
        )


class RawStoreWrite(Rule):
    """RPR001: raw writes into store/cache/lease directories.

    Every file that lands in a shared store, cache, or lease directory
    must go through :func:`repro.experiments.cache.atomic_write_bytes` (or
    ``KeyedStore.put``): a raw ``open(.., "w")``/``write_text``/
    ``write_bytes``/``os.rename`` can expose a partial file to a
    concurrent sweep worker -- the provenance race that bit PR 2.  The
    rule flags write calls whose target path expression (one assignment
    level expanded) mentions a store-directory token (``root``/``lease``/
    ``store``/``cache``); ``experiments/backend.py`` and
    ``experiments/cache.py`` -- the modules that *implement* the blessed
    protocol -- are exempt.
    """

    code = "RPR001"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src() or _implements_store_protocol(ctx):
            return
        for scope in _scopes(ctx.tree):
            for node in scope.nodes:
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                target: str | None = None
                what = ""
                if name == "open" and node.args:
                    mode = ""
                    if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                        mode = str(node.args[1].value)
                    for kw in node.keywords:
                        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                            mode = str(kw.value.value)
                    if not _WRITE_MODE.search(mode):
                        continue
                    target = _expanded(node.args[0], scope)
                    what = f"open(..., {mode!r})"
                elif name.endswith((".write_text", ".write_bytes")) and isinstance(
                    node.func, ast.Attribute
                ):
                    target = _expanded(node.func.value, scope)
                    what = node.func.attr
                elif name in ("os.rename", "os.replace"):
                    target = " ".join(_expanded(a, scope) for a in node.args)
                    what = name
                if target is not None and _is_store_path(target):
                    yield self.hit(
                        ctx,
                        node,
                        f"raw {what} targets a store/lease path ({target!r}); "
                        "use atomic_write_bytes or KeyedStore.put so concurrent "
                        "readers never observe a partial file",
                    )


class UnstableHash(Rule):
    """RPR002: builtin ``hash()``/``id()`` near persisted identity.

    Persisted keys, shard partitions, and lease stems must be identical
    across hosts, processes, and ``PYTHONHASHSEED`` values; builtin
    ``hash()`` is salted per process and ``id()`` is an address.  Content
    identity in this codebase is always ``hashlib`` over canonical JSON
    (see ``ScenarioSpec.cache_key``/``shard_of``) -- any bare ``hash()``
    or ``id()`` call in package source is flagged, because there is no
    call site here where they are the right tool.
    """

    code = "RPR002"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src():
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
            ):
                yield self.hit(
                    ctx,
                    node,
                    f"builtin {node.func.id}() is PYTHONHASHSEED/address-"
                    "unstable; derive persisted keys, shard owners, and lease "
                    "stems with hashlib over canonical content instead",
                )


class NondeterministicKey(Rule):
    """RPR003: wall clock / default RNG inside key-construction paths.

    Cache keys, train keys, and fingerprints must be pure functions of
    content -- two hosts (or two runs) computing different keys for the
    same scenario silently defeats the zero-retrain/zero-re-simulate
    guarantees.  Inside any function whose name mentions ``key``,
    ``fingerprint``, or ``digest`` (or any method of a ``*Spec`` class),
    calls to ``time.time``/``datetime.now``/``random.*``/``np.random.*``
    are flagged.
    """

    code = "RPR003"

    _BAD = re.compile(
        r"^(time\.time(_ns)?|datetime\.(datetime\.)?(now|utcnow)"
        r"|random\.\w+|np\.random\.\w+|numpy\.random\.\w+)$"
    )
    _SCOPE_NAME = re.compile(r"key|fingerprint|digest")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src():
            return
        spec_methods: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        spec_methods.add(item)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (self._SCOPE_NAME.search(node.name) or node in spec_methods):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call) and self._BAD.match(_call_name(inner)):
                    yield self.hit(
                        ctx,
                        inner,
                        f"{_call_name(inner)}() inside key-construction path "
                        f"{node.name!r}: keys must be pure functions of "
                        "content (seed RNGs explicitly, pass times in)",
                    )


class VectorizedTwins:
    """RPR004: every reference implementation has a tested vectorized twin.

    For each ``X_reference`` function there must be an ``X`` (or
    ``X_vectorized``) twin in the same module, and at least one test
    module must reference *both* names -- that is what keeps the
    bit-identity contract (``tests/test_vectorized_equivalence.py``)
    honest when either side changes.  The check runs in reverse too:
    ``X_vectorized`` functions need their ``X_reference``.  Pairs whose
    names do not follow the convention are declared in
    :data:`VECTORIZED_PAIRS` and verified identically.  The test-coverage
    half only runs when test files are part of the lint set (so ``repro
    lint src`` alone stays meaningful).
    """

    code = "RPR004"

    def check_project(self, contexts: Iterable[FileContext]) -> Iterator[Violation]:
        contexts = list(contexts)
        src = [c for c in contexts if c.in_src()]
        tests = [c for c in contexts if c.is_test()]
        registry_names = {
            (suffix, name)
            for suffix, fast, ref in VECTORIZED_PAIRS
            for name in (fast, ref)
        }

        def covered_by_registry(ctx: FileContext, name: str) -> bool:
            return any(
                ctx.module_is(suffix) and n == name for suffix, n in registry_names
            )

        def tested(a: str, b: str) -> bool:
            if not tests:
                return True
            return any(
                _word_in(a, t.source) and _word_in(b, t.source) for t in tests
            )

        for ctx in src:
            defs = _defined_functions(ctx)
            for name, lineno in sorted(defs.items()):
                if name.endswith("_reference"):
                    if covered_by_registry(ctx, name):
                        continue
                    stem = name[: -len("_reference")]
                    twin = next(
                        (t for t in (stem, stem + "_vectorized") if t in defs), None
                    )
                    if twin is None:
                        yield Violation(
                            self.code,
                            ctx.rel,
                            lineno,
                            f"{name} has no vectorized twin ({stem} or "
                            f"{stem}_vectorized) in this module",
                        )
                    elif not tested(name, twin):
                        yield Violation(
                            self.code,
                            ctx.rel,
                            lineno,
                            f"no test module references both {name} and {twin}; "
                            "add an equivalence test pinning them bit-identical",
                        )
                elif name.endswith("_vectorized"):
                    if covered_by_registry(ctx, name):
                        continue
                    ref = name[: -len("_vectorized")] + "_reference"
                    scalar = name[: -len("_vectorized")] + "_scalar"
                    if ref not in defs and scalar not in defs:
                        yield Violation(
                            self.code,
                            ctx.rel,
                            lineno,
                            f"{name} has no reference twin ({ref} or {scalar}) "
                            "in this module; vectorized paths keep their "
                            "scalar reference for equivalence testing",
                        )

        for suffix, fast, ref in VECTORIZED_PAIRS:
            ctx = next((c for c in src if c.module_is(suffix)), None)
            if ctx is None:
                continue  # module not in the lint set
            defs = _defined_functions(ctx)
            for name in (fast, ref):
                if name not in defs:
                    yield Violation(
                        self.code,
                        ctx.rel,
                        1,
                        f"registry pair ({fast}, {ref}) names {name}, which is "
                        "not defined in this module; update VECTORIZED_PAIRS",
                    )
            if fast in defs and ref in defs and not tested(fast, ref):
                yield Violation(
                    self.code,
                    ctx.rel,
                    defs[ref],
                    f"no test module references both {fast} and {ref}; add an "
                    "equivalence test pinning them bit-identical",
                )


class ModuleMutableState(Rule):
    """RPR005: module-level mutable containers in worker-imported modules.

    ``SweepRunner`` pool workers fork (or re-import) the package: a
    module-level dict/list/set that functions mutate in place is state the
    parent may have populated before the fork, silently shared into every
    worker -- or state a worker populates believing it is shared when it
    is not.  Flags module-level mutable containers that the module itself
    mutates (subscript stores, ``.append``/``.update``/... calls), plus
    module-level ``threading.Lock`` instances (locks do not survive
    pickling and a pre-fork-held lock deadlocks children).  Deliberate
    per-process memos are suppressed inline with the reason they are
    fork-safe.
    """

    code = "RPR005"

    _CONTAINER_CALLS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter"}
    _LOCK_CALLS = {"threading.Lock", "threading.RLock", "Lock", "RLock"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src() or "devtools/" in ctx.posix or ctx.module_is("cli.py"):
            return
        candidates: dict[str, ast.AST] = {}
        locks: dict[str, ast.AST] = {}
        for node in ctx.tree.body:
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
                candidates[target.id] = node
            elif isinstance(value, ast.Call):
                callee = _call_name(value)
                if callee in self._CONTAINER_CALLS:
                    candidates[target.id] = node
                elif callee in self._LOCK_CALLS:
                    locks[target.id] = node
        mutated: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                        mutated.add(t.value.id)
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                        mutated.add(t.value.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
            ):
                mutated.add(node.func.value.id)
        for name, node in sorted(candidates.items()):
            if name in mutated:
                yield self.hit(
                    ctx,
                    node,
                    f"module-level mutable container {name!r} is mutated in "
                    "place: pool workers fork/reimport this module, so such "
                    "state is either silently copied into every worker or "
                    "never actually shared -- make it per-instance, or "
                    "suppress with the reason it is fork-safe",
                )
        for name, node in sorted(locks.items()):
            yield self.hit(
                ctx,
                node,
                f"module-level lock {name!r}: a lock held across fork "
                "deadlocks pool workers; scope locks to the objects whose "
                "state they guard",
            )


class SwallowedException(Rule):
    """RPR006: silently swallowed exceptions in steal/runner code paths.

    The sweep contract is that failures are *data*: a raising scenario
    becomes a structured ``SweepResult(error=...)`` line, and lease-
    protocol errors either retry or surface.  A bare ``except:`` or
    ``except Exception: pass`` in ``experiments/`` hides exactly the
    failures the whole manifest/lease machinery exists to record.  The
    two legitimate shapes -- a retry loop whose backstop is the TTL, and
    tolerating a peer's concurrent unlink -- are narrow enough to
    suppress inline with their reason.
    """

    code = "RPR006"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src() or "experiments/" not in ctx.posix:
            return
        if _implements_store_protocol(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            kind = _unparse(node.type) if node.type is not None else None
            if kind not in (None, "Exception", "BaseException"):
                continue
            if all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            ):
                shown = kind if kind is not None else "bare except"
                yield self.hit(
                    ctx,
                    node,
                    f"swallowed exception ({shown}: pass) in a steal/runner "
                    "code path: failures here must surface as structured "
                    "SweepResult errors or retry with a bounded backstop",
                )


class UnvalidatedStoreName(Rule):
    """RPR007: formatted filenames entering store dirs without validation.

    Everything written into a store/lease directory under a *computed*
    name must pass :func:`repro.experiments.cache.validate_flat_name`
    first -- a name assembled by f-string or ``%`` interpolation can
    smuggle a path separator and escape the directory (the reason lease
    stems are hashed).  Flags ``<store path> / f"..."`` joins in functions
    that never call ``validate_flat_name``; ``experiments/backend.py``
    and ``experiments/cache.py`` (which implement the gate and the
    blessed helpers) are exempt.
    """

    code = "RPR007"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src() or _implements_store_protocol(ctx):
            return
        for scope in _scopes(ctx.tree):
            validates = any(
                isinstance(n, ast.Call) and "validate_flat_name" in _call_name(n)
                for n in scope.nodes
            )
            if validates:
                continue
            for node in scope.nodes:
                if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                    continue
                right = node.right
                formatted = isinstance(right, ast.JoinedStr) or (
                    isinstance(right, ast.BinOp)
                    and isinstance(right.op, ast.Mod)
                    and isinstance(right.left, ast.Constant)
                    and isinstance(right.left.value, str)
                )
                if not formatted:
                    continue
                left = _expanded(node.left, scope)
                if _is_store_path(left):
                    yield self.hit(
                        ctx,
                        node,
                        f"formatted filename joined onto store path {left!r} "
                        "without validate_flat_name in this function; an "
                        "interpolated component could escape the directory",
                    )


class UnflushedManifest(Rule):
    """RPR008: JSONL manifest loops that never flush.

    A manifest line is the durability record for a completed scenario:
    resume, merge, and the work-stealing done-marking all assume a line is
    on disk once its scenario finished.  A writer loop that buffers lines
    and crashes loses completed work -- or worse, marks leases done for
    scenarios no manifest records.  Flags ``fh.write(... + "\\n")`` calls
    inside a loop when the enclosing function never calls ``fh.flush()``.
    """

    code = "RPR008"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src():
            return
        for scope in _scopes(ctx.tree):
            flushed = {
                n.func.value.id
                for n in scope.nodes
                if isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "flush"
                and isinstance(n.func.value, ast.Name)
            }
            loops = [n for n in scope.nodes if isinstance(n, (ast.For, ast.While))]
            for loop in loops:
                for node in ast.walk(loop):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "write"
                        and isinstance(node.func.value, ast.Name)
                        and node.args
                    ):
                        continue
                    arg = node.args[0]
                    newline = (
                        isinstance(arg, ast.BinOp)
                        and isinstance(arg.op, ast.Add)
                        and isinstance(arg.right, ast.Constant)
                        and isinstance(arg.right.value, str)
                        and arg.right.value.endswith("\n")
                    ) or (
                        isinstance(arg, ast.JoinedStr)
                        and arg.values
                        and isinstance(arg.values[-1], ast.Constant)
                        and str(arg.values[-1].value).endswith("\n")
                    )
                    if newline and node.func.value.id not in flushed:
                        yield self.hit(
                            ctx,
                            node,
                            f"JSONL line written to {node.func.value.id!r} in a "
                            "loop with no flush in this function; a crash "
                            "loses completed scenarios -- flush per line",
                        )


ALL_RULES = (
    RawStoreWrite(),
    UnstableHash(),
    NondeterministicKey(),
    VectorizedTwins(),
    ModuleMutableState(),
    SwallowedException(),
    UnvalidatedStoreName(),
    UnflushedManifest(),
)
