"""Orchestration for the whole-program (``--deep``) lint pass.

Builds the :class:`~repro.devtools.graph.ProjectIndex` and
:class:`~repro.devtools.graph.CallGraph` once over the ``src/repro``
contexts in the lint set, then runs the three interprocedural checkers:

* :func:`repro.devtools.taint.check_taint` -- RPR101-103;
* :func:`repro.devtools.effects.check_effects` -- RPR104-105;
* :func:`repro.devtools.leasecheck.check_lease_protocol` -- RPR106.

The deep pass supersedes the line-local RPR002/RPR003 heuristics (see
:func:`repro.devtools.lint.run_lint`): a whole-program taint walk strictly
dominates "nondeterminism lexically near identity code".
"""

from __future__ import annotations

from typing import Iterable

from .effects import check_effects
from .graph import CallGraph, ProjectIndex
from .leasecheck import check_lease_protocol
from .lint import FileContext, Violation
from .taint import check_taint

__all__ = ["DEEP_RULE_DOCS", "SUPERSEDED_BY_DEEP", "run_deep"]

#: Shallow rules the interprocedural pass strictly subsumes.
SUPERSEDED_BY_DEEP = frozenset({"RPR002", "RPR003"})

#: One-line invariant statements, used by the SARIF rule table and docs.
DEEP_RULE_DOCS: dict[str, str] = {
    "RPR101": (
        "No wall clock, process-global/unseeded RNG, process/host identity, "
        "or environment read anywhere a persisted-identity sink (cache_key, "
        "fingerprints, lease stems, shard owners) can reach."
    ),
    "RPR102": (
        "No builtin hash()/id() reachable from a persisted-identity sink: "
        "both are PYTHONHASHSEED/address-unstable across hosts and runs."
    ),
    "RPR103": (
        "No iteration over a set reachable from a persisted-identity sink: "
        "set order is hash-dependent, so it leaks PYTHONHASHSEED into keys."
    ),
    "RPR104": (
        "No mutation of module-level state in code reachable from sweep/steal "
        "worker entry points; pool workers fork/re-import, so such state "
        "silently diverges per process."
    ),
    "RPR105": (
        "No raw filesystem write in worker-reachable code: every worker-side "
        "write goes through atomic_write_bytes/KeyedStore.put so concurrent "
        "readers never observe a partial file."
    ),
    "RPR106": (
        "Every successful lease claim() guarantees mark_done()/release() on "
        "all normal, early-exit, and exception paths of the held-lease region."
    ),
}


def run_deep(
    contexts: Iterable[FileContext], include_heuristic: bool = True
) -> tuple[list[Violation], CallGraph]:
    """Run all interprocedural checkers; returns (violations, call graph)."""
    src = [c for c in contexts if c.in_src() and not c.is_test()]
    index = ProjectIndex.build(src)
    graph = CallGraph.build(index)
    violations: list[Violation] = []
    violations.extend(check_taint(index, graph, include_heuristic=include_heuristic))
    violations.extend(check_effects(index, graph, include_heuristic=include_heuristic))
    violations.extend(check_lease_protocol(index))
    return violations, graph
