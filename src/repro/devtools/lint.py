"""Framework for the ``repro lint`` invariant checker.

Pure-stdlib AST analysis: every rule is a class in
:mod:`repro.devtools.rules` with a stable ``RPRxxx`` code and a docstring
explaining the invariant it guards.  This module owns everything that is
*not* a rule: file discovery, parsing, the inline-suppression protocol,
rule selection, and the text/JSON report formats.

Suppression protocol
--------------------

A violation may be silenced with an inline comment on the flagged line::

    tmp.write_bytes(payload)  # repro: noqa RPR001 -- exclusive publish via hard link

The comment must name the code(s) it suppresses *and* carry a ``--
reason``: an unexplained suppression is itself reported (``RPR000``), so
every exception to an invariant is documented where it lives.  There is no
file-wide or bare ``noqa`` form on purpose -- blanket waivers are how
hand-maintained invariants rot.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence, TextIO

__all__ = [
    "FileContext",
    "LintReport",
    "Violation",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_main",
    "run_lint",
]

#: ``# repro: noqa RPR001[,RPR002] [-- reason]`` -- the only suppression form.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<codes>[\sA-Z0-9,]*?)(?:--\s*(?P<reason>\S.*))?$"
)

_CODE_RE = re.compile(r"\bRPR\d{3}\b")

#: Directories never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


@dataclass(frozen=True)
class Violation:
    """One rule hit: a stable code, a location, and a one-line message."""

    code: str
    path: str
    line: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    codes: frozenset[str]
    reason: str | None


@dataclass
class FileContext:
    """One parsed Python file, as rules see it.

    ``rel`` is the path as given on the command line (what reports print);
    rules scope themselves by matching its POSIX form, so fixture tests can
    place a file anywhere and still exercise a path-scoped rule.
    """

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def posix(self) -> str:
        return Path(self.rel).as_posix()

    def in_src(self) -> bool:
        """Whether this file is part of the ``repro`` package source."""
        return "src/repro/" in self.posix or self.posix.startswith("repro/")

    def is_test(self) -> bool:
        name = Path(self.posix).name
        return name.startswith("test_") or name == "conftest.py"

    def module_is(self, suffix: str) -> bool:
        """Whether this file is the source module ending in ``suffix``."""
        return self.posix.endswith(suffix)


def _parse_suppressions(source: str, path: str) -> tuple[dict[int, Suppression], list[Violation]]:
    """Extract ``# repro: noqa`` comments; malformed ones become RPR000."""
    out: dict[int, Suppression] = {}
    bad: list[Violation] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        comments = [(t.start[0], t.string) for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (i, line[line.index("#"):])
            for i, line in enumerate(source.splitlines(), 1)
            if "#" in line
        ]
    for lineno, comment in comments:
        m = _NOQA_RE.search(comment)
        if m is None:
            continue
        codes = frozenset(_CODE_RE.findall(m.group("codes") or ""))
        reason = (m.group("reason") or "").strip() or None
        out[lineno] = Suppression(line=lineno, codes=codes, reason=reason)
        if not codes or reason is None:
            bad.append(
                Violation(
                    code="RPR000",
                    path=path,
                    line=lineno,
                    message=(
                        "suppression must name the code(s) it silences and "
                        "carry a '-- reason' (see docs/development.md): "
                        "'# repro: noqa RPRxxx -- why this site is safe'"
                    ),
                )
            )
    return out, bad


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files given directly pass through)."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


def load_context(path: Path, rel: str | None = None) -> tuple[FileContext | None, list[Violation]]:
    """Parse one file into a :class:`FileContext` (``None`` on syntax error)."""
    rel = rel if rel is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [Violation("RPR900", rel, 1, f"unreadable file: {exc}")]
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return None, [
            Violation("RPR901", rel, exc.lineno or 1, f"syntax error: {exc.msg}")
        ]
    suppressions, bad = _parse_suppressions(source, rel)
    ctx = FileContext(path=path, rel=rel, source=source, tree=tree, suppressions=suppressions)
    return ctx, bad


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    n_files: int

    @property
    def ok(self) -> bool:
        return not self.violations


def _select_codes(select: str | None) -> frozenset[str] | None:
    if select is None:
        return None
    codes = frozenset(c.strip().upper() for c in select.split(",") if c.strip())
    if not codes:
        return None
    return codes


def run_lint(
    paths: Sequence[str | Path],
    select: str | None = None,
    rules: Sequence[object] | None = None,
) -> LintReport:
    """Lint ``paths`` and return the surviving violations, sorted.

    ``select`` limits the run to a comma-separated list of codes
    (``RPR000`` meta-violations are always reported).  Suppressions are
    applied last: a violation whose line carries a well-formed ``# repro:
    noqa`` naming its code is dropped.
    """
    from .rules import ALL_RULES

    active = list(rules if rules is not None else ALL_RULES)
    wanted = _select_codes(select)
    if wanted is not None:
        active = [r for r in active if r.code in wanted]

    contexts: list[FileContext] = []
    violations: list[Violation] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        ctx, problems = load_context(path)
        violations.extend(problems)
        if ctx is not None:
            contexts.append(ctx)

    for rule in active:
        if hasattr(rule, "check_project"):
            violations.extend(rule.check_project(contexts))
        else:
            for ctx in contexts:
                violations.extend(rule.check(ctx))

    kept = []
    for v in violations:
        if v.code in ("RPR000", "RPR900", "RPR901"):
            kept.append(v)
            continue
        ctx = next((c for c in contexts if c.rel == v.path), None)
        sup = ctx.suppressions.get(v.line) if ctx is not None else None
        if sup is not None and sup.reason is not None and v.code in sup.codes:
            continue
        kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.code))
    return LintReport(violations=kept, n_files=n_files)


def format_text(report: LintReport) -> str:
    lines = [v.render() for v in report.violations]
    summary = (
        f"{len(report.violations)} violation(s) in {report.n_files} file(s)"
        if report.violations
        else f"clean: {report.n_files} file(s), 0 violations"
    )
    return "\n".join(lines + [summary])


def format_json(report: LintReport) -> str:
    return json.dumps(
        {
            "violations": [v.to_dict() for v in report.violations],
            "n_files": report.n_files,
            "ok": report.ok,
        },
        indent=2,
        sort_keys=True,
    )


def lint_main(
    paths: Sequence[str] | None,
    fmt: str = "text",
    select: str | None = None,
    out: "TextIO | None" = None,
) -> int:
    """Run the linter as the CLI does; returns the process exit code.

    Default paths are ``src`` and ``tests`` when they exist under the
    current directory (the repo layout), else the current directory.
    """
    out = out if out is not None else sys.stdout
    if not paths:
        paths = [p for p in ("src", "tests") if Path(p).exists()] or ["."]
    try:
        report = run_lint(paths, select=select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(format_json(report) if fmt == "json" else format_text(report), file=out)
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="Project invariant linter (RPR rules)."
    )
    parser.add_argument("paths", nargs="*", help="files or directories (default: src tests)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", default=None, help="comma-separated rule codes")
    args = parser.parse_args(argv)
    return lint_main(args.paths, fmt=args.format, select=args.select)


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
