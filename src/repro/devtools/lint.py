"""Framework for the ``repro lint`` invariant checker.

Pure-stdlib AST analysis: every rule is a class in
:mod:`repro.devtools.rules` with a stable ``RPRxxx`` code and a docstring
explaining the invariant it guards.  This module owns everything that is
*not* a rule: file discovery, parsing, the inline-suppression protocol,
rule selection, and the text/JSON report formats.

Suppression protocol
--------------------

A violation may be silenced with an inline comment on the flagged line::

    tmp.write_bytes(payload)  # repro: noqa RPR001 -- exclusive publish via hard link

The comment must name the code(s) it suppresses *and* carry a ``--
reason``: an unexplained suppression is itself reported (``RPR000``), so
every exception to an invariant is documented where it lives.  There is no
file-wide or bare ``noqa`` form on purpose -- blanket waivers are how
hand-maintained invariants rot.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence, TextIO

__all__ = [
    "BASELINE_VERSION",
    "FileContext",
    "LintReport",
    "Violation",
    "apply_baseline",
    "format_json",
    "format_sarif",
    "format_text",
    "iter_python_files",
    "lint_main",
    "load_baseline",
    "run_lint",
    "write_baseline",
]

#: ``# repro: noqa RPR001[,RPR002] [-- reason]`` -- the only suppression form.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<codes>[\sA-Z0-9,]*?)(?:--\s*(?P<reason>\S.*))?$"
)

_CODE_RE = re.compile(r"\bRPR\d{3}\b")

#: Directories never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


@dataclass(frozen=True)
class Violation:
    """One rule hit: a stable code, a location, and a one-line message.

    ``symbol`` is the enclosing function's qualified name when a checker
    knows it (the deep pass always does); it feeds the baseline
    fingerprint so findings stay pinned when unrelated edits shift line
    numbers.
    """

    code: str
    path: str
    line: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for the baseline ratchet (line-number-free)."""
        raw = "|".join((self.code, Path(self.path).as_posix(), self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    codes: frozenset[str]
    reason: str | None


@dataclass
class FileContext:
    """One parsed Python file, as rules see it.

    ``rel`` is the path as given on the command line (what reports print);
    rules scope themselves by matching its POSIX form, so fixture tests can
    place a file anywhere and still exercise a path-scoped rule.
    """

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def posix(self) -> str:
        return Path(self.rel).as_posix()

    def in_src(self) -> bool:
        """Whether this file is part of the ``repro`` package source."""
        return "src/repro/" in self.posix or self.posix.startswith("repro/")

    def is_test(self) -> bool:
        name = Path(self.posix).name
        return name.startswith("test_") or name == "conftest.py"

    def module_is(self, suffix: str) -> bool:
        """Whether this file is the source module ending in ``suffix``."""
        return self.posix.endswith(suffix)


def _parse_suppressions(source: str, path: str) -> tuple[dict[int, Suppression], list[Violation]]:
    """Extract ``# repro: noqa`` comments; malformed ones become RPR000."""
    out: dict[int, Suppression] = {}
    bad: list[Violation] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        comments = [(t.start[0], t.string) for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (i, line[line.index("#"):])
            for i, line in enumerate(source.splitlines(), 1)
            if "#" in line
        ]
    for lineno, comment in comments:
        m = _NOQA_RE.search(comment)
        if m is None:
            continue
        codes = frozenset(_CODE_RE.findall(m.group("codes") or ""))
        reason = (m.group("reason") or "").strip() or None
        out[lineno] = Suppression(line=lineno, codes=codes, reason=reason)
        if not codes or reason is None:
            bad.append(
                Violation(
                    code="RPR000",
                    path=path,
                    line=lineno,
                    message=(
                        "suppression must name the code(s) it silences and "
                        "carry a '-- reason' (see docs/development.md): "
                        "'# repro: noqa RPRxxx -- why this site is safe'"
                    ),
                )
            )
    return out, bad


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files given directly pass through).

    Dedupes on the *resolved* path, so the same file reached via two
    spellings (``src/repro`` and ``src/repro/cli.py``, or a relative and an
    absolute path) is linted once.
    """
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in candidates:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield f


def load_context(path: Path, rel: str | None = None) -> tuple[FileContext | None, list[Violation]]:
    """Parse one file into a :class:`FileContext` (``None`` on syntax error)."""
    rel = rel if rel is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [Violation("RPR900", rel, 1, f"unreadable file: {exc}")]
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return None, [
            Violation("RPR901", rel, exc.lineno or 1, f"syntax error: {exc.msg}")
        ]
    suppressions, bad = _parse_suppressions(source, rel)
    ctx = FileContext(path=path, rel=rel, source=source, tree=tree, suppressions=suppressions)
    return ctx, bad


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``violations`` are the *actionable* findings; when a baseline was
    applied, previously-accepted findings move to ``baselined`` (reported
    but not failing) and baseline entries that no longer reproduce are
    listed in ``stale`` (the ratchet: shrink the baseline, never grow it).
    ``graph`` carries the call graph of a ``--deep`` run for
    ``--graph-out`` serialization.
    """

    violations: list[Violation]
    n_files: int
    baselined: list[Violation] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)
    graph: object | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _select_codes(select: str | None) -> frozenset[str] | None:
    if select is None:
        return None
    codes = frozenset(c.strip().upper() for c in select.split(",") if c.strip())
    if not codes:
        return None
    return codes


def run_lint(
    paths: Sequence[str | Path],
    select: str | None = None,
    rules: Sequence[object] | None = None,
    deep: bool = False,
) -> LintReport:
    """Lint ``paths`` and return the surviving violations, sorted.

    ``select`` limits the run to a comma-separated list of codes
    (``RPR000`` meta-violations are always reported).  ``deep`` adds the
    whole-program pass (call-graph taint, worker effects, lease-protocol
    checking; RPR101-106) and drops the shallow rules it supersedes
    (RPR002/RPR003).  Suppressions are applied last: a violation whose
    line carries a well-formed ``# repro: noqa`` naming its code is
    dropped -- deep findings suppress exactly like shallow ones.
    """
    from .rules import ALL_RULES

    active = list(rules if rules is not None else ALL_RULES)
    if deep:
        from .deep import SUPERSEDED_BY_DEEP

        active = [r for r in active if r.code not in SUPERSEDED_BY_DEEP]
    wanted = _select_codes(select)
    if wanted is not None:
        active = [r for r in active if r.code in wanted]

    contexts: list[FileContext] = []
    violations: list[Violation] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        ctx, problems = load_context(path)
        violations.extend(problems)
        if ctx is not None:
            contexts.append(ctx)

    for rule in active:
        if hasattr(rule, "check_project"):
            violations.extend(rule.check_project(contexts))
        else:
            for ctx in contexts:
                violations.extend(rule.check(ctx))

    graph: object | None = None
    if deep:
        from .deep import run_deep

        deep_violations, graph = run_deep(contexts)
        if wanted is not None:
            deep_violations = [v for v in deep_violations if v.code in wanted]
        violations.extend(deep_violations)

    by_rel = {c.rel: c for c in contexts}
    kept = []
    for v in violations:
        if v.code in ("RPR000", "RPR900", "RPR901"):
            kept.append(v)
            continue
        ctx = by_rel.get(v.path)
        sup = ctx.suppressions.get(v.line) if ctx is not None else None
        if sup is not None and sup.reason is not None and v.code in sup.codes:
            continue
        kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.code))
    return LintReport(violations=kept, n_files=n_files, graph=graph)


def format_text(report: LintReport) -> str:
    lines = [v.render() for v in report.violations]
    summary = (
        f"{len(report.violations)} violation(s) in {report.n_files} file(s)"
        if report.violations
        else f"clean: {report.n_files} file(s), 0 violations"
    )
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined finding(s) not shown")
    if report.stale:
        extras.append(
            f"{len(report.stale)} stale baseline entr(ies) no longer reproduce "
            "-- shrink the baseline (--update-baseline)"
        )
    if extras:
        summary += " [" + "; ".join(extras) + "]"
    return "\n".join(lines + [summary])


def format_json(report: LintReport) -> str:
    return json.dumps(
        {
            "violations": [v.to_dict() for v in report.violations],
            "baselined": [v.to_dict() for v in report.baselined],
            "stale": list(report.stale),
            "n_files": report.n_files,
            "ok": report.ok,
        },
        indent=2,
        sort_keys=True,
    )


def _rule_docs() -> dict[str, str]:
    """One-line description per rule code (shallow docstrings + deep docs)."""
    from .deep import DEEP_RULE_DOCS
    from .rules import ALL_RULES

    docs: dict[str, str] = {}
    for rule in ALL_RULES:
        doc = (getattr(rule, "__doc__", None) or "").strip().splitlines()
        if doc:
            # "RPR001: raw writes into ..." -> drop the leading code tag.
            first = doc[0]
            prefix = f"{rule.code}: "
            docs[rule.code] = first[len(prefix):] if first.startswith(prefix) else first
    docs.update(DEEP_RULE_DOCS)
    docs["RPR000"] = "Malformed suppression comment (must name codes and a -- reason)."
    docs["RPR900"] = "Unreadable file."
    docs["RPR901"] = "Syntax error."
    return docs


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 for GitHub code scanning (shallow and --deep alike).

    Only *actionable* violations become results; baselined findings are
    omitted so code scanning annotates exactly what would fail CI.
    """
    docs = _rule_docs()
    codes = sorted({v.code for v in report.violations})
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": docs.get(code, code)},
        }
        for code in codes
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(v.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(v.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {"reproLint/v1": v.fingerprint},
        }
        for v in report.violations
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/development.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# -- baseline ratchet ----------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict[str, dict[str, object]]:
    """Read a baseline file; returns ``{fingerprint: recorded finding}``."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version: {data.get('version')!r}")
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError("baseline 'findings' must be an object")
    return {str(k): dict(v) for k, v in findings.items()}


def apply_baseline(report: LintReport, findings: dict[str, dict[str, object]]) -> None:
    """Partition the report against a baseline, in place (the ratchet).

    Known fingerprints move to ``report.baselined`` (reported, not
    failing); unknown ones stay in ``violations`` (CI fails); baseline
    entries that no longer reproduce land in ``report.stale`` -- the cue
    to regenerate with ``--update-baseline`` and commit the shrink.
    Meta-violations (RPR000/900/901) are never baselined.
    """
    known = set(findings)
    new: list[Violation] = []
    accepted: list[Violation] = []
    for v in report.violations:
        if v.code not in ("RPR000", "RPR900", "RPR901") and v.fingerprint in known:
            accepted.append(v)
        else:
            new.append(v)
    seen = {v.fingerprint for v in report.violations}
    report.violations = new
    report.baselined = accepted
    report.stale = sorted(fp for fp in known if fp not in seen)


def write_baseline(report: LintReport, path: Path) -> None:
    """Write all current findings (new + previously baselined) as the baseline."""
    findings = {
        v.fingerprint: {
            "code": v.code,
            "path": Path(v.path).as_posix(),
            "symbol": v.symbol,
            "message": v.message,
        }
        for v in report.violations + report.baselined
        if v.code not in ("RPR000", "RPR900", "RPR901")
    }
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Accepted repro-lint findings; the ratchet is shrink-only. CI fails "
            "on findings absent from this file. Regenerate (never hand-edit) "
            "with: repro lint --deep --update-baseline lint-baseline.json"
        ),
        "findings": dict(sorted(findings.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def lint_main(
    paths: Sequence[str] | None,
    fmt: str = "text",
    select: str | None = None,
    out: "TextIO | None" = None,
    deep: bool = False,
    baseline: str | None = None,
    update_baseline: str | None = None,
    graph_out: str | None = None,
) -> int:
    """Run the linter as the CLI does; returns the process exit code.

    Default paths are ``src`` and ``tests`` when they exist under the
    current directory (the repo layout), else the current directory.
    ``baseline`` applies the shrink-only ratchet (exit 1 only on *new*
    findings); ``update_baseline`` writes the current findings to that
    path and exits 0 -- the explicit act of accepting debt.
    """
    out = out if out is not None else sys.stdout
    if not paths:
        paths = [p for p in ("src", "tests") if Path(p).exists()] or ["."]
    deep = deep or graph_out is not None
    try:
        report = run_lint(paths, select=select, deep=deep)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if baseline is not None and update_baseline is None:
        try:
            findings = load_baseline(Path(baseline))
        except FileNotFoundError:
            findings = {}
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"bad baseline {baseline}: {exc}", file=sys.stderr)
            return 2
        apply_baseline(report, findings)
    if graph_out is not None and report.graph is not None:
        graph_payload = report.graph.to_dict()  # type: ignore[attr-defined]
        Path(graph_out).write_text(
            json.dumps(graph_payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if update_baseline is not None:
        write_baseline(report, Path(update_baseline))
        n = len(report.violations) + len(report.baselined)
        print(f"wrote {n} finding(s) to {update_baseline}", file=out)
        return 0
    formatters = {"json": format_json, "sarif": format_sarif, "text": format_text}
    print(formatters.get(fmt, format_text)(report), file=out)
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="Project invariant linter (RPR rules)."
    )
    parser.add_argument("paths", nargs="*", help="files or directories (default: src tests)")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    parser.add_argument("--select", default=None, help="comma-separated rule codes")
    parser.add_argument(
        "--deep",
        action="store_true",
        help="whole-program pass: call-graph taint, worker effects, lease protocol (RPR101-106)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="ratchet file: fail only on findings absent from FILE (shrink-only)",
    )
    parser.add_argument(
        "--update-baseline",
        default=None,
        metavar="FILE",
        help="write current findings to FILE and exit 0 (the act of accepting debt)",
    )
    parser.add_argument(
        "--graph-out",
        default=None,
        metavar="FILE",
        help="serialize the --deep call graph to FILE as JSON (implies --deep)",
    )
    args = parser.parse_args(argv)
    return lint_main(
        args.paths,
        fmt=args.format,
        select=args.select,
        deep=args.deep,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        graph_out=args.graph_out,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
