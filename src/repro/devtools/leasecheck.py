"""Lease-protocol path checking (RPR106) for ``repro lint --deep``.

A work-stealing sweep loses a scenario forever only one way: a worker
claims its lease and then exits -- normally or exceptionally -- without
``mark_done`` or ``release``.  Peers then wait out the full TTL before
stealing, and a crash *after* TTL-expiry semantics change silently turns
"delayed" into "lost".  This checker verifies, per ``claim`` call site,
that the **success region** (the code that runs while the lease is held)
guarantees a ``mark_done``/``release`` call on every normal path, every
early exit, and every exception path.

Recognized claim shapes::

    if coordinator.claim(key):          # region = the if-body
        ...
    if not coordinator.claim(key):      # region = rest of the enclosing
        continue  # (or return/break)   #          block after the if
    ...

Anything else (claim as a bare expression, assigned to a variable, inside
a compound condition) is flagged as an unrecognized shape: the result must
be checked with ``if`` so the held-lease region is statically evident.

The region analysis is a conservative walk of the statement structure:

* a statement containing ``mark_done``/``release`` completes the region;
* ``try``/``finally`` whose ``finally`` completes on all its paths
  protects everything inside (including ``return`` and ``yield``);
* a catch-all ``except`` that completes (then falls through or re-raises)
  protects the try body's exception paths;
* "risky" statements (project calls, ``with``, ``yield``, ``raise``)
  outside such protection, and ``return``/``break``/``continue`` before
  completion, are reported -- each with the line and reason.

Methods of classes that *define* ``claim`` (the protocol implementation
itself) are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .graph import ProjectIndex
from .lint import Violation

__all__ = ["check_lease_protocol"]

_COMPLETIONS = frozenset({"mark_done", "release"})

#: Builtin / stdlib-ish calls that cannot plausibly raise mid-protocol.
_SAFE_CALLS = frozenset(
    {
        "abs", "all", "any", "bool", "dict", "enumerate", "float", "format",
        "frozenset", "getattr", "hasattr", "int", "isinstance", "len", "list",
        "max", "min", "print", "range", "repr", "set", "sorted", "str", "sum",
        "tuple", "zip",
    }
)

#: Attribute calls that only touch in-memory containers/strings.
_SAFE_METHODS = frozenset(
    {
        "add", "append", "clear", "copy", "discard", "endswith", "extend",
        "format", "get", "insert", "items", "join", "keys", "lower", "pop",
        "popitem", "remove", "setdefault", "split", "startswith", "strip",
        "update", "upper", "values",
    }
)


def _contains_completion(node: ast.AST) -> bool:
    for inner in ast.walk(node):
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr in _COMPLETIONS
        ):
            return True
    return False


def _is_risky(stmt: ast.stmt) -> bool:
    """Whether a simple statement can raise or suspend mid-region."""
    for inner in ast.walk(stmt):
        if isinstance(inner, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if isinstance(inner, ast.Call):
            func = inner.func
            if isinstance(func, ast.Name) and func.id in _SAFE_CALLS:
                continue
            if isinstance(func, ast.Attribute) and func.attr in _SAFE_METHODS:
                continue
            if isinstance(func, ast.Attribute) and func.attr in _COMPLETIONS:
                continue
            return True
    return False


def _ends_in_raise(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(stmts[-1], ast.Raise)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    try:
        text = ast.unparse(handler.type)
    except Exception:
        return False
    return text in ("Exception", "BaseException")


@dataclass
class _Walk:
    """Mutable result of a region walk: completion state plus failures."""

    failures: list[tuple[int, str]] = field(default_factory=list)

    def fail(self, line: int, why: str) -> None:
        self.failures.append((line, why))


def _walk_region(
    stmts: list[ast.stmt], walk: _Walk, protected: bool, loop_depth: int = 0
) -> bool:
    """Walk a statement sequence; returns True when every normal path
    through it is guaranteed to have called ``mark_done``/``release``."""
    done = False
    for stmt in stmts:
        if done:
            break  # completion reached; the rest of the region is free
        done = _walk_stmt(stmt, walk, protected, loop_depth)
    return done


def _walk_stmt(
    stmt: ast.stmt, walk: _Walk, protected: bool, loop_depth: int
) -> bool:
    if isinstance(stmt, (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
        if _contains_completion(stmt):
            return True
        if not protected and _is_risky(stmt):
            walk.fail(
                stmt.lineno,
                "may raise before mark_done/release with no protecting "
                "finally/except in the claim region",
            )
        return False
    if isinstance(stmt, ast.Return):
        walk.fail(stmt.lineno, "returns out of the claim region before mark_done/release")
        return False
    if isinstance(stmt, (ast.Break, ast.Continue)):
        if loop_depth == 0:
            walk.fail(
                stmt.lineno,
                "leaves the claim region (break/continue) before mark_done/release",
            )
        return False
    if isinstance(stmt, ast.Raise):
        if not protected:
            walk.fail(
                stmt.lineno,
                "raises out of the claim region with no protecting finally/except",
            )
        return False
    if isinstance(stmt, ast.If):
        body_done = _walk_region(stmt.body, walk, protected, loop_depth)
        if stmt.orelse:
            else_done = _walk_region(stmt.orelse, walk, protected, loop_depth)
            return body_done and else_done
        return False
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        _walk_region(stmt.body, walk, protected, loop_depth + 1)
        if stmt.orelse:
            _walk_region(stmt.orelse, walk, protected, loop_depth)
        return False  # the loop may run zero times
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        if not protected:
            walk.fail(
                stmt.lineno,
                "context manager in the claim region may raise with no "
                "protecting finally/except",
            )
        return _walk_region(stmt.body, walk, protected, loop_depth)
    if isinstance(stmt, ast.Try):
        return _walk_try(stmt, walk, protected, loop_depth)
    # Unknown statement kind (match, import, nested def, ...): assume it
    # neither completes nor exits; flag it only when it can clearly raise.
    if not protected and _is_risky(stmt):
        walk.fail(stmt.lineno, "may raise before mark_done/release (unprotected)")
    return False


def _walk_try(stmt: ast.Try, walk: _Walk, protected: bool, loop_depth: int) -> bool:
    if stmt.finalbody:
        fin_done = _walk_region(stmt.finalbody, walk, protected=True, loop_depth=loop_depth)
        if fin_done:
            # The finally completes on every one of its own paths, and a
            # finally runs on ALL exits of the try -- normal, exception,
            # return, generator close.  Everything inside is protected and
            # the try as a whole completes the region.
            return True
    handler_protects = False
    handler_merges_done = True
    for handler in stmt.handlers:
        h_done = _walk_region(handler.body, walk, protected, loop_depth)
        if _is_catch_all(handler) and (h_done or _contains_completion(handler)):
            handler_protects = True
        if not (h_done or _ends_in_raise(handler.body)):
            handler_merges_done = False
    body_done = _walk_region(stmt.body, walk, protected or handler_protects, loop_depth)
    if stmt.orelse and body_done is False:
        body_done = _walk_region(stmt.orelse, walk, protected, loop_depth)
    return body_done and handler_merges_done


@dataclass(frozen=True)
class _ClaimSite:
    call: ast.Call
    region: tuple[ast.stmt, ...]
    shape: str  # "if-claim" | "if-not-claim" | "unrecognized"


def _claim_sites(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[_ClaimSite]:
    """All ``.claim(...)`` call sites in ``node`` with their success regions."""
    sites: list[_ClaimSite] = []
    # Claim Call nodes already matched to a recognized shape; AST nodes
    # hash by object identity, which is exactly the dedupe wanted here.
    claimed: set[ast.AST] = set()

    def is_claim(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "claim"
        )

    def scan_block(stmts: list[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                test = stmt.test
                if is_claim(test):
                    assert isinstance(test, ast.Call)
                    claimed.add(test)
                    sites.append(_ClaimSite(test, tuple(stmt.body), "if-claim"))
                elif (
                    isinstance(test, ast.UnaryOp)
                    and isinstance(test.op, ast.Not)
                    and is_claim(test.operand)
                    and stmt.body
                    and isinstance(
                        stmt.body[-1], (ast.Continue, ast.Return, ast.Break, ast.Raise)
                    )
                ):
                    operand = test.operand
                    assert isinstance(operand, ast.Call)
                    claimed.add(operand)
                    sites.append(_ClaimSite(operand, tuple(stmts[i + 1 :]), "if-not-claim"))
            # Recurse into every nested statement block.
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list) and inner and isinstance(inner[0], ast.stmt):
                    scan_block(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                scan_block(handler.body)

    scan_block(list(node.body))
    for inner in ast.walk(node):
        if is_claim(inner) and inner not in claimed:
            assert isinstance(inner, ast.Call)
            sites.append(_ClaimSite(inner, (), "unrecognized"))
    return sites


def check_lease_protocol(index: ProjectIndex) -> list[Violation]:
    """RPR106 over every function that calls ``.claim(...)``."""
    # Classes that define claim() ARE the protocol; their methods are exempt.
    protocol_classes: set[tuple[str, str]] = set()
    for module in index.modules.values():
        for klass in module.classes.values():
            if "claim" in klass.methods:
                protocol_classes.add((module.name, klass.name))

    violations: list[Violation] = []
    for info in index.functions():
        if info.node is None:
            continue
        if info.class_name is not None and (info.module, info.class_name) in protocol_classes:
            continue
        for site in _claim_sites(info.node):
            if site.shape == "unrecognized":
                violations.append(
                    Violation(
                        code="RPR106",
                        path=info.path,
                        line=site.call.lineno,
                        message=(
                            "unrecognized claim() usage: check the result with "
                            "'if claim(...):' or 'if not claim(...): continue' so "
                            "the held-lease region guarantees mark_done/release"
                        ),
                        symbol=info.qualname,
                    )
                )
                continue
            walk = _Walk()
            done = _walk_region(list(site.region), walk, protected=False)
            if walk.failures or not done:
                if walk.failures:
                    line, why = walk.failures[0]
                    detail = f"{why} (line {line})"
                    extra = len(walk.failures) - 1
                    if extra:
                        detail += f" and {extra} more path(s)"
                else:
                    detail = "the region can fall through without mark_done/release"
                violations.append(
                    Violation(
                        code="RPR106",
                        path=info.path,
                        line=site.call.lineno,
                        message=(
                            f"successful claim() does not guarantee mark_done/"
                            f"release on every exit: {detail}"
                        ),
                        symbol=info.qualname,
                    )
                )
    violations.sort(key=lambda v: (v.path, v.line, v.message))
    return violations
