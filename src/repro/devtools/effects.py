"""Worker-effect analysis (RPR104-105) for ``repro lint --deep``.

Sweep workers run in forked/spawned pool processes (``_run_payload``) or
interleave with lease-stealing peers (``SweepRunner.run_stealing`` /
``_guarded``).  Two effect classes are hazards anywhere in the code those
entry points can reach:

* ``RPR104`` -- mutation of module-level state: ``global`` rebinding, or
  in-place mutation (subscript store, mutator method, ``del``) of a name
  bound at module level.  Under ``fork`` such state is silently copied per
  process; under ``spawn`` it silently resets -- either way the mutation
  does not mean what it looks like it means.  Deliberate per-process memos
  are fine, but each carries an inline suppression saying so.  A container
  whose *definition line* already carries a reasoned ``RPR005``
  suppression is a declared per-process memo: its mutation sites are not
  re-flagged (one documented claim per exception, where the state lives).
* ``RPR105`` -- raw filesystem writes (``open(.., "w")``,
  ``write_text``/``write_bytes``, ``os.rename``/``os.replace``,
  ``shutil.copy*``/``move``): every worker-side write must go through
  ``atomic_write_bytes`` / ``KeyedStore.put`` so a concurrent reader never
  observes a partial file.  :mod:`repro.experiments.backend` and
  :mod:`repro.experiments.cache` are exempt -- they *implement* the
  blessed protocol.

Unlike the shallow RPR001/RPR005 (which pattern-match single files), these
run over the call-graph closure of the worker entry points, so a hazard
three helpers deep is still attributed -- the message carries the witness
chain from the entry point.
"""

from __future__ import annotations

import ast
import re

from .graph import CallGraph, FunctionInfo, ProjectIndex
from .lint import Violation

__all__ = ["DEFAULT_ENTRYPOINTS", "check_effects", "worker_entrypoints"]

#: Qualname patterns (regex, matched with ``search``) of the functions that
#: execute inside a sweep worker or the stealing loop.
DEFAULT_ENTRYPOINTS: tuple[str, ...] = (
    r":_run_payload$",
    r":SweepRunner\._guarded$",
    r":SweepRunner\.run_stealing$",
)

#: Modules whose writes ARE the atomic protocol (exempt from RPR105).
_WRITE_PROTOCOL_MODULES = frozenset({"repro.experiments.backend", "repro.experiments.cache"})

_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
    }
)

_WRITE_MODE = re.compile(r"[wax]")

_RAW_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})
_RAW_WRITE_DOTTED = frozenset(
    {
        "os.rename",
        "os.replace",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copy2",
        "shutil.move",
    }
)


def worker_entrypoints(
    graph: CallGraph, patterns: tuple[str, ...] = DEFAULT_ENTRYPOINTS
) -> list[str]:
    """Qualnames in ``graph`` matching the worker entry-point patterns."""
    compiled = [re.compile(p) for p in patterns]
    return sorted(
        q for q in graph.functions if any(c.search(q) for c in compiled)
    )


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:
        return ""


def _bound_names(target: ast.AST) -> set[str]:
    """Names *bound* by an assignment target.

    Only plain names and tuple/list destructuring bind: ``d[k] = v`` and
    ``obj.attr = v`` mutate an existing object, so their bases must NOT be
    treated as locals (that would shadow exactly the mutations RPR104
    watches for).
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in target.elts:
            out |= _bound_names(element)
        return out
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return set()


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that are function-local: parameters and plain assignments."""
    names = {a.arg for a in node.args.args}
    names.update(a.arg for a in node.args.posonlyargs)
    names.update(a.arg for a in node.args.kwonlyargs)
    if node.args.vararg is not None:
        names.add(node.args.vararg.arg)
    if node.args.kwarg is not None:
        names.add(node.args.kwarg.arg)
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names |= _bound_names(target)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names |= _bound_names(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            names |= _bound_names(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    names |= _bound_names(item.optional_vars)
    return names


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(q.split(":", 1)[1] for q in chain)


def _check_function(
    info: FunctionInfo,
    module_vars: set[str],
    chain: tuple[str, ...],
    write_exempt: bool,
) -> list[Violation]:
    node = info.node
    assert node is not None
    chain_note = f" (worker-reachable via {_chain_text(chain)})"
    declared_global: set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Global):
            declared_global.update(stmt.names)
    shadowed = _local_names(node) - declared_global
    watched = (module_vars | declared_global) - shadowed

    out: list[Violation] = []

    def hit(code: str, line: int, message: str) -> None:
        out.append(
            Violation(code=code, path=info.path, line=line, message=message + chain_note,
                      symbol=info.qualname)
        )

    for stmt in ast.walk(node):
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    hit(
                        "RPR104",
                        stmt.lineno,
                        f"rebinds module-level {target.id!r} from worker code; "
                        "pool workers fork/re-import the module, so the new "
                        "binding is per-process and silently diverges",
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in watched
                ):
                    hit(
                        "RPR104",
                        stmt.lineno,
                        f"mutates module-level container {target.value.id!r} from "
                        "worker code; per-process memos need an inline suppression "
                        "stating why they are fork-safe",
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in watched
                ):
                    hit(
                        "RPR104",
                        stmt.lineno,
                        f"deletes from module-level container {target.value.id!r} "
                        "from worker code",
                    )
        elif isinstance(stmt, ast.Call):
            func = stmt.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in watched
            ):
                hit(
                    "RPR104",
                    stmt.lineno,
                    f"mutates module-level container {func.value.id!r} via "
                    f".{func.attr}() from worker code; per-process memos need an "
                    "inline suppression stating why they are fork-safe",
                )
            if not write_exempt:
                raw = _raw_write(stmt)
                if raw is not None:
                    hit(
                        "RPR105",
                        stmt.lineno,
                        f"raw filesystem write {raw} in worker-reachable code; "
                        "every write a sweep/steal worker can make must go "
                        "through atomic_write_bytes or KeyedStore.put",
                    )
    return out


def _raw_write(call: ast.Call) -> str | None:
    """Describe ``call`` if it is a raw (non-atomic) filesystem write."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _RAW_WRITE_ATTRS:
        return f".{func.attr}(...)"
    text = _unparse(func)
    if text in _RAW_WRITE_DOTTED:
        return f"{text}(...)"
    if isinstance(func, ast.Name) and func.id == "open" and len(call.args) >= 2:
        mode = call.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if _WRITE_MODE.search(mode.value):
                return f"open(.., {mode.value!r})"
    for kw in call.keywords:
        if (
            kw.arg == "mode"
            and isinstance(func, ast.Name)
            and func.id == "open"
            and isinstance(kw.value, ast.Constant)
            and isinstance(kw.value.value, str)
            and _WRITE_MODE.search(kw.value.value)
        ):
            return f"open(.., mode={kw.value.value!r})"
    return None


def check_effects(
    index: ProjectIndex,
    graph: CallGraph,
    entrypoints: list[str] | None = None,
    include_heuristic: bool = True,
) -> list[Violation]:
    """RPR104/105 over the closure of the worker entry points."""
    entries = entrypoints if entrypoints is not None else worker_entrypoints(graph)
    closure = graph.reachable(entries, include_heuristic=include_heuristic)
    violations: list[Violation] = []
    for qualname, chain in sorted(closure.items()):
        info = graph.functions[qualname]
        if info.node is None:
            continue
        module = index.modules.get(info.module)
        module_vars: set[str] = set()
        if module is not None:
            for name, line in module.module_vars.items():
                sup = module.ctx.suppressions.get(line)
                if sup is not None and sup.reason is not None and "RPR005" in sup.codes:
                    continue  # declared per-process memo; documented at the definition
                module_vars.add(name)
        violations.extend(
            _check_function(
                info,
                module_vars,
                chain,
                write_exempt=info.module in _WRITE_PROTOCOL_MODULES,
            )
        )
    violations.sort(key=lambda v: (v.path, v.line, v.code, v.message))
    return violations
