"""Interprocedural nondeterminism taint (RPR101-103) for ``repro lint --deep``.

The shallow RPR002/RPR003 rules only see nondeterminism *inside* a
key-construction function; one helper call away and they go blind.  This
pass propagates nondeterminism **sources** over the call graph into
**persisted-identity sinks** and reports every source that any sink can
reach, with the witness call chain in the message.

Sources
-------
* ``RPR101`` -- wall clocks (``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``), process-global or unseeded RNG (``random.*``,
  ``np.random.*`` bar an explicitly seeded ``default_rng(seed)``),
  process/host identity (``os.getpid``, ``uuid.uuid1/4``,
  ``socket.gethostname``, ``os.urandom``), and environment reads
  (``os.environ[...]`` / ``os.environ.get``).
* ``RPR102`` -- builtin ``hash()`` / ``id()`` (``PYTHONHASHSEED``- and
  address-unstable).
* ``RPR103`` -- iteration over a ``set`` (``for``-loops and comprehension
  generators; hash-order-dependent).  ``sorted(set(...))`` does not flag:
  only *iteration order* escaping into the result is a hazard.

Sinks
-----
Functions whose results become persisted identity: bare name matching
``key|fingerprint|digest``, any method of a ``*Spec`` class, plus the
explicit extras in :data:`EXTRA_SINK_NAMES` (lease stems, shard owners,
sweep publication).  The taint region for a sink is its full resolved-call
closure, so a source is reported once per site with the shortest
sink-to-site chain as evidence.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from .graph import CallGraph, FunctionInfo, ProjectIndex
from .lint import Violation

__all__ = ["EXTRA_SINK_NAMES", "check_taint", "find_sinks", "function_sources"]

#: Bare function names that are identity sinks without matching the name
#: regex: lease stems, shard partitioning, and sweep publication all feed
#: persisted on-disk identity.
EXTRA_SINK_NAMES = frozenset({"lease_name", "shard_of", "ensure_sweep"})

_SINK_NAME = re.compile(r"key|fingerprint|digest")

_CLOCKS = re.compile(
    r"^time\.(time|time_ns|monotonic|monotonic_ns|perf_counter|perf_counter_ns"
    r"|process_time|process_time_ns)$"
    r"|^datetime\.(datetime\.)?(now|utcnow|today)$"
)
_IDENTITY = re.compile(
    r"^os\.(getpid|getppid|urandom|uname)$|^uuid\.uuid[14]$|^socket\.gethostname$"
    r"|^platform\.(node|uname)$"
)
#: ``random`` module calls that construct an independent generator (which
#: is then seeded or not at *that* call -- handled separately) rather than
#: touching the process-global stream.
_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "seed"})
_NP_RANDOM = re.compile(r"^(np|numpy)\.random\.(?P<attr>\w+)$")


@dataclass(frozen=True)
class SourceHit:
    """One nondeterminism source site inside a function body."""

    code: str  # RPR101 / RPR102 / RPR103
    line: int
    detail: str  # e.g. "time.time()"
    kind: str  # e.g. "wall clock"


def _call_text(node: ast.Call) -> str:
    try:
        return ast.unparse(node.func)
    except Exception:
        return "<call>"


def _classify_call(node: ast.Call) -> SourceHit | None:
    """Source classification for one call node, or ``None`` when benign."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in ("hash", "id"):
            return SourceHit(
                "RPR102", node.lineno, f"{func.id}()", "PYTHONHASHSEED/address-unstable"
            )
        return None
    text = _call_text(node)
    if _CLOCKS.match(text):
        return SourceHit("RPR101", node.lineno, f"{text}()", "wall clock")
    if _IDENTITY.match(text):
        return SourceHit("RPR101", node.lineno, f"{text}()", "process/host identity")
    if text == "os.environ.get" or text.endswith(".environ.get"):
        return SourceHit("RPR101", node.lineno, f"{text}()", "environment read")
    m = re.match(r"^random\.(?P<attr>\w+)$", text)
    if m and m.group("attr") not in _RANDOM_CONSTRUCTORS:
        return SourceHit("RPR101", node.lineno, f"{text}()", "process-global RNG")
    m = _NP_RANDOM.match(text)
    if m:
        attr = m.group("attr")
        if attr in ("default_rng", "Generator", "RandomState", "SeedSequence"):
            if not node.args and not node.keywords:
                return SourceHit(
                    "RPR101", node.lineno, f"{text}()", "unseeded RNG construction"
                )
            return None  # explicitly seeded: deterministic by construction
        return SourceHit("RPR101", node.lineno, f"{text}()", "global NumPy RNG")
    return None


_SET_ANNOTATION = re.compile(r"^(typing\.)?([Ff]rozen[Ss]et|[Ss]et|AbstractSet|MutableSet)\b")


def _local_set_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that are sets: set-typed parameters and set-valued assignments."""
    names: set[str] = set()
    for arg in list(node.args.args) + list(node.args.posonlyargs) + list(
        node.args.kwonlyargs
    ):
        try:
            annotation = ast.unparse(arg.annotation) if arg.annotation else ""
        except Exception:
            annotation = ""
        if _SET_ANNOTATION.match(annotation):
            names.add(arg.arg)
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and _is_set_expr(stmt.value, frozenset()):
                names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            try:
                annotation = ast.unparse(stmt.annotation)
            except Exception:
                annotation = ""
            if _SET_ANNOTATION.match(annotation):
                names.add(stmt.target.id)
    return names


def _is_set_expr(expr: ast.AST, set_names: frozenset[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(expr, ast.Name) and expr.id in set_names:
        return True
    return False


def function_sources(info: FunctionInfo) -> list[SourceHit]:
    """All nondeterminism source sites inside one function body."""
    node = info.node
    if node is None:
        return []
    hits: list[SourceHit] = []
    set_names = frozenset(_local_set_names(node))
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            hit = _classify_call(inner)
            if hit is not None:
                hits.append(hit)
        elif isinstance(inner, ast.Subscript):
            try:
                base = ast.unparse(inner.value)
            except Exception:
                base = ""
            if base == "os.environ" and isinstance(inner.ctx, ast.Load):
                hits.append(
                    SourceHit("RPR101", inner.lineno, "os.environ[...]", "environment read")
                )
        elif isinstance(inner, ast.For):
            if _is_set_expr(inner.iter, set_names):
                hits.append(
                    SourceHit(
                        "RPR103", inner.lineno, "for ... in <set>", "hash-ordered iteration"
                    )
                )
        elif isinstance(inner, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in inner.generators:
                if _is_set_expr(gen.iter, set_names):
                    hits.append(
                        SourceHit(
                            "RPR103",
                            gen.iter.lineno,
                            "comprehension over <set>",
                            "hash-ordered iteration",
                        )
                    )
    return hits


def find_sinks(index: ProjectIndex) -> list[FunctionInfo]:
    """All persisted-identity sink functions in the indexed tree."""
    sinks: list[FunctionInfo] = []
    for info in index.functions():
        bare = info.name.split(".")[-1]
        if bare.startswith("__") and bare.endswith("__"):
            continue
        if (
            _SINK_NAME.search(bare)
            or bare in EXTRA_SINK_NAMES
            or (info.class_name is not None and info.class_name.endswith("Spec"))
        ):
            sinks.append(info)
    sinks.sort(key=lambda s: s.qualname)
    return sinks


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(q.split(":", 1)[1] for q in chain)


def check_taint(
    index: ProjectIndex, graph: CallGraph, include_heuristic: bool = True
) -> list[Violation]:
    """Report every nondeterminism source reachable from an identity sink."""
    sinks = find_sinks(index)
    source_cache: dict[str, list[SourceHit]] = {}

    def sources_of(qualname: str) -> list[SourceHit]:
        if qualname not in source_cache:
            info = graph.functions.get(qualname)
            source_cache[qualname] = function_sources(info) if info is not None else []
        return source_cache[qualname]

    # (path, line, code, detail) -> (hit, function, sink bare name, chain)
    best: dict[tuple[str, int, str, str], tuple[SourceHit, FunctionInfo, str, tuple[str, ...]]] = {}
    for sink in sinks:
        closure = graph.reachable([sink.qualname], include_heuristic=include_heuristic)
        for qualname, chain in closure.items():
            info = graph.functions[qualname]
            for hit in sources_of(qualname):
                key = (info.path, hit.line, hit.code, hit.detail)
                prior = best.get(key)
                if prior is None or len(chain) < len(prior[3]):
                    best[key] = (hit, info, sink.name, chain)

    violations = [
        Violation(
            code=hit.code,
            path=info.path,
            line=hit.line,
            message=(
                f"{hit.detail} is nondeterministic ({hit.kind}) and reaches "
                f"persisted-identity sink {sink_name}() via {_chain_text(chain)}; "
                "keys, fingerprints, and lease stems must be pure functions of content"
            ),
            symbol=info.qualname,
        )
        for (hit, info, sink_name, chain) in best.values()
    ]
    violations.extend(_argument_taint(graph, {s.qualname: s for s in sinks}))
    violations.sort(key=lambda v: (v.path, v.line, v.code, v.message))
    return violations


def _argument_taint(
    graph: CallGraph, sinks: dict[str, FunctionInfo]
) -> Iterator[Violation]:
    """Sources flowing *into* a sink call as arguments at the call site.

    Closure taint covers sources inside a sink's own call tree; this
    covers ``cache_key(stamp=time.time())`` -- nondeterminism injected by
    the caller, which the closure walk cannot see.
    """
    for edge in graph.edges:
        if edge.callee not in sinks:
            continue
        caller = graph.functions.get(edge.caller)
        if caller is None or caller.node is None or edge.caller in sinks:
            continue
        for call in ast.walk(caller.node):
            if not isinstance(call, ast.Call) or call.lineno != edge.line:
                continue
            arg_exprs = list(call.args) + [kw.value for kw in call.keywords]
            for expr in arg_exprs:
                for inner in ast.walk(expr):
                    if not isinstance(inner, ast.Call):
                        continue
                    hit = _classify_call(inner)
                    if hit is None or hit.code == "RPR103":
                        continue
                    sink_bare = sinks[edge.callee].name
                    yield Violation(
                        code=hit.code,
                        path=caller.path,
                        line=inner.lineno,
                        message=(
                            f"{hit.detail} ({hit.kind}) flows into identity sink "
                            f"{sink_bare}() as a call argument; identity inputs "
                            "must be deterministic content"
                        ),
                        symbol=caller.qualname,
                    )
