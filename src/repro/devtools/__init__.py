"""Development tooling: the project-specific invariant linter.

The orchestration stack survives on hand-maintained invariants (atomic
writes into live store directories, cross-process-stable content hashing,
bit-identical vectorized/reference pairs, fork-safe worker state) and each
of them has already caused a real runtime bug.  :mod:`repro.devtools.lint`
makes them machine-checked: an AST walker with project-specific ``RPR``
rules, run as ``repro lint`` and in CI.  See ``docs/development.md`` for
the rule catalogue and suppression policy.
"""

from .lint import LintReport, Violation, lint_main, run_lint
from .rules import ALL_RULES, VECTORIZED_PAIRS

__all__ = [
    "ALL_RULES",
    "LintReport",
    "VECTORIZED_PAIRS",
    "Violation",
    "lint_main",
    "run_lint",
]
