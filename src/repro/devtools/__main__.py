"""``python -m repro.devtools`` -- the lint CLI without the repro entry point.

A separate ``__main__`` (rather than ``python -m repro.devtools.lint``)
avoids runpy's double-import warning: the package ``__init__`` already
imports :mod:`.lint`, so executing the submodule as a script would load it
twice.
"""

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
