"""Command-line interface for the Booster reproduction.

Installed as the ``repro`` console script::

    repro datasets                      # Table III structure
    repro train higgs --trees 20        # functional training summary
    repro compare flight --scale 10     # hardware comparison (Fig. 7 style)
    repro inference iot                 # batch inference (Fig. 13 style)
    repro figures fig7 fig13            # regenerate paper artifacts
    repro sweep --dataset higgs         # accelerator design space
    repro validate                      # full reproduction claim checklist
"""

from __future__ import annotations

import argparse
import sys

from .datasets import BENCHMARK_NAMES, dataset_spec, generate, table3_rows
from .gbdt import TrainParams, train, train_level_wise
from .sim.artifacts import ARTIFACTS, build
from .sim.executor import Executor
from .sim.report import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Booster: An Accelerator for Gradient "
        "Boosting Decision Trees' (He, Vijaykumar, Thottethodi).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trees", type=int, default=10, help="boosting rounds to simulate functionally"
    )
    common.add_argument("--seed", type=int, default=7, help="dataset seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "datasets", parents=[common], help="list the benchmark datasets (Table III)"
    )

    p_train = sub.add_parser(
        "train", parents=[common], help="functionally train one benchmark"
    )
    p_train.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_train.add_argument("--records", type=int, default=None, help="override record count")
    p_train.add_argument(
        "--level-wise", action="store_true", help="grow trees level by level (Sec. II-A)"
    )

    p_cmp = sub.add_parser(
        "compare", parents=[common], help="compare hardware models on one benchmark"
    )
    p_cmp.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_cmp.add_argument("--scale", type=float, default=1.0, help="extra record scaling (Fig. 12)")
    p_cmp.add_argument(
        "--systems", nargs="*", default=None, help="subset of hardware models to include"
    )

    p_inf = sub.add_parser(
        "inference", parents=[common], help="batch-inference comparison (Fig. 13)"
    )
    p_inf.add_argument("dataset", choices=BENCHMARK_NAMES)

    p_fig = sub.add_parser(
        "figures", parents=[common], help="regenerate paper tables/figures"
    )
    p_fig.add_argument(
        "names",
        nargs="*",
        default=[],
        help=f"artifacts to render (default: all of {sorted(ARTIFACTS)})",
    )

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="scenario sweep: cartesian axes, parallel workers, persistent cache",
        description="Without --axis, prints the classic Booster design-space "
        "table. With one or more --axis NAME=V1,V2,... arguments, expands the "
        "cartesian product into scenarios and runs them across a process "
        "pool, serving functional training from the persistent cache "
        "(results/cache/ or $REPRO_CACHE_DIR).",
    )
    p_sweep.add_argument("--dataset", choices=BENCHMARK_NAMES, default="higgs")
    p_sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep axis (repeatable); e.g. --axis n_bus=1600,3200 "
        "--axis dataset=higgs,flight",
    )
    p_sweep.add_argument(
        "--systems",
        nargs="*",
        default=None,
        help="hardware models to time in each scenario",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool size (default: auto)"
    )
    p_sweep.add_argument(
        "--serial", action="store_true", help="run scenarios in-process, one by one"
    )
    p_sweep.add_argument(
        "--refresh",
        action="store_true",
        help="drop cached training artifacts for these scenarios first",
    )

    sub.add_parser(
        "validate", parents=[common], help="run the reproduction claim checklist"
    )
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            r["name"],
            f"{r['paper_records'] / 1e6:.0f}M",
            r["sim_records"],
            r["fields"],
            r["categorical_fields"],
            r["features_onehot"],
            r["comment"],
        ]
        for r in table3_rows()
    ]
    print(
        render_table(
            ["name", "paper recs", "sim recs", "fields", "categ", "features", "comment"],
            rows,
            title="benchmarks (Table III structure)",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    spec = dataset_spec(args.dataset, n_records=args.records, seed=args.seed)
    data = generate(spec)
    fit = train_level_wise if args.level_wise else train
    result = fit(data, TrainParams(n_trees=args.trees))
    summary = result.profile.summary()
    rows = [[k, v] for k, v in summary.items()]
    rows.append(["growth", result.profile.growth])
    rows.append(["final loss", f"{result.losses[-1]:.5f}"])
    rows.append(["wall seconds", f"{result.profile.train_seconds_wall:.2f}"])
    print(render_table(["quantity", "value"], rows, title=f"training summary: {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    cmp = ex.compare(args.dataset, systems=args.systems, extra_scale=args.scale)
    print(cmp.table())
    return 0


def _cmd_inference(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    result = ex.inference(args.dataset)
    rows = [
        [system, f"{seconds * 1e3:.2f} ms", f"{result.speedup(system):.1f}x"]
        for system, seconds in result.seconds.items()
    ]
    print(
        render_table(
            ["system", "batch time", "speedup"],
            rows,
            title=f"batch inference: {args.dataset} (500 trees)",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    names = args.names or list(ARTIFACTS)
    for name in names:
        try:
            print(build(name, ex))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis:
        return _cmd_sweep_axes(args)
    return _cmd_sweep_design_space(args)


def _cmd_sweep_axes(args: argparse.Namespace) -> int:
    """Scenario sweep over declared axes (the experiments layer)."""
    from .experiments import (
        ScenarioSpec,
        SweepRunner,
        default_cache,
        expand_axes,
        parse_axis_specs,
        read_axis,
    )
    from .gbdt import TrainParams

    from .sim.executor import MODEL_NAMES

    try:
        unknown_systems = [s for s in (args.systems or []) if s not in MODEL_NAMES]
        if unknown_systems:
            raise ValueError(
                f"unknown systems {unknown_systems}; known: {list(MODEL_NAMES)}"
            )
        axes = parse_axis_specs(args.axis)
        base = ScenarioSpec(
            dataset=args.dataset,
            seed=args.seed,
            train=TrainParams(n_trees=args.trees),
            systems=tuple(args.systems) if args.systems else (),
        )
        scenarios = expand_axes(base, axes)
        for scenario in scenarios:
            scenario.resolved_records()  # rejects unknown dataset axis values
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2

    cache = default_cache()
    if args.refresh:
        for scenario in scenarios:
            cache.invalidate(scenario.train_key())

    axis_names = list(axes)
    print(
        f"sweep: {len(scenarios)} scenarios over axes "
        f"{', '.join(axis_names)} (cache: {cache.root})"
    )
    runner = SweepRunner(
        cache=cache, max_workers=args.workers, parallel=not args.serial
    )
    ordered: list[list[str] | None] = [None] * len(scenarios)
    for index, result in runner.run_indexed(scenarios):
        scenario = result.scenario
        axis_cells = [str(read_axis(scenario, name)) for name in axis_names]
        times = result.comparison.systems
        booster_cell = f"{times['booster'].total:.4g}" if "booster" in times else "-"
        if "booster" in times and result.comparison.baseline in times:
            speedup_cell = f"{result.booster_speedup:.2f}x"
        else:
            speedup_cell = "-"
        row = axis_cells + [
            booster_cell,
            speedup_cell,
            "hit" if result.cache_hit else "trained",
            str(result.worker_pid),
        ]
        ordered[index] = row
        print(
            f"  done {'x'.join(axis_cells)}: booster {booster_cell} s "
            f"({speedup_cell}) [{'cache hit' if result.cache_hit else 'trained'}]"
        )
    rows = [row for row in ordered if row is not None]
    print()
    print(
        render_table(
            axis_names + ["booster (s)", "speedup", "training", "pid"],
            rows,
            title=f"scenario sweep ({len(rows)} scenarios)",
        )
    )
    return 0


def _cmd_sweep_design_space(args: argparse.Namespace) -> int:
    from .core import BoosterConfig, BoosterEngine
    from .energy import AreaPowerModel

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    profile = ex.profile(args.dataset)
    baseline = ex.model("ideal-32-core").training_seconds(profile)
    area = AreaPowerModel()
    rows = []
    for clusters in (5, 10, 25, 50, 100):
        cfg = BoosterConfig(n_clusters=clusters)
        engine = BoosterEngine(config=cfg, bandwidth=ex.bandwidth)
        seconds = engine.training_times(profile).total
        budget = area.estimate(n_bus=cfg.n_bus, n_clusters=clusters)
        rows.append(
            [
                cfg.n_bus,
                f"{baseline / seconds:.2f}x",
                f"{budget.total_mm2:.1f}",
                f"{budget.total_w:.1f}",
            ]
        )
    print(
        render_table(
            ["BUs", "speedup", "area mm2", "power W"],
            rows,
            title=f"design space on {args.dataset} (paper point: 3200 BUs)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .sim.validate import report, validate_all

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    claims = validate_all(ex)
    print(report(claims))
    return 0 if all(c.passed for c in claims) else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "compare": _cmd_compare,
    "inference": _cmd_inference,
    "figures": _cmd_figures,
    "sweep": _cmd_sweep,
    "validate": _cmd_validate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
