"""Command-line interface for the Booster reproduction.

Installed as the ``repro`` console script::

    repro datasets                      # Table III structure
    repro train higgs --trees 20        # functional training summary
    repro compare flight --scale 10     # hardware comparison (Fig. 7 style)
    repro inference iot                 # batch inference (Fig. 13 style)
    repro figures fig7 fig13            # regenerate paper artifacts
    repro sweep --dataset higgs         # accelerator design space
    repro sweep --axis n_bus=1600,3200 --out results/sweeps/bus.jsonl
    repro sweep --axis n_bus=1600,3200 --out results/sweeps/bus.jsonl --resume
    repro sweep --axis seed=1,2,3 --shard 1/2 --out shard1.jsonl  # host 1 of 2
    repro sweep --axis trees=50,400 --shard 1/2 --balance cost --out s1.jsonl
    repro sweep --axis seed=1,2,3 --coordinate /shared/lease --out w1.jsonl
    repro store-serve /srv/store --port 8123     # remote store for URL sweeps
    repro sweep --axis seed=1,2,3 --coordinate http://host:8123/ --out w1.jsonl
    repro sweep --serve --axis arrival_qps=100,400 --out serve.jsonl  # latency tail
    repro steal-status /shared/lease    # who holds what, what is claimable
    repro steal-status http://host:8123/         # same ledger, over the wire
    repro plan --axis trees=50,400 --axis scale=1,8 --shards 2  # predict costs
    repro merge merged.jsonl shard1.jsonl shard2.jsonl  # union shard manifests
    repro report --from-manifest merged.jsonl           # render, zero re-runs
    repro cache export warm.tar --axis seed=1,2,3       # seed a cold host
    repro bench --out BENCH_7.json      # record the perf trajectory point
    repro validate                      # full reproduction claim checklist
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # annotation-only: commands lazy-import the heavy layers
    from .experiments import ScenarioSpec, SweepResult

from .datasets import BENCHMARK_NAMES, dataset_spec, generate, table3_rows
from .gbdt import TrainParams, train, train_level_wise
from .serving.params import ARRIVAL_KINDS, POLICIES, QUEUE_DISCIPLINES
from .sim.artifacts import ARTIFACTS, build
from .sim.executor import Executor
from .sim.report import render_table

_EPILOG = """\
examples:
  repro compare flight --scale 10
  repro sweep --axis n_bus=1600,3200 --axis dataset=higgs,flight
  repro sweep --axis seed=1,2,3 --out results/sweeps/seeds.jsonl
  repro sweep --axis seed=1,2,3 --out results/sweeps/seeds.jsonl --resume
  repro sweep --axis seed=1,2,3 --shard 2/2 --out shard2.jsonl
  repro sweep --serve --axis arrival_qps=100,400,1600 --policy timeout
  repro merge merged.jsonl shard1.jsonl shard2.jsonl
  repro report --from-manifest merged.jsonl

Sweeps stream one JSONL line per scenario to --out as results complete
(failures included, as structured error lines); --resume skips every
scenario with a successful line in the manifest, and the persistent result
store (results/cache/ or $REPRO_CACHE_DIR) replays completed timings with
zero retraining and zero re-simulation.  --shard K/N deterministically
partitions the expanded scenario list across N hosts -- by stable content
hash (--balance hash, the default) or by LPT bin packing over estimated
scenario costs (--balance cost); `repro plan` predicts the per-shard costs
without running anything, `repro merge` unions the per-shard manifests
back into one, and `repro report --from-manifest` renders it (with the
recorded wall times) without running anything.  --coordinate DIR-or-URL
replaces the static partition with dynamic work stealing: workers claim
scenarios at runtime through atomic lease entries in a shared store -- a
shared directory, or a `repro store-serve` URL for hosts with no shared
filesystem (crashed workers' stale leases are reclaimed either way),
`repro steal-status DIR-or-URL` shows the live ledger, and `repro merge`
unions the per-worker manifests the same way it unions shard manifests.
$REPRO_CACHE_DIR may also be a store URL, and `repro cache export/import`
push/pull entries against one directly.
"""

__all__ = ["main", "build_parser"]


def _add_axis_options(
    parser: argparse.ArgumentParser,
    axis_help: str,
    systems_help: str,
) -> None:
    """The sweep-expansion surface shared by `sweep`, `plan`, and
    `cache export`: all three must expand byte-identical scenarios (hence
    identical keys) for the same command line, so the flags that feed
    :func:`_expand_cli_scenarios` are declared exactly once."""
    parser.add_argument("--dataset", choices=BENCHMARK_NAMES, default="higgs")
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help=axis_help,
    )
    parser.add_argument("--systems", nargs="*", default=None, help=systems_help)


def _add_balance_option(parser: argparse.ArgumentParser, default: str, help: str) -> None:
    """`--balance hash|cost`, shared by `sweep` (default hash) and `plan`
    (default cost) so the partition modes can never drift apart."""
    parser.add_argument("--balance", choices=("hash", "cost"), default=default, help=help)


def _add_lease_ttl_option(parser: argparse.ArgumentParser, help: str) -> None:
    """`--lease-ttl SECONDS`, shared by `sweep --coordinate` and
    `steal-status` so both judge staleness on the same knob."""
    parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS", help=help
    )


def _add_coordinate_options(parser: argparse.ArgumentParser) -> None:
    """The work-stealing surface: `--coordinate` (a lease directory or a
    ``repro store-serve`` URL) plus its TTL knob, declared once."""
    parser.add_argument(
        "--coordinate",
        metavar="DIR_OR_URL",
        default=None,
        help="work-stealing mode: claim scenarios at runtime through atomic "
        "lease entries in this shared store (most expensive scenario "
        "first) instead of running a fixed --shard partition; the store is "
        "a shared directory or the URL of a `repro store-serve` process, "
        "every worker pointed at the same store drains the same sweep, and "
        "stale leases from crashed workers are reclaimed",
    )
    _add_lease_ttl_option(
        parser,
        help="with --coordinate: seconds after which an unrenewed lease "
        "counts as abandoned and may be stolen (default: 300; set it well "
        "above the longest single scenario's wall time)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Booster: An Accelerator for Gradient "
        "Boosting Decision Trees' (He, Vijaykumar, Thottethodi).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trees", type=int, default=10, help="boosting rounds to simulate functionally"
    )
    common.add_argument("--seed", type=int, default=7, help="dataset seed")

    # Serving-scenario knobs, shared by `sweep`, `plan`, and `cache export`
    # so all three expand byte-identical scenarios (hence identical keys)
    # for the same command line.
    serving_opts = argparse.ArgumentParser(add_help=False)
    serve_group = serving_opts.add_argument_group("serving (with --serve)")
    serve_group.add_argument(
        "--serve",
        action="store_true",
        help="measure traffic-driven serving latency (arrival trace through "
        "a batching queue -> p50/p99/QPS) instead of training times; "
        "results persist in their own result-store namespace",
    )
    serve_group.add_argument(
        "--arrival",
        choices=ARRIVAL_KINDS,
        default="poisson",
        help="arrival process: homogeneous poisson, diurnal-modulated "
        "poisson, or a recorded trace (default: poisson)",
    )
    serve_group.add_argument(
        "--qps",
        type=float,
        default=200.0,
        help="offered load in requests/second for generated arrivals "
        "(default: 200)",
    )
    serve_group.add_argument(
        "--serve-duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        dest="serve_duration",
        help="generated-trace horizon in seconds (default: 5)",
    )
    serve_group.add_argument(
        "--policy",
        choices=POLICIES,
        default="batch",
        help="batching policy: immediate (one request per batch), batch "
        "(greedy up to --max-batch), or timeout (hold the batch open up "
        "to --batch-timeout-ms to fill; default: batch)",
    )
    serve_group.add_argument(
        "--max-batch", type=int, default=32, help="batch-size cap (default: 32)"
    )
    serve_group.add_argument(
        "--batch-timeout-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="microbatch window for --policy timeout (default: 2.0)",
    )
    serve_group.add_argument(
        "--queue",
        choices=QUEUE_DISCIPLINES,
        default="fifo",
        help="queue discipline: fifo, or priority (lower trace priority "
        "values served first; default: fifo)",
    )
    serve_group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="replay a recorded JSONL arrival trace (implies --arrival "
        "trace; the scenario is keyed by the file's content digest, not "
        "its path)",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "datasets", parents=[common], help="list the benchmark datasets (Table III)"
    )

    p_train = sub.add_parser(
        "train", parents=[common], help="functionally train one benchmark"
    )
    p_train.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_train.add_argument("--records", type=int, default=None, help="override record count")
    p_train.add_argument(
        "--level-wise", action="store_true", help="grow trees level by level (Sec. II-A)"
    )

    p_cmp = sub.add_parser(
        "compare", parents=[common], help="compare hardware models on one benchmark"
    )
    p_cmp.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_cmp.add_argument("--scale", type=float, default=1.0, help="extra record scaling (Fig. 12)")
    p_cmp.add_argument(
        "--systems", nargs="*", default=None, help="subset of hardware models to include"
    )

    p_inf = sub.add_parser(
        "inference", parents=[common], help="batch-inference comparison (Fig. 13)"
    )
    p_inf.add_argument("dataset", choices=BENCHMARK_NAMES)

    p_fig = sub.add_parser(
        "figures", parents=[common], help="regenerate paper tables/figures"
    )
    p_fig.add_argument(
        "names",
        nargs="*",
        default=[],
        help=f"artifacts to render (default: all of {sorted(ARTIFACTS)})",
    )

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common, serving_opts],
        help="scenario sweep: cartesian axes, parallel workers, persistent cache",
        description="Without --axis, prints the classic Booster design-space "
        "table. With one or more --axis NAME=V1,V2,... arguments, expands the "
        "cartesian product into scenarios and runs them across a process "
        "pool, serving functional training and completed timing results from "
        "the persistent stores (results/cache/ or $REPRO_CACHE_DIR).  A "
        "failing scenario is reported and streamed like any other result; "
        "the rest of the sweep completes.",
    )
    _add_axis_options(
        p_sweep,
        axis_help="sweep axis (repeatable); e.g. --axis n_bus=1600,3200 "
        "--axis dataset=higgs,flight",
        systems_help="hardware models to time in each scenario",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool size (default: auto)"
    )
    p_sweep.add_argument(
        "--serial", action="store_true", help="run scenarios in-process, one by one"
    )
    p_sweep.add_argument(
        "--refresh",
        action="store_true",
        help="drop cached training artifacts and stored timing results for "
        "these scenarios first",
    )
    p_sweep.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="stream results to a JSONL manifest, one line per scenario "
        "(written as each completes; failures become structured error lines)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="with --out: skip scenarios that already have a successful line "
        "in the manifest and run only the missing/failed ones",
    )
    p_sweep.add_argument(
        "--shard",
        metavar="K/N",
        default=None,
        help="run only shard K of an N-way deterministic partition of the "
        "expanded scenario list (1-based; every host derives the same "
        "partition, so N hosts each running one shard cover the sweep "
        "exactly once)",
    )
    _add_balance_option(
        p_sweep,
        default="hash",
        help="how --shard partitions scenarios: 'hash' (stable content "
        "hash, balanced in count) or 'cost' (deterministic LPT bin packing "
        "over analytic cost estimates, balanced in expected wall time; "
        "every host must pass the same mode)",
    )
    p_sweep.add_argument(
        "--inference",
        action="store_true",
        help="measure batch inference (Fig. 13) instead of training times; "
        "results persist in their own result-store namespace",
    )
    _add_coordinate_options(p_sweep)

    p_status = sub.add_parser(
        "steal-status",
        help="inspect a work-stealing sweep's lease store",
        description="Summarize a --coordinate lease store (a shared "
        "directory or a `repro store-serve` URL): which scenarios are "
        "done, failed, running, or stale (claimable), and by which "
        "host/pid.  Purely a read -- nothing is claimed, stolen, or run.",
    )
    p_status.add_argument(
        "dir",
        metavar="DIR_OR_URL",
        help="the --coordinate store to inspect (directory or URL)",
    )
    _add_lease_ttl_option(
        p_status, help="staleness horizon used for display (default: 300)"
    )

    p_store_serve = sub.add_parser(
        "store-serve",
        help="serve a store directory over HTTP for --coordinate URL sweeps",
        description="Serve DIR as a remote object store speaking the "
        "StoreBackend protocol (atomic writes, create-exclusive "
        "conditional PUT, ETag-guarded DELETE), so sweep workers on hosts "
        "with no shared filesystem can point --coordinate and "
        "$REPRO_CACHE_DIR at http://HOST:PORT/.  Plain HTTP, no auth: bind "
        "it to an interface only your worker pool can reach (see "
        "docs/experiments.md, 'Remote stores').",
    )
    p_store_serve.add_argument("dir", help="store directory to serve (created if missing)")
    p_store_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_store_serve.add_argument(
        "--port", type=int, default=8123, help="bind port; 0 picks a free port (default: 8123)"
    )

    p_plan = sub.add_parser(
        "plan",
        parents=[common, serving_opts],
        help="predict per-shard sweep costs without running anything",
        description="Expand the sweep axes exactly like `repro sweep` and "
        "print the predicted per-scenario and per-shard cost tables for an "
        "N-way partition -- nothing is trained or simulated.  Costs come "
        "from an analytic estimator (trees x depth x records x scale), "
        "calibrated by the wall times recorded in the persistent result "
        "store when scenarios have run before.",
    )
    _add_axis_options(
        p_plan,
        axis_help="sweep axis (repeatable), exactly as `repro sweep --axis`",
        systems_help="hardware models of the target sweep",
    )
    p_plan.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="number of hosts the sweep would shard across (default: 1)",
    )
    _add_balance_option(
        p_plan,
        default="cost",
        help="partitioner to predict for (default: cost; use 'hash' to see "
        "what the count-balanced partition would cost)",
    )
    p_plan.add_argument(
        "--inference",
        action="store_true",
        help="plan an inference sweep (calibrates from the inference-mode "
        "result namespace)",
    )

    p_merge = sub.add_parser(
        "merge",
        help="union sweep shard manifests into one manifest",
        description="Merge JSONL sweep manifests (e.g. one per --shard host) "
        "into OUT: lines are deduped per (sweep kind, scenario cache_key), "
        "successful lines are preferred over error lines, and manifests "
        "recorded under different simulation source (sim_code) are "
        "rejected rather than silently mixed.  Compare, inference, and "
        "serving manifests of the same sweep merge side by side.  Nothing "
        "is retrained or re-simulated.",
    )
    p_merge.add_argument("out", help="merged manifest to write")
    p_merge.add_argument("inputs", nargs="+", help="shard manifests to union")

    p_report = sub.add_parser(
        "report",
        help="render a sweep comparison table from a manifest (zero re-runs)",
        description="Render the comparison table for a sweep manifest "
        "(typically the output of `repro merge`): axes are inferred from "
        "the scenarios, rows keep their recorded provenance, and nothing "
        "is trained or simulated.",
    )
    p_report.add_argument(
        "--from-manifest",
        metavar="PATH",
        required=True,
        dest="from_manifest",
        help="JSONL sweep manifest to render",
    )

    p_cache = sub.add_parser(
        "cache",
        help="export/import persistent store entries between hosts",
        description="Move store entries (trained-profile pickles and stored "
        "results) between hosts, so a warm host can seed cold sweep "
        "shards.  The target is a tar archive, or -- as a push/pull with "
        "no intermediate file -- the URL of a `repro store-serve` store.",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cexp = cache_sub.add_parser(
        "export",
        parents=[common, serving_opts],
        help="tar up cache entries, or push them straight to a store URL "
        "(optionally filtered to one sweep's keys)",
    )
    p_cexp.add_argument(
        "archive",
        help="tar file to write, or an http(s):// store URL to push entries to",
    )
    _add_axis_options(
        p_cexp,
        axis_help="restrict the export to this sweep's scenarios (repeatable); "
        "without --axis every store entry is exported",
        systems_help="systems of the target sweep",
    )
    p_cimp = cache_sub.add_parser(
        "import",
        help="unpack a `repro cache export` archive -- or pull a remote "
        "store's entries -- into the local store",
    )
    p_cimp.add_argument(
        "archive",
        help="tar file to read, or an http(s):// store URL to pull entries from",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the recorded performance benchmark (vectorized vs reference)",
        description="Time the vectorized hot paths against their scalar "
        "reference implementations on a fixed scenario grid (level-wise "
        "GBDT fits, the level-core partition+binning microbench, and DRAM "
        "FR-FCFS traces) and write a schema-versioned JSON document.  Each "
        "perf PR commits its document as BENCH_<n>.json, growing a "
        "measured speedup trajectory alongside the code; see "
        "docs/performance.md.",
    )
    p_bench.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="where to write the bench document (default: print a table only)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke grid: one small GBDT scenario, short DRAM traces",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=None, help="samples per fit cell (default: 3, quick: 2)"
    )
    p_bench.add_argument("--seed", type=int, default=7, help="dataset/trace seed")

    sub.add_parser(
        "validate", parents=[common], help="run the reproduction claim checklist"
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the project invariant linter (RPR rules)",
        description="AST-based checker for the invariants the orchestration "
        "stack depends on: atomic store writes, hash-stable keys, "
        "vectorized/reference twin coverage, fork-safe worker state, and "
        "more.  See docs/development.md for the rule catalogue and the "
        "inline '# repro: noqa RPRxxx -- reason' suppression policy.",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src tests)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json is what CI archives; sarif feeds code scanning)",
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (e.g. RPR001,RPR004)",
    )
    p_lint.add_argument(
        "--deep",
        action="store_true",
        help="whole-program pass: call-graph nondeterminism taint, worker "
        "effects, and lease-protocol checking (RPR101-106)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="ratchet file: fail only on findings absent from FILE (shrink-only)",
    )
    p_lint.add_argument(
        "--update-baseline",
        default=None,
        metavar="FILE",
        help="write current findings to FILE and exit 0 (the act of accepting debt)",
    )
    p_lint.add_argument(
        "--graph-out",
        default=None,
        metavar="FILE",
        help="serialize the --deep call graph to FILE as JSON (implies --deep)",
    )
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            r["name"],
            f"{r['paper_records'] / 1e6:.0f}M",
            r["sim_records"],
            r["fields"],
            r["categorical_fields"],
            r["features_onehot"],
            r["comment"],
        ]
        for r in table3_rows()
    ]
    print(
        render_table(
            ["name", "paper recs", "sim recs", "fields", "categ", "features", "comment"],
            rows,
            title="benchmarks (Table III structure)",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    spec = dataset_spec(args.dataset, n_records=args.records, seed=args.seed)
    data = generate(spec)
    fit = train_level_wise if args.level_wise else train
    result = fit(data, TrainParams(n_trees=args.trees))
    summary = result.profile.summary()
    rows = [[k, v] for k, v in summary.items()]
    rows.append(["growth", result.profile.growth])
    rows.append(["final loss", f"{result.losses[-1]:.5f}"])
    rows.append(["wall seconds", f"{result.profile.train_seconds_wall:.2f}"])
    print(render_table(["quantity", "value"], rows, title=f"training summary: {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    cmp = ex.compare(args.dataset, systems=args.systems, extra_scale=args.scale)
    print(cmp.table())
    return 0


def _cmd_inference(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    print(ex.inference(args.dataset).table())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    names = args.names or list(ARTIFACTS)
    for name in names:
        try:
            print(build(name, ex))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis:
        return _cmd_sweep_axes(args)
    if (
        args.out
        or args.resume
        or args.shard
        or args.inference
        or args.serve
        or args.coordinate
        or args.lease_ttl is not None
        or args.balance != "hash"
    ):
        # Silently ignoring these would leave a scripted caller waiting on a
        # manifest that never appears (or a shard that never ran).
        print(
            "--out/--resume/--shard/--balance/--inference/--serve/"
            "--coordinate/--lease-ttl apply to axis sweeps; add at least "
            "one --axis NAME=V1,V2,...",
            file=sys.stderr,
        )
        return 2
    return _cmd_sweep_design_space(args)


def _resumable_results(
    path: pathlib.Path, mode: str = "compare"
) -> "dict[str, SweepResult]":
    """Parse a JSONL sweep manifest into ``(cache_key, SweepResult)`` pairs
    that are safe to resume from.

    Corrupt/partial lines are skipped (an interrupted run can leave a
    truncated final line; tolerating it is what makes ``--resume`` safe
    after any kind of crash), and so are failed results, lines of a
    different *known* sweep kind (a compare manifest cannot resume an
    inference sweep), and lines whose recorded ``sim_code`` does not match
    the running simulation source -- replaying a pre-edit timing as
    current would silently mix stale rows into the sweep.  Skipped
    scenarios simply re-run.

    A well-formed line of an *unknown* kind is different: it was written
    by a newer repro, and silently dropping it would quietly re-run (and
    re-append) work the manifest already holds.  That raises
    :class:`ValueError` instead -- forward compatibility fails loudly.
    """
    from .experiments import SWEEP_MODES, SweepResult, sim_fingerprint

    payload_fields = {"compare": "comparison", "inference": "inference", "serving": "serving"}
    payload_field = payload_fields[mode]
    pairs = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except Exception:
            continue
        if not isinstance(d, dict) or "scenario" not in d:
            continue
        kind = d.get("kind", "compare")
        if kind not in SWEEP_MODES:
            raise ValueError(
                f"manifest {path} contains result lines of unknown sweep "
                f"kind {kind!r} (written by a newer repro?); refusing to "
                "--resume -- upgrade repro or resume with a manifest this "
                "version understands"
            )
        try:
            if kind != mode:
                continue
            if d.get("error") is not None or d.get(payload_field) is None:
                continue
            if d.get("sim_code") != sim_fingerprint():
                continue
            result = SweepResult.from_dict(d)
            key = d.get("cache_key") or result.scenario.cache_key()
        except Exception:
            continue
        pairs.append((key, result))
    return pairs


def _manifest_entries(
    path: pathlib.Path,
) -> "tuple[list[tuple[dict, SweepResult]], int]":
    """Every parseable ``SweepResult`` line of a manifest (errors included).

    Returns ``(entries, skipped)`` where ``entries`` are ``(raw_dict,
    SweepResult)`` pairs in file order and ``skipped`` counts corrupt or
    partial lines (tolerated, as everywhere else manifests are read).
    """
    from .experiments import SweepResult

    entries, skipped = [], 0
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
            entries.append((d, SweepResult.from_dict(d)))
        except Exception:
            skipped += 1
    return entries, skipped


def _line_is_success(d: dict) -> bool:
    payload = d.get("comparison")
    if payload is None:
        payload = d.get("inference")
    if payload is None:
        payload = d.get("serving")
    return d.get("error") is None and payload is not None


def _dedupe_manifest_lines(
    pairs: "Iterable[tuple[dict, SweepResult]]",
) -> "dict[tuple[str, str], dict]":
    """Collapse manifest lines to one winner per ``(kind, cache_key)``.

    Manifests append chronologically (``--resume`` re-runs are written
    after the lines they supersede), so later lines win -- except an error
    line never replaces a success.  Across files the same rule applies in
    input order: list the freshest manifest last.  The two sweep kinds
    never collapse into each other (they are different measurements of the
    same scenario, not retries).  Returns ``(winners, order, collapsed)``
    where ``order`` is first-appearance order of the surviving keys.
    """
    best: dict[tuple, dict] = {}
    order: list[tuple] = []
    collapsed = 0
    for key, d in pairs:
        key = (d.get("kind", "compare"), key)
        if key not in best:
            best[key] = d
            order.append(key)
            continue
        collapsed += 1
        if _line_is_success(d) or not _line_is_success(best[key]):
            best[key] = d
    return best, order, collapsed


def _provenance(result: "SweepResult") -> str:
    if result.error is not None:
        return "error"
    if result.stored:
        return "stored"
    return "hit" if result.cache_hit else "trained"


def _metric_cells(result: "SweepResult") -> list[str]:
    """The per-mode measurement table cells for one sweep result.

    Compare results report booster training seconds and the speedup;
    inference results the batch milliseconds and the speedup; serving
    results the booster p50/p99 latency, sustained QPS, and p99 speedup.
    The cell count always matches :func:`_metric_headers` for the result's
    kind, and a missing booster system or baseline renders as ``-``
    instead of raising.
    """
    payload = result.payload
    if result.kind == "serving":
        systems = payload.systems if payload is not None else {}
        if "booster" not in systems:
            return ["-", "-", "-", "-"]
        st = systems["booster"]
        if payload.baseline in systems and st.p99_ms > 0:
            speedup = f"{payload.speedup('booster'):.2f}x"
        else:
            speedup = "-"
        return [
            f"{st.p50_ms:.4g}",
            f"{st.p99_ms:.4g}",
            f"{st.sustained_qps:.4g}",
            speedup,
        ]
    if result.kind == "inference":
        seconds = payload.seconds if payload is not None else {}
        metric = f"{seconds['booster'] * 1e3:.4g}" if "booster" in seconds else "-"
    else:
        seconds = payload.systems if payload is not None else {}
        metric = f"{seconds['booster'].total:.4g}" if "booster" in seconds else "-"
    if payload is not None and "booster" in seconds and payload.baseline in seconds:
        speedup = f"{payload.speedup('booster'):.2f}x"
    else:
        speedup = "-"
    return [metric, speedup]


def _metric_headers(mode: str) -> list[str]:
    """Table headers matching :func:`_metric_cells` for one sweep kind."""
    if mode == "serving":
        return ["p50 (ms)", "p99 (ms)", "QPS", "p99 speedup"]
    if mode == "inference":
        return ["booster (ms)", "speedup"]
    return ["booster (s)", "speedup"]


def _sweep_noun(mode: str) -> str:
    nouns = {"compare": "sweep", "inference": "inference sweep", "serving": "serving sweep"}
    return nouns.get(mode, f"{mode} sweep")


def _duration_cell(result: "SweepResult") -> str:
    """The recorded wall-seconds table cell (``-`` when never recorded:
    error results and manifests written before durations existed)."""
    return "-" if result.duration_s is None else f"{result.duration_s:.2f}"


def _infer_axes(scenarios: "Sequence[ScenarioSpec]") -> list[str]:
    """The axes along which ``scenarios`` actually vary (for ``report``).

    Manifests do not record the sweep's axis declarations, so the report
    derives them: every canonical axis (plus any cost field some scenario
    overrides) that takes more than one value across the scenarios becomes
    a table column.  When clusters vary but the cluster width does not,
    the derived ``n_bus`` axis is shown instead of ``n_clusters`` -- BUs
    are the paper's design-space unit.
    """
    from .experiments import CANONICAL_AXES, read_axis

    # n_bus is derived from n_clusters x bus_per_cluster; the base axes are
    # scanned and the substitution below picks the better label.
    candidates = [name for name in CANONICAL_AXES if name != "n_bus"]
    candidates += sorted(
        {name for s in scenarios for name, _ in s.cost_overrides}
    )
    varying = []
    for name in candidates:
        values = set()
        for scenario in scenarios:
            try:
                values.add(repr(read_axis(scenario, name)))
            except Exception:
                values.add("?")  # e.g. records of an unknown dataset
        if len(values) > 1:
            varying.append(name)
    if "n_clusters" in varying and "bus_per_cluster" not in varying:
        varying[varying.index("n_clusters")] = "n_bus"
    return varying or ["dataset"]


def _expand_cli_scenarios(
    args: argparse.Namespace,
) -> "tuple[dict[str, list], list[ScenarioSpec]]":
    """Validate and expand the sweep-shaped CLI inputs shared by ``sweep``,
    ``plan``, and ``cache export``: ``--dataset/--seed/--trees/--systems``
    plus repeatable ``--axis`` specs.  Returns ``(axes, scenarios)``;
    raises ``ValueError``/``KeyError`` with a printable message, so the
    two commands cannot drift in what they accept.
    """
    from .experiments import ScenarioSpec, ServingParams, expand_axes, parse_axis_specs
    from .gbdt import TrainParams
    from .sim.executor import MODEL_NAMES

    unknown_systems = [s for s in (args.systems or []) if s not in MODEL_NAMES]
    if unknown_systems:
        raise ValueError(
            f"unknown systems {unknown_systems}; known: {list(MODEL_NAMES)}"
        )
    axes = parse_axis_specs(args.axis)
    serving = None
    if getattr(args, "serve", False):
        trace = getattr(args, "trace", None)
        kwargs = dict(
            arrival=getattr(args, "arrival", "poisson"),
            qps=getattr(args, "qps", 200.0),
            duration_s=getattr(args, "serve_duration", 5.0),
            policy=getattr(args, "policy", "batch"),
            max_batch=getattr(args, "max_batch", 32),
            timeout_ms=getattr(args, "batch_timeout_ms", 2.0),
            queue=getattr(args, "queue", "fifo"),
        )
        if trace:
            from .serving import trace_digest

            # Key the scenario by the trace's CONTENT, pinned now: the same
            # file on another host keys identically, an edited file misses.
            kwargs.update(arrival="trace", trace_path=trace, trace_sha=trace_digest(trace))
        serving = ServingParams(**kwargs)
    base = ScenarioSpec(
        dataset=args.dataset,
        seed=args.seed,
        train=TrainParams(n_trees=args.trees),
        systems=tuple(args.systems) if args.systems else (),
        serving=serving,
    )
    scenarios = expand_axes(base, axes)
    for scenario in scenarios:
        scenario.resolved_records()  # rejects unknown dataset axis values
    return axes, scenarios


def _cmd_sweep_axes(args: argparse.Namespace) -> int:
    """Scenario sweep over declared axes (the experiments layer)."""
    from .experiments import (
        SERVING_AXIS_NAMES,
        ResultStore,
        SweepRunner,
        default_cache,
        parse_shard_spec,
        partition_scenarios,
        read_axis,
        result_store_key,
        scenario_key,
    )

    if args.serve and args.inference:
        print(
            "--serve and --inference select different measurements of the "
            "same scenarios; pick one (run two sweeps to get both)",
            file=sys.stderr,
        )
        return 2
    mode = "serving" if args.serve else ("inference" if args.inference else "compare")
    try:
        if args.resume and not args.out:
            raise ValueError("--resume requires --out (the manifest to resume from)")
        if args.balance == "cost" and not args.shard:
            raise ValueError(
                "--balance cost selects how --shard partitions scenarios; "
                "add --shard K/N (or use `repro plan` to preview shard costs)"
            )
        if args.resume and args.refresh:
            raise ValueError(
                "--refresh forces recomputation and --resume skips completed "
                "scenarios; the combination is contradictory -- drop one"
            )
        if args.coordinate and args.shard:
            raise ValueError(
                "--coordinate (dynamic work stealing) and --shard (static "
                "partition) are alternative ways to split a sweep across "
                "hosts; pick one"
            )
        if args.coordinate and args.workers is not None:
            raise ValueError(
                "--coordinate workers run their claimed scenarios one at a "
                "time; for parallelism start more workers sharing the "
                "directory instead of passing --workers"
            )
        if args.lease_ttl is not None and not args.coordinate:
            raise ValueError("--lease-ttl only applies with --coordinate DIR_OR_URL")
        if args.lease_ttl is not None and args.lease_ttl <= 0:
            raise ValueError(
                f"--lease-ttl must be positive, got {args.lease_ttl:g}"
            )
        shard = parse_shard_spec(args.shard) if args.shard else None
        axes, scenarios = _expand_cli_scenarios(args)
        serving_axes = sorted(set(axes) & SERVING_AXIS_NAMES)
        if serving_axes and mode != "serving":
            raise ValueError(
                f"axes {serving_axes} are serving knobs; add --serve (a "
                "training/inference sweep would key scenarios on knobs "
                "that cannot change its measurement)"
            )
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    coordinator = None
    if args.coordinate:
        from .experiments.steal import DEFAULT_LEASE_TTL, Coordinator

        ttl = args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
        coordinator = Coordinator(args.coordinate, ttl=ttl)

    cache = default_cache()
    results_store = ResultStore(root=cache.root)
    total = len(scenarios)
    if shard is not None:
        # Partition BEFORE any cache/manifest work: ownership is a stable
        # function of scenario content (hash or analytic LPT -- never of
        # host-local observed durations, which would differ per store), so
        # every host slices the identical expanded list the same way and
        # the shards are a disjoint cover.
        shard_index, shard_count = shard
        scenarios = partition_scenarios(
            scenarios, shard_index, shard_count, balance=args.balance, mode=mode
        )
    if args.refresh:
        for scenario in scenarios:
            try:
                keys = (scenario.train_key(), result_store_key(scenario, mode))
            except Exception:
                # Unkeyable scenario: nothing can be stored under its key
                # anyway, and it will surface as an error result below.
                continue
            # Deliberately not guarded: a failing unlink (permissions on a
            # shared cache dir, say) must not silently replay the stale
            # result the user explicitly asked to recompute.
            cache.invalidate(keys[0])
            results_store.invalidate(keys[1])

    manifest = pathlib.Path(args.out) if args.out else None
    # Index -> result for scenarios already completed in the manifest.
    resumed: dict[int, object] = {}
    if args.resume and manifest is not None and manifest.exists():
        by_key: dict[str, list] = {}
        try:
            resumable = _resumable_results(manifest, mode)
        except ValueError as exc:
            # e.g. the manifest holds rows of a sweep kind this version
            # does not know; dropping them would silently redo that work.
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
        for key, result in resumable:
            by_key.setdefault(key, []).append(result)
        for i, scenario in enumerate(scenarios):
            bucket = by_key.get(scenario_key(scenario))
            if bucket:
                resumed[i] = bucket.pop(0)

    axis_names = list(axes)
    what = _sweep_noun(mode)
    balance_note = ", cost-balanced" if args.balance == "cost" else ""
    shard_note = (
        f" (shard {shard_index + 1}/{shard_count} of {total}{balance_note})"
        if shard is not None
        else ""
    )
    if coordinator is not None:
        shard_note = f" (stealing from {coordinator.root}, lease TTL {coordinator.ttl:g}s)"
    print(
        f"{what}: {len(scenarios)} scenarios over axes "
        f"{', '.join(axis_names)}{shard_note} (cache: {cache.root})"
    )
    if resumed:
        print(
            f"resume: {len(resumed)}/{len(scenarios)} scenarios already in "
            f"{manifest}; running the remaining {len(scenarios) - len(resumed)}"
        )

    def axis_cells(scenario: "ScenarioSpec") -> list[str]:
        cells = []
        for name in axis_names:
            try:
                cells.append(str(read_axis(scenario, name)))
            except Exception:
                cells.append("?")  # e.g. records of an unknown dataset
        return cells

    def to_row(result: "SweepResult") -> list[str]:
        return axis_cells(result.scenario) + _metric_cells(result) + [
            _provenance(result),
            str(result.worker_pid),
        ]

    ordered: list[list[str] | None] = [None] * len(scenarios)
    for index, result in resumed.items():
        row = to_row(result)
        row[-2] = "resumed"  # provenance: completed in the manifest already
        ordered[index] = row

    pending = [(i, s) for i, s in enumerate(scenarios) if i not in resumed]
    manifest_fh = None
    if manifest is not None:
        manifest.parent.mkdir(parents=True, exist_ok=True)
        # An interrupted run can leave a partial final line with no trailing
        # newline; terminate it before appending so the new result line
        # doesn't fuse with the garbage into one unparseable line.
        needs_newline = (
            args.resume
            and manifest.exists()
            and manifest.stat().st_size > 0
            and not manifest.read_bytes().endswith(b"\n")
        )
        manifest_fh = open(manifest, "a" if args.resume else "w")
        if needs_newline:
            manifest_fh.write("\n")

    failures = 0
    unit = "ms" if mode == "inference" else "s"
    runner = SweepRunner(
        cache=cache,
        max_workers=args.workers,
        parallel=not args.serial and coordinator is None,
        results=results_store,
        mode=mode,
    )

    def emit(index: int | None, result: "SweepResult") -> None:
        """Record one completed result: table row, manifest line, progress."""
        nonlocal failures
        if index is not None:
            ordered[index] = to_row(result)
        if manifest_fh is not None:
            manifest_fh.write(json.dumps(result.to_dict()) + "\n")
            manifest_fh.flush()
        cells = "x".join(axis_cells(result.scenario))
        if result.error is not None:
            failures += 1
            print(f"  FAILED {cells}: {result.error}")
        else:
            label = {"hit": "cache hit"}.get(_provenance(result), _provenance(result))
            if result.kind == "serving":
                p50, p99, qps, speedup = _metric_cells(result)
                print(
                    f"  done {cells}: booster p99 {p99} ms at {qps} qps "
                    f"({speedup}) [{label}]"
                )
            else:
                metric, speedup = _metric_cells(result)
                print(f"  done {cells}: booster {metric} {unit} ({speedup}) [{label}]")

    claimed = 0
    try:
        if coordinator is not None:
            # Work-stealing mode: the lease directory decides who runs what,
            # so this worker's table holds only the scenarios it claimed
            # (plus its own resumed rows); `repro merge` over the workers'
            # manifests reassembles the whole sweep.
            slots: dict[str, list[int]] = {}
            for i, s in enumerate(scenarios):
                if i not in resumed:
                    slots.setdefault(scenario_key(s), []).append(i)
            completed_keys = {scenario_key(scenarios[i]) for i in resumed}
            try:
                for result in runner.run_stealing(
                    scenarios, coordinator, completed=completed_keys
                ):
                    claimed += 1
                    bucket = slots.get(scenario_key(result.scenario))
                    emit(bucket.pop(0) if bucket else None, result)
            except ValueError as exc:
                # e.g. the directory is coordinating a different sweep.
                print(exc.args[0] if exc.args else exc, file=sys.stderr)
                return 2
        else:
            for sub_index, result in runner.run_indexed([s for _, s in pending]):
                emit(pending[sub_index][0], result)
    finally:
        if manifest_fh is not None:
            manifest_fh.close()
    if coordinator is not None:
        distinct = len({scenario_key(s) for s in scenarios})
        print(
            f"steal: claimed {claimed}/{distinct} scenario(s) "
            f"(lease dir: {coordinator.root}, "
            f"{coordinator.stolen} stale lease(s) reclaimed)"
        )

    rows = [row for row in ordered if row is not None]
    print()
    title = (
        f"scenario sweep ({len(rows)} scenarios)"
        if mode == "compare"
        else f"{what} ({len(rows)} scenarios)"
    )
    print(
        render_table(
            axis_names + _metric_headers(mode) + ["training", "pid"],
            rows,
            title=title,
        )
    )
    if failures:
        print(f"{failures} scenario(s) failed; see the error lines above", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_design_space(args: argparse.Namespace) -> int:
    from .core import BoosterConfig, BoosterEngine
    from .energy import AreaPowerModel

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    profile = ex.profile(args.dataset)
    baseline = ex.model("ideal-32-core").training_seconds(profile)
    area = AreaPowerModel()
    rows = []
    for clusters in (5, 10, 25, 50, 100):
        cfg = BoosterConfig(n_clusters=clusters)
        engine = BoosterEngine(config=cfg, bandwidth=ex.bandwidth)
        seconds = engine.training_times(profile).total
        budget = area.estimate(n_bus=cfg.n_bus, n_clusters=clusters)
        rows.append(
            [
                cfg.n_bus,
                f"{baseline / seconds:.2f}x",
                f"{budget.total_mm2:.1f}",
                f"{budget.total_w:.1f}",
            ]
        )
    print(
        render_table(
            ["BUs", "speedup", "area mm2", "power W"],
            rows,
            title=f"design space on {args.dataset} (paper point: 3200 BUs)",
        )
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Predict per-shard sweep costs without training or simulating.

    Expands the axes exactly like ``repro sweep``, prices every scenario
    with the analytic estimator calibrated by any wall times already
    recorded in the result store, and prints the per-scenario and
    per-shard tables for the requested partitioner.  The closing
    ``predicted max shard cost`` line is deliberately machine-greppable --
    CI compares it between ``--balance cost`` and ``--balance hash``.
    """
    from .experiments import (
        ResultStore,
        default_cache,
        observed_durations,
        plan_shards,
        read_axis,
        scenario_costs,
        scenario_key,
    )

    if args.serve and args.inference:
        print(
            "--serve and --inference select different measurements of the "
            "same scenarios; pick one",
            file=sys.stderr,
        )
        return 2
    mode = "serving" if args.serve else ("inference" if args.inference else "compare")
    try:
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        axes, scenarios = _expand_cli_scenarios(args)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2

    results_store = ResultStore(root=default_cache().root)
    observed = observed_durations(results_store, scenarios, mode)
    costs = scenario_costs(scenarios, mode, observed)
    plans = plan_shards(
        scenarios, args.shards, balance=args.balance, mode=mode, costs=costs
    )
    owner = {
        scenario_key(s): plan.shard for plan in plans for s in plan.scenarios
    }

    axis_names = list(axes)
    scenario_rows = []
    for scenario in scenarios:
        cells = []
        for name in axis_names:
            try:
                cells.append(str(read_axis(scenario, name)))
            except Exception:
                cells.append("?")
        key = scenario_key(scenario)
        scenario_rows.append(
            cells
            + [
                f"{costs[key]:.4g}",
                "observed" if key in observed else "estimated",
                str(owner[key] + 1),
            ]
        )
    what = _sweep_noun(mode)
    print(
        render_table(
            (axis_names or ["dataset"]) + ["cost", "source", "shard"],
            scenario_rows
            if axis_names
            else [[args.dataset] + row[-3:] for row in scenario_rows],
            title=f"{what} plan: {len(scenarios)} scenarios, "
            f"{args.shards} shard(s), balance={args.balance}",
        )
    )
    print()
    total = sum(plan.cost for plan in plans)
    shard_rows = [
        [
            str(plan.shard + 1),
            str(plan.n_scenarios),
            f"{plan.cost:.4g}",
            f"{100.0 * plan.cost / total:.1f}%" if total > 0 else "-",
        ]
        for plan in plans
    ]
    print(render_table(["shard", "scenarios", "cost", "share"], shard_rows))
    if observed:
        print(
            f"calibration: {len(observed)}/{len({scenario_key(s) for s in scenarios})} "
            "scenario(s) have recorded wall times in the result store"
        )
    print(
        f"predicted max shard cost: {max(plan.cost for plan in plans):.6g} "
        f"(balance={args.balance}, total {total:.6g})"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Union sweep shard manifests into one manifest (pure file work).

    Lines are deduped by scenario ``cache_key`` with later-lines-supersede
    semantics (see :func:`_dedupe_manifest_lines`): a ``--resume``-healed
    failure or a re-run under edited simulation source survives as its
    freshest line only.  After deduping, the surviving lines must agree on
    ``sim_code``; mixed winners are rejected -- unioning them would
    silently mix stale rows into one table.  Mixed sweep *kinds* merge
    fine: lines dedupe per ``(kind, cache_key)``, so one manifest can hold
    the compare, inference, and serving measurements of the same sweep
    side by side (``repro report`` renders one table per kind).
    """
    from .experiments import scenario_key

    inputs = [pathlib.Path(p) for p in args.inputs]
    missing = [str(p) for p in inputs if not p.exists()]
    if missing:
        print(f"no such manifest(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    pairs = []
    skipped = 0
    for path in inputs:
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except Exception:
                skipped += 1  # corrupt / partial line: tolerated
                continue
            if not isinstance(d, dict) or "scenario" not in d:
                skipped += 1
                continue
            key = d.get("cache_key")
            if not isinstance(key, str):
                try:
                    from .experiments import SweepResult

                    result = SweepResult.from_dict(d)  # pre-cache_key manifest
                    key = scenario_key(result.scenario)
                except Exception:
                    skipped += 1
                    continue
            pairs.append((key, d))
    best, order, collapsed = _dedupe_manifest_lines(pairs)
    # Uniformity is judged on the WINNERS: superseded stale lines (e.g. a
    # shard resumed after a simulator edit re-ran everything and appended
    # fresh lines) must not poison an otherwise-consistent merge.
    sim_codes = {best[key].get("sim_code") for key in order}
    kinds = sorted({kind for kind, _ in order})
    if len(sim_codes) > 1:
        print(
            "refusing to merge manifests recorded under different simulation "
            f"source: sim_code {sorted(map(repr, sim_codes))}; re-run the "
            "stale shards (or --resume them) instead",
            file=sys.stderr,
        )
        return 2
    if not best:
        print("nothing to merge: no parseable result lines", file=sys.stderr)
        return 2

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        for key in order:
            fh.write(json.dumps(best[key]) + "\n")
            # Flush per line, like the sweep writer: an interrupted merge
            # leaves a prefix of durable lines, never a buffered torso.
            fh.flush()
    errors = sum(not _line_is_success(best[key]) for key in order)
    kinds_note = f", kinds: {'+'.join(kinds)}" if len(kinds) > 1 else ""
    print(
        f"merged {len(inputs)} manifest(s) -> {out}: {len(order)} scenarios "
        f"({len(order) - errors} ok, {errors} failed; "
        f"{collapsed} duplicate line(s) dropped, {skipped} unparseable "
        f"line(s) skipped{kinds_note})"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a sweep table straight from a manifest: zero re-runs.

    This is the multi-host endgame: each shard streamed its own manifest,
    ``repro merge`` unioned them, and the report renders the merged rows
    without training or simulating anything.
    """
    from .experiments import SweepResult, scenario_key

    path = pathlib.Path(args.from_manifest)
    if not path.exists():
        print(f"no such manifest: {path}", file=sys.stderr)
        return 2
    raw_entries, skipped = _manifest_entries(path)
    # A resumed manifest appends healed/re-run lines after the ones they
    # supersede; render one row per scenario (the freshest), exactly as
    # merge would keep it.
    pairs = []
    for d, result in raw_entries:
        key = d.get("cache_key")
        if not isinstance(key, str):
            key = scenario_key(result.scenario)
        pairs.append((key, d))
    best, order, collapsed = _dedupe_manifest_lines(pairs)
    entries = [SweepResult.from_dict(best[key]) for key in order]
    if not entries:
        print(f"no parseable result lines in {path}", file=sys.stderr)
        return 2
    if skipped:
        print(f"note: skipped {skipped} unparseable manifest line(s)", file=sys.stderr)
    if collapsed:
        print(
            f"note: collapsed {collapsed} superseded manifest line(s)",
            file=sys.stderr,
        )

    from .experiments import read_axis
    from .sim.results import geomean

    # One table per sweep kind, in first-appearance order: a merged
    # manifest can carry the compare, inference, and serving measurements
    # of the same sweep side by side.
    by_kind: dict[str, list] = {}
    for result in entries:
        by_kind.setdefault(result.kind, []).append(result)

    failures = 0
    first = True
    for mode, group in by_kind.items():
        if not first:
            print()
        first = False
        axis_names = _infer_axes([result.scenario for result in group])
        rows = []
        speedups = []
        for result in group:
            cells = []
            for name in axis_names:
                try:
                    cells.append(str(read_axis(result.scenario, name)))
                except Exception:
                    cells.append("?")
            rows.append(
                cells
                + _metric_cells(result)
                + [_duration_cell(result), _provenance(result), str(result.worker_pid)]
            )
            failures += result.error is not None
            try:
                speedups.append(result.payload.speedup("booster"))
            except Exception:
                pass  # failed scenario, missing system, or degenerate timing
        title = (
            f"scenario sweep ({len(rows)} scenarios, from {path.name})"
            if mode == "compare"
            else f"{_sweep_noun(mode)} ({len(rows)} scenarios, from {path.name})"
        )
        print(
            render_table(
                axis_names + _metric_headers(mode) + ["wall (s)", "training", "pid"],
                rows,
                title=title,
            )
        )
        # Guarded: a manifest whose rows all failed (or lack the booster
        # system) has nothing to aggregate -- that is a note, not a
        # geomean-of-empty traceback.
        if speedups:
            print(
                f"geomean booster speedup: {geomean(speedups):.2f}x "
                f"over {len(speedups)}/{len(group)} scenario(s)"
            )
    durations = [r.duration_s for r in entries if r.duration_s is not None]
    if durations:
        print(
            f"recorded wall time: {sum(durations):.2f} s over "
            f"{len(durations)}/{len(entries)} scenario(s)"
        )
    if failures:
        print(f"{failures} scenario(s) failed in this manifest", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """`repro cache export/import`: move store entries between hosts.

    The archive argument is a tar path, or -- push/pull, no intermediate
    file -- the URL of a `repro store-serve` store: `export URL` copies
    the local store's entries up, `import URL` copies the remote store's
    entries down.
    """
    from .experiments import default_cache
    from .experiments.backend import is_store_url
    from .experiments.cache import copy_entries, export_entries, import_entries

    cache = default_cache()
    if cache.root is None:  # pragma: no cover - default cache is always rooted
        print("the default cache has no disk root; nothing to move", file=sys.stderr)
        return 2
    if args.cache_command == "import":
        try:
            if is_store_url(args.archive):
                imported = copy_entries(args.archive, cache.root)
                what = f"pulled {len(imported)} entr(ies) from {args.archive}"
            else:
                imported = import_entries(cache.root, args.archive)
                what = f"imported {len(imported)} entr(ies)"
        except ValueError as exc:
            # A crafted/corrupt archive (path components that could escape
            # the store directory) is rejected before anything is written.
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot reach store: {exc}", file=sys.stderr)
            return 2
        print(f"{what} into {cache.root}")
        return 0

    keys = None
    if args.axis:
        from .experiments import result_store_key

        try:
            _, scenarios = _expand_cli_scenarios(args)
            keys = set()
            for scenario in scenarios:
                keys.add(scenario.train_key())
                keys.add(result_store_key(scenario, "compare"))
                keys.add(result_store_key(scenario, "inference"))
                keys.add(result_store_key(scenario, "serving"))
        except (KeyError, ValueError) as exc:
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
    scope = "matching the sweep" if keys is not None else "in the store"
    try:
        if is_store_url(args.archive):
            members = copy_entries(cache.root, args.archive, keys=keys)
            print(f"pushed {len(members)} entr(ies) {scope} -> {args.archive}")
            return 0
        members = export_entries(cache.root, args.archive, keys=keys)
    except OSError as exc:
        print(f"cannot reach store: {exc}", file=sys.stderr)
        return 2
    print(f"exported {len(members)} entr(ies) {scope} -> {args.archive}")
    return 0


def _cmd_steal_status(args: argparse.Namespace) -> int:
    """Render a work-stealing lease store: the sweep's live ledger.

    The target is a lease directory or a `repro store-serve` URL; either
    way the listing goes through the coordinator's store backend, so this
    renders exactly what a stealing worker would see.
    """
    import time

    from .experiments.steal import DEFAULT_LEASE_TTL, steal_status

    ttl = args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
    if ttl <= 0:
        print(f"--lease-ttl must be positive, got {ttl:g}", file=sys.stderr)
        return 2
    status = steal_status(args.dir, ttl=ttl)
    if status is None:
        print(f"no such lease store (or unreachable): {args.dir}", file=sys.stderr)
        return 2
    now = time.time()
    rows = []
    for lease, state in status["rows"]:
        # For finished scenarios `renewed` is the completion stamp, so
        # renewed-started is the held wall time; for running ones the
        # clock is still ticking.
        wall = (lease.renewed if lease.done else now) - lease.started
        rows.append(
            [
                lease.key,
                lease.host,
                str(lease.pid or "?"),
                state,
                f"{wall:.1f}",
                f"{now - lease.renewed:.1f}",
            ]
        )
    sweep = status["sweep"]
    mode_note = f", {sweep['mode']}" if sweep and sweep.get("mode") else ""
    print(
        render_table(
            ["scenario", "host", "pid", "state", "held (s)", "renewed (s ago)"],
            rows,
            title=f"work-stealing leases: {args.dir}{mode_note}",
        )
    )
    counts = status["counts"]
    summary = (
        f"{counts['done']} done, {counts['failed']} failed, "
        f"{counts['running']} running, {counts['stale']} stale (claimable)"
    )
    if status["unclaimed"] is not None:
        summary += f", {status['unclaimed']} unclaimed of {sweep['n_scenarios']} scenario(s)"
    print(summary)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """`repro bench`: measure vectorized-vs-reference speedups, emit JSON."""
    from .experiments.bench import run_bench, validate_bench, write_bench

    try:
        doc = run_bench(
            quick=args.quick,
            repeats=args.repeats,
            seed=args.seed,
            progress=lambda msg: print(f"  done {msg}"),
        )
        validate_bench(doc)
    except ValueError as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        write_bench(doc, str(out))
        print(f"wrote {out}")
    rows = [
        [
            cell["id"],
            f"{cell['reference']['p50_s'] * 1e3:.4g}",
            f"{cell['vectorized']['p50_s'] * 1e3:.4g}",
            f"{cell['speedup_p50']:.2f}x",
        ]
        for cell in doc["cells"]
    ]
    mode = "quick grid" if doc["quick"] else "full grid"
    print(
        render_table(
            ["cell", "reference p50 (ms)", "vectorized p50 (ms)", "speedup"],
            rows,
            title=f"repro bench ({mode}, rev {doc['git_rev'][:12]})",
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """`repro lint`: machine-check the project invariants (RPR rules)."""
    from .devtools.lint import lint_main

    return lint_main(
        args.paths,
        fmt=args.format,
        select=args.select,
        deep=args.deep,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        graph_out=args.graph_out,
    )


def _cmd_store_serve(args: argparse.Namespace) -> int:
    """`repro store-serve`: serve a store directory over HTTP.

    Runs until interrupted; prints the bound URL first (with --port 0 the
    kernel picks the port, so scripts parse it from this line).
    """
    from .experiments.store_server import serve_store

    root = pathlib.Path(args.dir)
    root.mkdir(parents=True, exist_ok=True)
    server = serve_store(root, host=args.host, port=args.port)
    host, port = server.server_address[0], server.server_address[1]
    print(f"store-serve: serving {root.resolve()} at http://{host}:{port}/", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .sim.validate import report, validate_all

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    claims = validate_all(ex)
    print(report(claims))
    return 0 if all(c.passed for c in claims) else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "compare": _cmd_compare,
    "inference": _cmd_inference,
    "figures": _cmd_figures,
    "sweep": _cmd_sweep,
    "plan": _cmd_plan,
    "merge": _cmd_merge,
    "report": _cmd_report,
    "cache": _cmd_cache,
    "steal-status": _cmd_steal_status,
    "store-serve": _cmd_store_serve,
    "bench": _cmd_bench,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
