"""Command-line interface for the Booster reproduction.

Installed as the ``repro`` console script::

    repro datasets                      # Table III structure
    repro train higgs --trees 20        # functional training summary
    repro compare flight --scale 10     # hardware comparison (Fig. 7 style)
    repro inference iot                 # batch inference (Fig. 13 style)
    repro figures fig7 fig13            # regenerate paper artifacts
    repro sweep --dataset higgs         # accelerator design space
    repro sweep --axis n_bus=1600,3200 --out results/sweeps/bus.jsonl
    repro sweep --axis n_bus=1600,3200 --out results/sweeps/bus.jsonl --resume
    repro validate                      # full reproduction claim checklist
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_EPILOG = """\
examples:
  repro compare flight --scale 10
  repro sweep --axis n_bus=1600,3200 --axis dataset=higgs,flight
  repro sweep --axis seed=1,2,3 --out results/sweeps/seeds.jsonl
  repro sweep --axis seed=1,2,3 --out results/sweeps/seeds.jsonl --resume

Sweeps stream one JSONL line per scenario to --out as results complete
(failures included, as structured error lines); --resume skips every
scenario with a successful line in the manifest, and the persistent result
store (results/cache/ or $REPRO_CACHE_DIR) replays completed timings with
zero retraining and zero re-simulation.
"""

from .datasets import BENCHMARK_NAMES, dataset_spec, generate, table3_rows
from .gbdt import TrainParams, train, train_level_wise
from .sim.artifacts import ARTIFACTS, build
from .sim.executor import Executor
from .sim.report import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Booster: An Accelerator for Gradient "
        "Boosting Decision Trees' (He, Vijaykumar, Thottethodi).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trees", type=int, default=10, help="boosting rounds to simulate functionally"
    )
    common.add_argument("--seed", type=int, default=7, help="dataset seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "datasets", parents=[common], help="list the benchmark datasets (Table III)"
    )

    p_train = sub.add_parser(
        "train", parents=[common], help="functionally train one benchmark"
    )
    p_train.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_train.add_argument("--records", type=int, default=None, help="override record count")
    p_train.add_argument(
        "--level-wise", action="store_true", help="grow trees level by level (Sec. II-A)"
    )

    p_cmp = sub.add_parser(
        "compare", parents=[common], help="compare hardware models on one benchmark"
    )
    p_cmp.add_argument("dataset", choices=BENCHMARK_NAMES)
    p_cmp.add_argument("--scale", type=float, default=1.0, help="extra record scaling (Fig. 12)")
    p_cmp.add_argument(
        "--systems", nargs="*", default=None, help="subset of hardware models to include"
    )

    p_inf = sub.add_parser(
        "inference", parents=[common], help="batch-inference comparison (Fig. 13)"
    )
    p_inf.add_argument("dataset", choices=BENCHMARK_NAMES)

    p_fig = sub.add_parser(
        "figures", parents=[common], help="regenerate paper tables/figures"
    )
    p_fig.add_argument(
        "names",
        nargs="*",
        default=[],
        help=f"artifacts to render (default: all of {sorted(ARTIFACTS)})",
    )

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="scenario sweep: cartesian axes, parallel workers, persistent cache",
        description="Without --axis, prints the classic Booster design-space "
        "table. With one or more --axis NAME=V1,V2,... arguments, expands the "
        "cartesian product into scenarios and runs them across a process "
        "pool, serving functional training and completed timing results from "
        "the persistent stores (results/cache/ or $REPRO_CACHE_DIR).  A "
        "failing scenario is reported and streamed like any other result; "
        "the rest of the sweep completes.",
    )
    p_sweep.add_argument("--dataset", choices=BENCHMARK_NAMES, default="higgs")
    p_sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep axis (repeatable); e.g. --axis n_bus=1600,3200 "
        "--axis dataset=higgs,flight",
    )
    p_sweep.add_argument(
        "--systems",
        nargs="*",
        default=None,
        help="hardware models to time in each scenario",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool size (default: auto)"
    )
    p_sweep.add_argument(
        "--serial", action="store_true", help="run scenarios in-process, one by one"
    )
    p_sweep.add_argument(
        "--refresh",
        action="store_true",
        help="drop cached training artifacts and stored timing results for "
        "these scenarios first",
    )
    p_sweep.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="stream results to a JSONL manifest, one line per scenario "
        "(written as each completes; failures become structured error lines)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="with --out: skip scenarios that already have a successful line "
        "in the manifest and run only the missing/failed ones",
    )

    sub.add_parser(
        "validate", parents=[common], help="run the reproduction claim checklist"
    )
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            r["name"],
            f"{r['paper_records'] / 1e6:.0f}M",
            r["sim_records"],
            r["fields"],
            r["categorical_fields"],
            r["features_onehot"],
            r["comment"],
        ]
        for r in table3_rows()
    ]
    print(
        render_table(
            ["name", "paper recs", "sim recs", "fields", "categ", "features", "comment"],
            rows,
            title="benchmarks (Table III structure)",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    spec = dataset_spec(args.dataset, n_records=args.records, seed=args.seed)
    data = generate(spec)
    fit = train_level_wise if args.level_wise else train
    result = fit(data, TrainParams(n_trees=args.trees))
    summary = result.profile.summary()
    rows = [[k, v] for k, v in summary.items()]
    rows.append(["growth", result.profile.growth])
    rows.append(["final loss", f"{result.losses[-1]:.5f}"])
    rows.append(["wall seconds", f"{result.profile.train_seconds_wall:.2f}"])
    print(render_table(["quantity", "value"], rows, title=f"training summary: {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    cmp = ex.compare(args.dataset, systems=args.systems, extra_scale=args.scale)
    print(cmp.table())
    return 0


def _cmd_inference(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    result = ex.inference(args.dataset)
    rows = [
        [system, f"{seconds * 1e3:.2f} ms", f"{result.speedup(system):.1f}x"]
        for system, seconds in result.seconds.items()
    ]
    print(
        render_table(
            ["system", "batch time", "speedup"],
            rows,
            title=f"batch inference: {args.dataset} (500 trees)",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    ex = Executor(sim_trees=args.trees, seed=args.seed)
    names = args.names or list(ARTIFACTS)
    for name in names:
        try:
            print(build(name, ex))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis:
        return _cmd_sweep_axes(args)
    if args.out or args.resume:
        # Silently ignoring these would leave a scripted caller waiting on a
        # manifest that never appears.
        print(
            "--out/--resume apply to axis sweeps; add at least one "
            "--axis NAME=V1,V2,...",
            file=sys.stderr,
        )
        return 2
    return _cmd_sweep_design_space(args)


def _resumable_results(path: pathlib.Path):
    """Parse a JSONL sweep manifest into ``(cache_key, SweepResult)`` pairs
    that are safe to resume from.

    Corrupt/partial lines are skipped (an interrupted run can leave a
    truncated final line; tolerating it is what makes ``--resume`` safe
    after any kind of crash), and so are failed results and lines whose
    recorded ``sim_code`` does not match the running simulation source --
    replaying a pre-edit timing as current would silently mix stale rows
    into the sweep.  Skipped scenarios simply re-run.
    """
    from .experiments import SweepResult, sim_fingerprint

    pairs = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
            if d.get("error") is not None or d.get("comparison") is None:
                continue
            if d.get("sim_code") != sim_fingerprint():
                continue
            result = SweepResult.from_dict(d)
            key = d.get("cache_key") or result.scenario.cache_key()
        except Exception:
            continue
        pairs.append((key, result))
    return pairs


def _provenance(result) -> str:
    if result.error is not None:
        return "error"
    if result.stored:
        return "stored"
    return "hit" if result.cache_hit else "trained"


def _cmd_sweep_axes(args: argparse.Namespace) -> int:
    """Scenario sweep over declared axes (the experiments layer)."""
    from .experiments import (
        ResultStore,
        ScenarioSpec,
        SweepRunner,
        default_cache,
        expand_axes,
        parse_axis_specs,
        read_axis,
    )
    from .gbdt import TrainParams

    from .sim.executor import MODEL_NAMES

    try:
        if args.resume and not args.out:
            raise ValueError("--resume requires --out (the manifest to resume from)")
        if args.resume and args.refresh:
            raise ValueError(
                "--refresh forces recomputation and --resume skips completed "
                "scenarios; the combination is contradictory -- drop one"
            )
        unknown_systems = [s for s in (args.systems or []) if s not in MODEL_NAMES]
        if unknown_systems:
            raise ValueError(
                f"unknown systems {unknown_systems}; known: {list(MODEL_NAMES)}"
            )
        axes = parse_axis_specs(args.axis)
        base = ScenarioSpec(
            dataset=args.dataset,
            seed=args.seed,
            train=TrainParams(n_trees=args.trees),
            systems=tuple(args.systems) if args.systems else (),
        )
        scenarios = expand_axes(base, axes)
        for scenario in scenarios:
            scenario.resolved_records()  # rejects unknown dataset axis values
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2

    cache = default_cache()
    results_store = ResultStore(root=cache.root)
    if args.refresh:
        for scenario in scenarios:
            cache.invalidate(scenario.train_key())
            results_store.invalidate(scenario.cache_key())

    manifest = pathlib.Path(args.out) if args.out else None
    # Index -> result for scenarios already completed in the manifest.
    resumed: dict[int, object] = {}
    if args.resume and manifest is not None and manifest.exists():
        by_key: dict[str, list] = {}
        for key, result in _resumable_results(manifest):
            by_key.setdefault(key, []).append(result)
        for i, scenario in enumerate(scenarios):
            bucket = by_key.get(scenario.cache_key())
            if bucket:
                resumed[i] = bucket.pop(0)

    axis_names = list(axes)
    print(
        f"sweep: {len(scenarios)} scenarios over axes "
        f"{', '.join(axis_names)} (cache: {cache.root})"
    )
    if resumed:
        print(
            f"resume: {len(resumed)}/{len(scenarios)} scenarios already in "
            f"{manifest}; running the remaining {len(scenarios) - len(resumed)}"
        )

    def axis_cells(scenario) -> list[str]:
        cells = []
        for name in axis_names:
            try:
                cells.append(str(read_axis(scenario, name)))
            except Exception:
                cells.append("?")  # e.g. records of an unknown dataset
        return cells

    def to_row(result) -> list[str]:
        times = result.comparison.systems if result.comparison is not None else {}
        booster_cell = f"{times['booster'].total:.4g}" if "booster" in times else "-"
        if "booster" in times and result.comparison.baseline in times:
            speedup_cell = f"{result.booster_speedup:.2f}x"
        else:
            speedup_cell = "-"
        return axis_cells(result.scenario) + [
            booster_cell,
            speedup_cell,
            _provenance(result),
            str(result.worker_pid),
        ]

    ordered: list[list[str] | None] = [None] * len(scenarios)
    for index, result in resumed.items():
        row = to_row(result)
        row[-2] = "resumed"  # provenance: completed in the manifest already
        ordered[index] = row

    pending = [(i, s) for i, s in enumerate(scenarios) if i not in resumed]
    manifest_fh = None
    if manifest is not None:
        manifest.parent.mkdir(parents=True, exist_ok=True)
        # An interrupted run can leave a partial final line with no trailing
        # newline; terminate it before appending so the new result line
        # doesn't fuse with the garbage into one unparseable line.
        needs_newline = (
            args.resume
            and manifest.exists()
            and manifest.stat().st_size > 0
            and not manifest.read_bytes().endswith(b"\n")
        )
        manifest_fh = open(manifest, "a" if args.resume else "w")
        if needs_newline:
            manifest_fh.write("\n")

    failures = 0
    runner = SweepRunner(
        cache=cache,
        max_workers=args.workers,
        parallel=not args.serial,
        results=results_store,
    )
    try:
        for sub_index, result in runner.run_indexed([s for _, s in pending]):
            index = pending[sub_index][0]
            ordered[index] = to_row(result)
            if manifest_fh is not None:
                manifest_fh.write(json.dumps(result.to_dict()) + "\n")
                manifest_fh.flush()
            cells = "x".join(axis_cells(result.scenario))
            if result.error is not None:
                failures += 1
                print(f"  FAILED {cells}: {result.error}")
            else:
                row = ordered[index]
                label = {"hit": "cache hit"}.get(_provenance(result), _provenance(result))
                print(f"  done {cells}: booster {row[-4]} s ({row[-3]}) [{label}]")
    finally:
        if manifest_fh is not None:
            manifest_fh.close()

    rows = [row for row in ordered if row is not None]
    print()
    print(
        render_table(
            axis_names + ["booster (s)", "speedup", "training", "pid"],
            rows,
            title=f"scenario sweep ({len(rows)} scenarios)",
        )
    )
    if failures:
        print(f"{failures} scenario(s) failed; see the error lines above", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_design_space(args: argparse.Namespace) -> int:
    from .core import BoosterConfig, BoosterEngine
    from .energy import AreaPowerModel

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    profile = ex.profile(args.dataset)
    baseline = ex.model("ideal-32-core").training_seconds(profile)
    area = AreaPowerModel()
    rows = []
    for clusters in (5, 10, 25, 50, 100):
        cfg = BoosterConfig(n_clusters=clusters)
        engine = BoosterEngine(config=cfg, bandwidth=ex.bandwidth)
        seconds = engine.training_times(profile).total
        budget = area.estimate(n_bus=cfg.n_bus, n_clusters=clusters)
        rows.append(
            [
                cfg.n_bus,
                f"{baseline / seconds:.2f}x",
                f"{budget.total_mm2:.1f}",
                f"{budget.total_w:.1f}",
            ]
        )
    print(
        render_table(
            ["BUs", "speedup", "area mm2", "power W"],
            rows,
            title=f"design space on {args.dataset} (paper point: 3200 BUs)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .sim.validate import report, validate_all

    ex = Executor(sim_trees=args.trees, seed=args.seed)
    claims = validate_all(ex)
    print(report(claims))
    return 0 if all(c.passed for c in claims) else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "compare": _cmd_compare,
    "inference": _cmd_inference,
    "figures": _cmd_figures,
    "sweep": _cmd_sweep,
    "validate": _cmd_validate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
