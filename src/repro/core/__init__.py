"""The Booster accelerator model -- the paper's primary contribution.

Public API::

    from repro.core import BoosterEngine, BoosterConfig, PAPER_CONFIG
    engine = BoosterEngine()                       # full Booster
    noopt  = BoosterEngine(mapping_strategy="naive", column_format=False)
    times  = engine.training_times(profile)        # StepTimes
"""

from .broadcast import BroadcastBus
from .config import PAPER_CONFIG, BoosterConfig
from .engine import BoosterEngine, Step1MicroResult, simulate_step1_micro
from .mapping import BinMapping, group_by_field_mapping, naive_packing_mapping

__all__ = [
    "BinMapping",
    "BoosterConfig",
    "BoosterEngine",
    "BroadcastBus",
    "PAPER_CONFIG",
    "Step1MicroResult",
    "group_by_field_mapping",
    "naive_packing_mapping",
    "simulate_step1_micro",
]
