"""Booster chip configuration (Sec. III-B, Fig. 5, Table V/VI design point).

The published design: 50 clusters x 64 BUs = 3200 BUs, each BU a 2 KB SRAM
plus an FP adder pair, at 1 GHz.  The rate-matching argument (Sec. III-B):
400 GB/s DRAM at 64 B blocks supplies 6.25 blocks/cycle; at one byte per
field that is 400 field updates arriving per cycle; each update occupies its
BU for 8 cycles; so 3200 BUs saturate the memory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BoosterConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class BoosterConfig:
    """Structural parameters of one Booster chip."""

    n_clusters: int = 50
    bus_per_cluster: int = 64
    sram_bytes: int = 2048
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.n_clusters < 1 or self.bus_per_cluster < 1:
            raise ValueError("need at least one cluster and one BU per cluster")
        if self.sram_bytes < 64:
            raise ValueError("SRAM must hold at least a few bins")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")

    @property
    def n_bus(self) -> int:
        """Total Booster Units on the chip."""
        return self.n_clusters * self.bus_per_cluster

    def sram_entries(self, bin_bytes: int = 8) -> int:
        """Histogram bins one BU SRAM holds (2 KB / 8 B = 256, Sec. III-C)."""
        if bin_bytes <= 0:
            raise ValueError("bin_bytes must be positive")
        return self.sram_bytes // bin_bytes

    @property
    def total_sram_bytes(self) -> int:
        return self.n_bus * self.sram_bytes


#: The exact configuration synthesized in the paper.
PAPER_CONFIG = BoosterConfig()
