"""Bin-to-SRAM mapping strategies (Sec. III-A and the Fig. 9 ablation).

Because every record updates **exactly one bin per field** (the density
property from the one-hot optimization and the absent bins), the mapping of
histogram bins to SRAMs decides both serialization and load balance:

* **group-by-field** (Booster's): all bins of one field go to one SRAM (or a
  group of SRAMs when the field exceeds one SRAM's entries, extension (3) of
  Sec. III-C) -- every SRAM sees at most one update per record, full
  bandwidth;
* **naive packing** (the Fig. 9 "no-opts" baseline): bins fill SRAMs
  greedily by capacity, so several small fields can land in one SRAM, whose
  BU then serializes those fields' updates while other SRAMs idle.

The remaining BUs replicate the histogram so multiple records proceed in
parallel; replicas are reduced at step end (Sec. III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.schema import DatasetSpec
from .config import BoosterConfig

__all__ = ["BinMapping", "group_by_field_mapping", "naive_packing_mapping"]


@dataclass
class BinMapping:
    """One histogram copy's placement plus chip-level replication facts."""

    strategy: str
    #: SRAMs needed to hold one histogram copy.
    srams_per_copy: int
    #: Expected updates the busiest SRAM receives per record (1.0 is ideal;
    #: >1 means that SRAM's BU serializes while others idle).
    serialization: float
    #: Full histogram copies that fit across the chip (>= 1).
    replicas: int
    #: Passes over the record stream when one copy exceeds all BUs
    #: (field-partitioning, extension (1) of Sec. III-C).
    field_passes: int
    #: Fraction of allocated SRAM entries actually holding bins.
    utilization: float
    #: Expected updates per SRAM per record, one entry per SRAM of a copy.
    sram_load: np.ndarray

    @property
    def records_in_flight(self) -> int:
        return self.replicas

    def throughput_records_per_cycle(self, bu_op_cycles: int) -> float:
        """Step-1 record throughput of the whole chip.

        Each record occupies its copy's SRAMs for ``bu_op_cycles *
        serialization`` cycles; ``replicas`` records proceed concurrently.
        """
        per_record = bu_op_cycles * max(self.serialization, 1.0) * self.field_passes
        return self.replicas / per_record


def _field_bins(spec: DatasetSpec) -> np.ndarray:
    return np.array([f.n_total_bins for f in spec.fields], dtype=np.int64)


def group_by_field_mapping(
    spec: DatasetSpec, config: BoosterConfig, bin_bytes: int = 8
) -> BinMapping:
    """Booster's mapping: one field per SRAM (group of SRAMs if oversized)."""
    entries = config.sram_entries(bin_bytes)
    bins = _field_bins(spec)
    srams_per_field = np.maximum(1, -(-bins // entries))  # ceil
    srams_per_copy = int(srams_per_field.sum())

    if srams_per_copy <= config.n_bus:
        replicas = config.n_bus // srams_per_copy
        field_passes = 1
    else:
        # More fields than SRAMs: partition fields, one pass per partition.
        replicas = 1
        field_passes = -(-srams_per_copy // config.n_bus)

    # Oversized fields spread over k SRAMs: each record updates exactly one of
    # the k (the repeated-bin trick keeps the 1:1 field/SRAM distribution),
    # so per-SRAM expected load is 1/k -- never above one.
    load = np.concatenate(
        [np.full(k, 1.0 / k) for k in srams_per_field.tolist()]
    )
    used_entries = float(bins.sum())
    alloc_entries = float(srams_per_copy * entries)
    return BinMapping(
        strategy="group-by-field",
        srams_per_copy=srams_per_copy,
        serialization=1.0,
        replicas=int(replicas),
        field_passes=int(field_passes),
        utilization=used_entries / alloc_entries,
        sram_load=load,
    )


def naive_packing_mapping(
    spec: DatasetSpec, config: BoosterConfig, bin_bytes: int = 8
) -> BinMapping:
    """Capacity-greedy packing (Fig. 4 left / Fig. 9 "Booster-no-opts").

    Bins are appended left-to-right, splitting fields across SRAM boundaries.
    A record's expected updates to SRAM ``s`` equal the fraction of each
    field's bins resident there (each record updates one uniformly-placed bin
    per field, in expectation); the busiest SRAM serializes its BU.
    """
    entries = config.sram_entries(bin_bytes)
    bins = _field_bins(spec)
    total_bins = int(bins.sum())
    srams_per_copy = max(1, -(-total_bins // entries))

    load = np.zeros(srams_per_copy, dtype=np.float64)
    cursor = 0  # global entry index
    for nb in bins.tolist():
        start, end = cursor, cursor + nb
        first, last = start // entries, (end - 1) // entries
        for s in range(first, last + 1):
            lo = max(start, s * entries)
            hi = min(end, (s + 1) * entries)
            load[s] += (hi - lo) / nb
        cursor = end

    if srams_per_copy <= config.n_bus:
        replicas = config.n_bus // srams_per_copy
        field_passes = 1
    else:
        replicas = 1
        field_passes = -(-srams_per_copy // config.n_bus)

    return BinMapping(
        strategy="naive-packing",
        srams_per_copy=srams_per_copy,
        serialization=float(load.max()),
        replicas=int(replicas),
        field_passes=int(field_passes),
        utilization=total_bins / float(srams_per_copy * entries),
        sram_load=load,
    )
