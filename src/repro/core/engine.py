"""Booster training engine: timing for the accelerated steps 1, 3, 5.

Timing follows the paper's construction (Sec. III-B): the accelerated steps
are *rate-matched* to DRAM, so each step's time is the maximum of its memory
time (bytes at the sustained bandwidth measured from the cycle-level DRAM
model) and its on-chip compute time (BU occupancy under the bin-to-SRAM
mapping), plus the per-vertex overheads the host offload introduces:

* broadcast-pipeline fill per vertex stream (200 cycles at the design point);
* on-chip reduction of the histogram replicas (log2(replicas) pipelined
  passes over each SRAM's entries);
* shipping the reduced histogram to the host over PCIe and receiving the
  chosen predicate back (step 2 runs on the host for *every* system).

A micro cycle-by-cycle simulation of step 1 (`simulate_step1_micro`) walks
individual records through the fetch/broadcast/BU pipeline against the
cycle-level DRAM model; tests assert it agrees with the analytic rate-match
equations, which is how the paper validates that compute hides under memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.base import HardwareModel, StepTimes, host_step2_seconds
from ..datasets.layout import RecordLayout
from ..datasets.schema import DatasetSpec
from ..gbdt.workprofile import InferenceWork, WorkProfile
from ..memory.dram import DRAMSimulator
from ..memory.profile import BandwidthProfile
from ..sim.calibrate import CostModel
from .broadcast import BroadcastBus
from .config import BoosterConfig, PAPER_CONFIG
from .mapping import BinMapping, group_by_field_mapping, naive_packing_mapping

__all__ = ["BoosterEngine", "Step1MicroResult", "simulate_step1_micro"]


class BoosterEngine(HardwareModel):
    """The full Booster accelerator model.

    ``mapping_strategy`` and ``column_format`` select the optimization level
    for the Fig. 9 ablation:

    * ``("naive", False)``  -> Booster-no-opts (BU parallelism only),
    * ``("field", False)``  -> + group-by-field mapping,
    * ``("field", True)``   -> + redundant column-major format (full Booster).
    """

    name = "booster"

    def __init__(
        self,
        config: BoosterConfig | None = None,
        costs: CostModel | None = None,
        bandwidth: BandwidthProfile | None = None,
        mapping_strategy: str = "field",
        column_format: bool = True,
    ) -> None:
        super().__init__(costs=costs, bandwidth=bandwidth)
        self.config = config or PAPER_CONFIG
        if mapping_strategy not in ("field", "naive"):
            raise ValueError(f"unknown mapping strategy {mapping_strategy!r}")
        self.mapping_strategy = mapping_strategy
        self.column_format = column_format
        self.bus = BroadcastBus(self.config, fanin=self.costs.broadcast_fanin)

    # -- mapping --------------------------------------------------------------------

    def bin_mapping(self, profile: WorkProfile) -> BinMapping:
        if self.mapping_strategy == "field":
            return group_by_field_mapping(
                profile.spec, self.config, self.costs.sram_bin_bytes
            )
        return naive_packing_mapping(profile.spec, self.config, self.costs.sram_bin_bytes)

    def _cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.config.clock_ghz * 1e9)

    # -- training --------------------------------------------------------------------

    def training_times(self, profile: WorkProfile) -> StepTimes:
        c = self.costs
        layout = self.layout(profile)
        mapping = self.bin_mapping(profile)

        stacked = profile.stacked
        n_nodes_binned = int((stacked.n_binned > 0).sum())
        n_evals = profile.step2_evaluations()
        n_split_nodes = int(stacked.is_split.sum())

        # ---- Step 1: histogram binning ------------------------------------------
        throughput = mapping.throughput_records_per_cycle(c.bu_op_cycles)
        if profile.growth == "level":
            # Level-wise growth keeps one histogram per live vertex resident
            # (Sec. II-A); the replicas that vertex-wise growth spends on
            # inter-record parallelism are consumed by vertex histograms.
            live = int(np.ceil(profile.mean_live_vertices()))
            replicas_eff = max(1, mapping.replicas // live)
            per_record = c.bu_op_cycles * max(mapping.serialization, 1.0) * mapping.field_passes
            throughput = replicas_eff / per_record
        compute_cycles = profile.binned_records() / throughput
        mem_bytes = profile.step1_bytes(layout)
        if mapping.field_passes > 1:
            # Field partitioning refetches g/h once per extra pass (Sec. III-C (1)).
            extra = (mapping.field_passes - 1) * float(
                np.sum(layout.stats_bytes_gather(stacked.binned_nonzero, profile.n_records))
            )
            mem_bytes += extra
        fill_cycles = n_nodes_binned * self.bus.fill_cycles
        s1 = max(
            self._cycles_to_seconds(compute_cycles),
            self.mem_seconds(mem_bytes),
        ) + self._cycles_to_seconds(fill_cycles)

        # ---- Step 2: host offload -------------------------------------------------
        s2 = host_step2_seconds(profile, c, reduce_copies=0)

        # On-chip replica reduction: log2(replicas) pipelined passes over each
        # SRAM's entries (pairwise adder-tree across neighbouring copies).
        entries = self.config.sram_entries(c.sram_bin_bytes)
        reduce_cycles = (
            n_evals
            * _log2ceil(mapping.replicas)
            * entries
            * c.reduce_cycles_per_entry
        )
        # Ship the reduced histograms up, get the predicates back.  The PCIe
        # payload scales with evaluated vertices either way, but level-wise
        # growth batches a whole level into one round trip, so the fixed
        # latency is paid per *level*, not per vertex.
        sync_points = profile.total_levels() if profile.growth == "level" else n_evals
        pcie_s = (
            n_evals * profile.n_total_bins * c.offload_bin_bytes / (c.pcie_gbps * 1e9)
            + sync_points * c.booster_node_overhead_s
        )
        other = self._cycles_to_seconds(reduce_cycles) + pcie_s

        # ---- Step 3: single-predicate evaluation ------------------------------------
        s3_compute = profile.partition_records() * c.bu_predicate_cycles / self.config.n_bus
        s3_mem = profile.step3_bytes(layout, column_format=self.column_format)
        s3_fill = n_split_nodes * self.bus.fill_cycles
        s3 = max(self._cycles_to_seconds(s3_compute), self.mem_seconds(s3_mem)) + (
            self._cycles_to_seconds(s3_fill)
        )

        # ---- Step 5: one-tree traversal ----------------------------------------------
        s5_compute = profile.traversal_hops() * c.bu_hop_cycles / self.config.n_bus
        s5_mem = profile.step5_bytes(layout, column_format=self.column_format)
        # Tree-table replication into every BU, once per tree.
        table_cycles = int(stacked.n_nodes.sum())
        s5_fill = self.bus.replicate_table_cycles(table_cycles)
        s5 = max(self._cycles_to_seconds(s5_compute), self.mem_seconds(s5_mem)) + (
            self._cycles_to_seconds(s5_fill)
        )

        return StepTimes(step1=s1, step2=s2, step3=s3, step5=s5, other=other)

    # -- inference -------------------------------------------------------------------

    def inference_seconds(self, work: InferenceWork) -> float:
        """Batch inference (Sec. III-D): tree replicas across BUs.

        Each tree loads into one BU; replicas of the whole ensemble raise
        record throughput.  A BU's table walk provisions ``max_depth`` lookups
        per record regardless of the actual path -- the reason IoT's shallow
        trees do *not* speed Booster up (Fig. 13 discussion).
        """
        c = self.costs
        n_bus = self.config.n_bus
        # Too many trees: round-robin across chips (Sec. III-D); each chip
        # holds a distinct slice of the ensemble and sees every record.
        chips = max(1, -(-work.n_trees // n_bus))
        # Whole-ensemble replicas across all chips' BUs: each replica group
        # walks one record through all its trees concurrently, so throughput
        # scales with replicas, and per-record latency is depth-bound.
        replicas = max(1, (n_bus * chips) // work.n_trees)
        per_record_cycles = work.max_depth * c.bu_hop_cycles
        compute_cycles = work.n_records * per_record_cycles / replicas
        # Every chip streams the full record set once (records are broadcast
        # on-chip to the replica groups).
        layout = RecordLayout(work.spec)
        mem_bytes = chips * layout.row_bytes_sequential(work.n_records)
        return max(self._cycles_to_seconds(compute_cycles), self.mem_seconds(mem_bytes))


def _log2ceil(x: int) -> int:
    n = 0
    v = 1
    while v < x:
        v *= 2
        n += 1
    return n


@dataclass
class Step1MicroResult:
    """Outcome of the cycle-by-cycle step-1 pipeline simulation."""

    n_records: int
    total_cycles: int
    analytic_cycles: float
    bu_busy_cycles: int
    mem_cycles: int

    @property
    def relative_error(self) -> float:
        if self.analytic_cycles == 0:
            return 0.0
        return abs(self.total_cycles - self.analytic_cycles) / self.analytic_cycles


#: Below this record count the scalar reference loop is used; it is both the
#: documentation of the admission semantics and the equivalence oracle.
_ADMIT_VECTOR_MIN = 128


def _admit_records_scalar(
    arrivals: np.ndarray, fill: int, per_record: int, replicas: int
) -> tuple[int, int]:
    """Reference admission loop: earliest-free replica, one record at a time."""
    replica_free = np.zeros(replicas, dtype=np.int64)
    finish = 0
    busy = 0
    for i in range(arrivals.size):
        r = int(np.argmin(replica_free))
        start = max(int(arrivals[i]) + fill, int(replica_free[r]))
        end = start + per_record
        replica_free[r] = end
        busy += per_record
        finish = max(finish, end)
    return finish, busy


def _admit_records_vectorized(
    arrivals: np.ndarray, fill: int, per_record: int, replicas: int
) -> tuple[int, int]:
    """Closed-form admission schedule for non-decreasing arrivals.

    With equal service times and non-decreasing arrivals, earliest-free
    replica selection degenerates to deterministic round-robin (record ``i``
    runs on replica ``i % R``): end times are non-decreasing in admission
    order, so the least-loaded replica is always the least recently assigned
    one.  Per replica the recurrence ``end_j = max(a_j + fill, end_{j-1}) +
    p`` unrolls to ``end_j = max_{k<=j}(a_k + fill - k*p) + (j+1)*p``, a
    running maximum NumPy computes in one pass over ``arrivals`` reshaped by
    replica.
    """
    n = int(arrivals.size)
    if n == 0:
        return 0, 0
    rows = -(-n // replicas)
    slack = np.full(rows * replicas, np.iinfo(np.int64).min // 2, dtype=np.int64)
    j = np.repeat(np.arange(rows, dtype=np.int64), replicas)[:n]
    slack[:n] = arrivals + fill - j * per_record
    run_max = np.maximum.accumulate(slack.reshape(rows, replicas), axis=0)
    ends = run_max + (np.arange(rows, dtype=np.int64)[:, None] + 1) * per_record
    finish = int(ends.reshape(-1)[:n].max())
    return finish, n * per_record


def _admit_records(
    arrivals: np.ndarray, fill: int, per_record: int, replicas: int
) -> tuple[int, int]:
    """(makespan, busy cycles) of admitting ``arrivals`` into the BU replicas."""
    if arrivals.size < _ADMIT_VECTOR_MIN:
        return _admit_records_scalar(arrivals, fill, per_record, replicas)
    return _admit_records_vectorized(arrivals, fill, per_record, replicas)


def simulate_step1_micro(
    n_records: int,
    spec: DatasetSpec,
    config: BoosterConfig | None = None,
    costs: CostModel | None = None,
    mapping_strategy: str = "field",
    seed: int = 0,
) -> Step1MicroResult:
    """Walk records one by one through fetch -> broadcast -> BU pipeline.

    Double-buffering is modeled by letting the DRAM stream run ahead of the
    BUs (records are admitted when both their data and a replica slot are
    ready).  The analytic model says total cycles ~= max(memory, compute) +
    broadcast fill; this micro-simulation checks that equation for real
    configurations, mirroring the paper's RTL-validation role.
    """
    from ..datasets.layout import LayoutConfig

    config = config or PAPER_CONFIG
    costs = costs or CostModel()
    layout = RecordLayout(spec, LayoutConfig())
    if mapping_strategy == "field":
        mapping = group_by_field_mapping(spec, config, costs.sram_bin_bytes)
    else:
        mapping = naive_packing_mapping(spec, config, costs.sram_bin_bytes)

    # Memory: stream the records' blocks through the cycle-level DRAM model.
    blocks_per_record = layout.blocks_per_record
    records_per_block = layout.records_per_block
    if records_per_block > 1:
        n_blocks = -(-n_records // records_per_block)
    else:
        n_blocks = n_records * blocks_per_record
    dram = DRAMSimulator()
    stats = dram.run(np.arange(n_blocks, dtype=np.int64))
    mem_cycles = stats.total_cycles

    # Compute: replicas admit one record each per (bu_op * serialization).
    fill = BroadcastBus(config, costs.broadcast_fanin).fill_cycles
    per_record = costs.bu_op_cycles * max(mapping.serialization, 1.0) * mapping.field_passes
    # Record i's data is available once its block has streamed in; approximate
    # arrival as a linear schedule against the measured stream makespan.
    arrivals = np.linspace(0, mem_cycles, n_records, endpoint=False).astype(np.int64)
    finish, busy = _admit_records(
        arrivals, fill, int(round(per_record)), mapping.replicas
    )

    throughput = mapping.throughput_records_per_cycle(costs.bu_op_cycles)
    analytic = max(mem_cycles, n_records / throughput) + fill
    return Step1MicroResult(
        n_records=n_records,
        total_cycles=finish,
        analytic_cycles=float(analytic),
        bu_busy_cycles=busy,
        mem_cycles=mem_cycles,
    )
