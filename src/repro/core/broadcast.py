"""Pipelined broadcast bus model (Sec. III-B).

The per-record gradient statistics (g, h) and the step-3/5 predicates/tables
are *logically* broadcast to all BUs, implemented "as a simple, pipelined
broadcast over point-to-point links (e.g., 16 BUs per link)".  A pipelined
broadcast has a fill latency of ``n_bus / fanin`` cycles (3200/16 = 200 in
the paper) paid once per stream; with millions of records per stream, the
fill and drain are negligible -- but they are modeled, not ignored, because
ablations with very wide chips or tiny datasets can surface them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import BoosterConfig

__all__ = ["BroadcastBus"]


@dataclass(frozen=True)
class BroadcastBus:
    """Timing facts of the broadcast network for one chip configuration."""

    config: BoosterConfig
    fanin: int = 16

    def __post_init__(self) -> None:
        if self.fanin < 1:
            raise ValueError("fanin must be >= 1")

    @property
    def fill_cycles(self) -> int:
        """Pipeline fill: one hop per ``fanin`` BUs (3200/16 = 200 cycles)."""
        return -(-self.config.n_bus // self.fanin)

    def stream_cycles(self, n_items: int, items_per_cycle: float = 1.0) -> float:
        """Cycles to broadcast ``n_items`` once the pipe is full."""
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        if items_per_cycle <= 0:
            raise ValueError("items_per_cycle must be positive")
        return self.fill_cycles + n_items / items_per_cycle

    def replicate_table_cycles(self, table_entries: int) -> float:
        """Cycles to replicate a predicate/tree table into every SRAM.

        The table streams once over the broadcast network; BUs snoop and
        write their local copy (steps 3 and 5 of Table II).
        """
        return self.stream_cycles(table_entries)
