"""Dataset substrate: schemas, synthetic generators, layouts, registry.

Public API::

    from repro.datasets import load, dataset_spec, BENCHMARK_NAMES
    ds = load("higgs")            # BinnedDataset at simulation scale
    spec = dataset_spec("iot", scale=0.01)
"""

from .encoding import BinnedDataset, discretize_numerical, quantile_bin_edges
from .layout import LayoutConfig, RecordLayout, expected_touched_blocks, field_element_bytes
from .registry import (
    BENCHMARK_NAMES,
    DEFAULT_SIM_SCALE,
    dataset_spec,
    load,
    paper_records,
    paper_seq_minutes,
    table3_rows,
)
from .schema import (
    DEFAULT_NUMERICAL_BINS,
    DatasetSpec,
    FieldKind,
    FieldSpec,
    TaskKind,
    make_numerical_fields,
)
from .synthetic import generate, zipf_probabilities

__all__ = [
    "BENCHMARK_NAMES",
    "DEFAULT_NUMERICAL_BINS",
    "DEFAULT_SIM_SCALE",
    "BinnedDataset",
    "DatasetSpec",
    "FieldKind",
    "FieldSpec",
    "LayoutConfig",
    "RecordLayout",
    "TaskKind",
    "dataset_spec",
    "discretize_numerical",
    "expected_touched_blocks",
    "field_element_bytes",
    "generate",
    "load",
    "make_numerical_fields",
    "paper_records",
    "paper_seq_minutes",
    "quantile_bin_edges",
    "table3_rows",
    "zipf_probabilities",
]
