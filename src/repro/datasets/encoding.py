"""Binned dataset representation and the pre-processing the paper describes.

The paper's software pre-processing (Sec. II-A):

1. discretize floating-point fields into ~256 quantile bins, reserving one bin
   for missing values;
2. one-hot encode categorical fields;
3. include an 'absent' bin per categorical field;
4. apply the LightGBM optimization so that only the 'yes' bin per field is
   updated and the 'no' bins are reconstructed by subtraction -- i.e. each
   record touches exactly **one bin per field**.

The net effect is that a record is a dense vector of *bin indices*, one per
field.  That is exactly the representation this module produces:
``BinnedDataset.codes[i, j]`` is the histogram bin record ``i`` updates for
field ``j`` (the field's missing bin if the value is absent).  One byte per
field is also the record format Booster streams from DRAM ("Each field
consumes a byte", Sec. III-B), so this representation doubles as the layout
unit for byte accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import DatasetSpec, FieldSpec

__all__ = ["BinnedDataset", "quantile_bin_edges", "discretize_numerical"]


def quantile_bin_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Compute quantile bin edges for a numerical column.

    Returns ``n_bins - 1`` interior edges so that ``np.searchsorted`` maps a
    value to a bin in ``[0, n_bins)``.  Duplicate quantiles (heavily repeated
    values) are allowed; they simply leave some bins empty, as in XGBoost's
    approximate sketch.
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.zeros(n_bins - 1, dtype=np.float64)
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.quantile(finite, qs).astype(np.float64)


def discretize_numerical(values: np.ndarray, edges: np.ndarray, missing_bin: int) -> np.ndarray:
    """Map raw numerical values to bin codes; NaN goes to ``missing_bin``."""
    codes = np.searchsorted(edges, values, side="left").astype(np.int32)
    codes[~np.isfinite(values)] = missing_bin
    return codes


@dataclass
class BinnedDataset:
    """Pre-processed dataset: dense per-field bin codes plus labels.

    Attributes
    ----------
    spec:
        The structural schema this data was generated from.
    codes:
        ``(n_records, n_fields)`` array of bin indices.  ``codes[i, j]`` lies
        in ``[0, spec.fields[j].n_total_bins)``; the top index of each field's
        range is its missing/absent bin.  Stored as the smallest integer dtype
        that fits the largest field (``uint8`` when all fields have <=256
        bins, matching the 1-byte-per-field record format).
    y:
        ``(n_records,)`` float64 labels (0/1 for binary, real for regression).
    raw_numeric:
        Optional ``(n_records, n_numerical_fields)`` raw values kept for
        documentation/examples; timing never uses it.
    """

    spec: DatasetSpec
    codes: np.ndarray
    y: np.ndarray
    raw_numeric: np.ndarray | None = None

    def __post_init__(self) -> None:
        n, f = self.codes.shape
        if n != self.spec.n_records:
            raise ValueError(
                f"codes has {n} rows but spec says {self.spec.n_records} records"
            )
        if f != self.spec.n_fields:
            raise ValueError(
                f"codes has {f} columns but spec says {self.spec.n_fields} fields"
            )
        if self.y.shape != (n,):
            raise ValueError(f"y has shape {self.y.shape}, expected ({n},)")

    # -- structural helpers ---------------------------------------------------

    @property
    def n_records(self) -> int:
        return self.codes.shape[0]

    @property
    def n_fields(self) -> int:
        return self.codes.shape[1]

    @property
    def fields(self) -> tuple[FieldSpec, ...]:
        return self.spec.fields

    def field_bin_counts(self) -> np.ndarray:
        """Total bins (incl. missing) per field, shape ``(n_fields,)``."""
        return np.array([f.n_total_bins for f in self.fields], dtype=np.int64)

    def bin_offsets(self) -> np.ndarray:
        """Exclusive prefix sum of per-field bin counts.

        ``bin_offsets()[j] + codes[i, j]`` is the *global* bin index used by
        flattened histograms, shape ``(n_fields + 1,)``.
        """
        counts = self.field_bin_counts()
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=out[1:])
        return out

    def global_codes(self) -> np.ndarray:
        """Codes shifted into the global (flattened-histogram) bin space."""
        return self.codes.astype(np.int64) + self.bin_offsets()[:-1][None, :]

    def validate_codes(self) -> None:
        """Raise if any code is outside its field's bin range."""
        counts = self.field_bin_counts()
        if (self.codes < 0).any():
            raise ValueError("negative bin code")
        bad = self.codes >= counts[None, :]
        if bad.any():
            i, j = np.argwhere(bad)[0]
            raise ValueError(
                f"record {i} field {j} code {self.codes[i, j]} out of range "
                f"(field has {counts[j]} bins)"
            )

    def subset(self, index: np.ndarray) -> "BinnedDataset":
        """Row-subset view (used by examples; training uses index arrays)."""
        sub_spec = self.spec.with_records(int(len(index)))
        return BinnedDataset(
            spec=sub_spec,
            codes=self.codes[index],
            y=self.y[index],
            raw_numeric=None if self.raw_numeric is None else self.raw_numeric[index],
        )


def smallest_code_dtype(spec: DatasetSpec) -> np.dtype:
    """Smallest unsigned dtype holding every field's bin index.

    The paper's record format uses one byte per field; fields with more than
    256 bins are legal in our generator (huge-cardinality categoricals) and
    widen the stored dtype, while the *layout* model still accounts such
    fields as multi-byte (see :mod:`repro.datasets.layout`).
    """
    max_bins = max(f.n_total_bins for f in spec.fields)
    if max_bins <= 2**8:
        return np.dtype(np.uint8)
    if max_bins <= 2**16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)
