"""Synthetic dataset generation matched to the paper's benchmark structure.

The paper evaluates on five public datasets (Table III).  We cannot ship those
datasets, and the timing models do not need their semantic content -- only the
structural and statistical properties that drive the work profile:

* record/field/feature counts (Table III columns),
* categorical cardinalities and popularity skew (drives the lopsided 99%/1%
  one-vs-rest splits the paper reports for Allstate and Flight, Sec. IV),
* target separability (drives tree depth: IoT's near-separable target yields
  the shallow trees called out in Sec. IV; Higgs's many weak signals yield
  full-depth trees),
* missing-value rates (exercise the default/absent bins).

Each generator draws per-field latent contributions to a score and then
thresholds (binary) or emits (regression) the label, so trees trained on the
data recover axis-aligned structure exactly like trees trained on the real
datasets would.
"""

from __future__ import annotations

import numpy as np

from .encoding import BinnedDataset, discretize_numerical, quantile_bin_edges, smallest_code_dtype
from .schema import DatasetSpec, FieldKind, TaskKind

__all__ = ["generate", "zipf_probabilities"]


def zipf_probabilities(n_categories: int, skew: float) -> np.ndarray:
    """Zipf-like category popularity: ``p_k ~ 1 / (k+1)^skew`` (normalized).

    ``skew == 0`` is uniform.  With ``skew >= 1`` the head category absorbs a
    large majority of the mass, which is what makes one-vs-rest categorical
    splits extremely lopsided.
    """
    if n_categories < 1:
        raise ValueError("need at least one category")
    ranks = np.arange(1, n_categories + 1, dtype=np.float64)
    weights = ranks ** (-float(skew))
    return weights / weights.sum()


def _categorical_column(
    rng: np.random.Generator, n: int, n_categories: int, skew: float
) -> np.ndarray:
    """Sample category codes in ``[0, n_categories)`` with Zipf skew."""
    if skew == 0.0:
        return rng.integers(0, n_categories, size=n, dtype=np.int64)
    p = zipf_probabilities(n_categories, skew)
    # Inverse-CDF sampling: O(n log c), far cheaper than rng.choice for big c.
    cdf = np.cumsum(p)
    cdf[-1] = 1.0
    u = rng.random(n)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def _step_effect(rng: np.random.Generator, x: np.ndarray, weight: float) -> np.ndarray:
    """Axis-aligned step contribution for a numerical field.

    A step at a random quantile gives tree-recoverable structure (a single
    split captures the whole effect), which is what produces early-pure leaves
    and shallow trees when weights are large.
    """
    threshold = np.quantile(x, rng.uniform(0.25, 0.75))
    return weight * np.where(x >= threshold, 1.0, -1.0)


def generate(spec: DatasetSpec, keep_raw: bool = False) -> BinnedDataset:
    """Instantiate a :class:`BinnedDataset` from a :class:`DatasetSpec`.

    Deterministic in ``spec.seed`` (and the spec structure); the same spec
    always yields the same data, which the tests rely on.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.n_records
    dtype = smallest_code_dtype(spec)
    codes = np.zeros((n, spec.n_fields), dtype=dtype)
    score = np.zeros(n, dtype=np.float64)
    raw_cols: list[np.ndarray] = []

    for j, f in enumerate(spec.fields):
        if f.kind is FieldKind.CATEGORICAL:
            cats = _categorical_column(rng, n, f.n_categories, f.skew)
            if f.target_weight != 0.0:
                # Sparse per-category effects: a small random set of (mostly
                # tail) categories carries large effects -- think "rare device
                # model implies fraud".  The best one-vs-rest splits peel those
                # rare categories off, reproducing the paper's "extremely
                # lopsided (99%-1%)" splits for Allstate/Flight (Sec. IV).
                n_eff = min(f.n_categories, max(3, f.n_categories // 40))
                hot = rng.choice(f.n_categories, size=n_eff, replace=False)
                effects = np.zeros(f.n_categories)
                effects[hot] = f.target_weight * rng.choice([-2.0, 2.0], size=n_eff)
                score += effects[cats]
            col = cats
        else:
            x = rng.standard_normal(n)
            if f.target_weight != 0.0:
                score += _step_effect(rng, x, f.target_weight)
                # Also a small linear term so deeper splits keep finding gain.
                score += 0.15 * f.target_weight * x
            edges = quantile_bin_edges(x, f.n_bins)
            col = discretize_numerical(x, edges, f.missing_bin)
            if keep_raw:
                raw_cols.append(x)

        if f.missing_rate > 0.0:
            missing = rng.random(n) < f.missing_rate
            col = np.where(missing, f.missing_bin, col)
        codes[:, j] = col.astype(dtype)

    score += spec.noise * rng.standard_normal(n)

    if spec.task is TaskKind.BINARY:
        y = (score > np.median(score)).astype(np.float64)
    elif spec.task is TaskKind.RANKING:
        # Pointwise relevance labels in {0, 1, 2} from score terciles, as a
        # stand-in for LETOR-style graded relevance.
        terciles = np.quantile(score, [1.0 / 3.0, 2.0 / 3.0])
        y = np.digitize(score, terciles).astype(np.float64)
    else:
        y = score.copy()

    raw = np.column_stack(raw_cols) if (keep_raw and raw_cols) else None
    ds = BinnedDataset(spec=spec, codes=codes, y=y, raw_numeric=raw)
    ds.validate_codes()
    return ds
