"""Registry of the five paper benchmarks (Table III) as synthetic specs.

Table III of the paper:

=========  ========  ======  ======  =================  =========================
Name       #Records  Fields  Categ.  Features (onehot)  Comment
=========  ========  ======  ======  =================  =========================
IoT        7 M       115     0       115                Botnet attack detection
Higgs      10 M      28      0       28                 Exotic particle collider
Allstate   10 M      32      16      4232               Insurance claim prediction
Mq2008     1 M       46      0       46                 Supervised ranking
Flight     10 M      8       7       666                Flight delay prediction
=========  ========  ======  ======  =========================================

The registry reproduces the structural columns exactly.  Record counts are
scaled by ``scale`` (default ``DEFAULT_SIM_SCALE``) because the functional
trainer actually trains on the data; all timing quantities that grow with the
record count are reported both at simulation scale and extrapolated, and the
figures the paper reports are *ratios* that are stable in the record count
once records dominate bins (which the Fig. 12 experiment explores
explicitly).

Dataset-specific statistical shape (Sec. IV observations we must induce):

* **IoT** -- "many shallow trees": a handful of dominant, step-like numerical
  fields make leaves pure early, so splits stop producing gain.
* **Higgs** -- full-depth trees: many weak numerical signals.
* **Allstate / Flight** -- "extremely lopsided (99%-1%)" splits: skewed
  categorical popularity, so one-vs-rest splits peel tiny subsets.
* **Mq2008** -- small dataset; step 2's share of time is largest here.
"""

from __future__ import annotations

from .schema import DatasetSpec, FieldKind, FieldSpec, TaskKind, make_numerical_fields
from .encoding import BinnedDataset
from .synthetic import generate

__all__ = [
    "DEFAULT_SIM_SCALE",
    "BENCHMARK_NAMES",
    "dataset_spec",
    "load",
    "paper_records",
    "table3_rows",
]

#: Default ratio of simulated records to the paper's record counts.  1/1000
#: keeps functional training of hundreds of trees tractable in NumPy while
#: records still outnumber histogram bins for every benchmark except Mq2008
#: (which the paper also singles out as bin-dominated).
DEFAULT_SIM_SCALE = 1.0 / 1000.0

BENCHMARK_NAMES = ("iot", "higgs", "allstate", "mq2008", "flight")

_PAPER_RECORDS = {
    "iot": 7_000_000,
    "higgs": 10_000_000,
    "allstate": 10_000_000,
    "mq2008": 1_000_000,
    "flight": 10_000_000,
}

_PAPER_SEQ_MINUTES = {
    # Table III "Seq. Time (mins)" column, for EXPERIMENTS.md comparison.
    "iot": 15.0,
    "higgs": 18.5,
    "allstate": 1.6,
    "mq2008": 2.5,
    "flight": 5.5,
}

# Categorical cardinalities chosen so one-hot feature counts match Table III
# exactly: sum(allstate) = 4216 (+16 numerical = 4232 features);
# sum(flight) = 665 (+1 numerical = 666 features).
_ALLSTATE_CARDINALITIES = (
    1500, 900, 600, 400, 250, 150, 100, 80, 60, 50, 40, 30, 24, 16, 10, 6,
)
_FLIGHT_CARDINALITIES = (300, 250, 60, 25, 15, 10, 5)


def _iot_spec(n_records: int, seed: int) -> DatasetSpec:
    # Dominant step-like fields => shallow trees (Sec. IV: "IoT had many
    # shallow trees").
    weights = [5.0, 4.0, 3.0] + [0.0] * 112
    fields = make_numerical_fields(115, prefix="f", target_weights=weights)
    return DatasetSpec(
        name="iot",
        fields=tuple(fields),
        n_records=n_records,
        task=TaskKind.BINARY,
        paper_records=_PAPER_RECORDS["iot"],
        noise=0.02,
        seed=seed,
        comment="Botnet attack detection",
    )


def _higgs_spec(n_records: int, seed: int) -> DatasetSpec:
    # Many weak signals => trees grow to the full depth.
    weights = [0.35] * 12 + [0.15] * 8 + [0.0] * 8
    fields = make_numerical_fields(28, prefix="f", target_weights=weights)
    return DatasetSpec(
        name="higgs",
        fields=tuple(fields),
        n_records=n_records,
        task=TaskKind.BINARY,
        paper_records=_PAPER_RECORDS["higgs"],
        noise=0.6,
        seed=seed,
        comment="Exotic particle collider data",
    )


def _allstate_spec(n_records: int, seed: int) -> DatasetSpec:
    fields: list[FieldSpec] = []
    for i, cards in enumerate(_ALLSTATE_CARDINALITIES):
        fields.append(
            FieldSpec(
                name=f"cat{i}",
                kind=FieldKind.CATEGORICAL,
                n_categories=cards,
                skew=1.3,
                missing_rate=0.02,
                target_weight=1.5 if i < 8 else 0.5,
            )
        )
    fields.extend(
        make_numerical_fields(16, prefix="num", target_weights=[0.05] * 4, missing_rate=0.01)
    )
    return DatasetSpec(
        name="allstate",
        fields=tuple(fields),
        n_records=n_records,
        task=TaskKind.REGRESSION,
        paper_records=_PAPER_RECORDS["allstate"],
        noise=0.5,
        seed=seed,
        comment="Insurance claim prediction",
    )


def _mq2008_spec(n_records: int, seed: int) -> DatasetSpec:
    weights = [0.5] * 10 + [0.2] * 10 + [0.0] * 26
    fields = make_numerical_fields(46, prefix="f", target_weights=weights)
    return DatasetSpec(
        name="mq2008",
        fields=tuple(fields),
        n_records=n_records,
        task=TaskKind.RANKING,
        paper_records=_PAPER_RECORDS["mq2008"],
        noise=0.4,
        seed=seed,
        comment="Supervised ranking",
    )


def _flight_spec(n_records: int, seed: int) -> DatasetSpec:
    fields: list[FieldSpec] = []
    for i, cards in enumerate(_FLIGHT_CARDINALITIES):
        fields.append(
            FieldSpec(
                name=f"cat{i}",
                kind=FieldKind.CATEGORICAL,
                n_categories=cards,
                skew=1.2,
                missing_rate=0.01,
                target_weight=1.5 if i < 4 else 0.5,
            )
        )
    fields.extend(make_numerical_fields(1, prefix="num", target_weights=[0.1]))
    return DatasetSpec(
        name="flight",
        fields=tuple(fields),
        n_records=n_records,
        task=TaskKind.BINARY,
        paper_records=_PAPER_RECORDS["flight"],
        noise=0.4,
        seed=seed,
        comment="Flight delay prediction",
    )


_BUILDERS = {
    "iot": _iot_spec,
    "higgs": _higgs_spec,
    "allstate": _allstate_spec,
    "mq2008": _mq2008_spec,
    "flight": _flight_spec,
}


def paper_records(name: str) -> int:
    """Record count the paper used for this benchmark (Table III)."""
    return _PAPER_RECORDS[_check(name)]


def paper_seq_minutes(name: str) -> float:
    """Sequential training minutes the paper reports (Table III)."""
    return _PAPER_SEQ_MINUTES[_check(name)]


def _check(name: str) -> str:
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARK_NAMES}")
    return key


def dataset_spec(
    name: str,
    scale: float = DEFAULT_SIM_SCALE,
    n_records: int | None = None,
    seed: int = 7,
) -> DatasetSpec:
    """Build the spec for a named benchmark.

    ``scale`` multiplies the paper's record count; ``n_records`` overrides it
    outright.  Structure (fields, cardinalities) never changes with scale.
    """
    key = _check(name)
    if n_records is None:
        n_records = max(256, int(round(_PAPER_RECORDS[key] * scale)))
    return _BUILDERS[key](n_records, seed)


def load(
    name: str,
    scale: float = DEFAULT_SIM_SCALE,
    n_records: int | None = None,
    seed: int = 7,
) -> BinnedDataset:
    """Generate the binned dataset for a named benchmark."""
    return generate(dataset_spec(name, scale=scale, n_records=n_records, seed=seed))


def table3_rows(scale: float = DEFAULT_SIM_SCALE) -> list[dict]:
    """Structural rows mirroring Table III (plus our simulated record count)."""
    rows = []
    for name in BENCHMARK_NAMES:
        spec = dataset_spec(name, scale=scale)
        rows.append(
            {
                "name": name,
                "paper_records": spec.paper_records,
                "sim_records": spec.n_records,
                "fields": spec.n_fields,
                "categorical_fields": spec.n_categorical_fields,
                "features_onehot": spec.n_features,
                "paper_seq_minutes": _PAPER_SEQ_MINUTES[name],
                "comment": spec.comment,
            }
        )
    return rows
