"""Memory layouts and DRAM byte accounting for records.

Booster's third contribution is a *redundant* data representation: the input
records are stored both in the natural per-record row-major format (used by
histogram binning, step 1) and in a per-field column-major format (used by
single-predicate evaluation, step 3, and one-tree traversal, step 5).  The
redundancy costs pre-processing time and DRAM capacity but saves DRAM
*bandwidth*, which is what Booster is rate-matched against.

This module is the single source of truth for "how many DRAM bytes does it
take to read X" for every hardware model:

* row-major records: one byte per field (paper Sec. III-B), packed two to a
  64 B block when a record fits in half a block (extension (2), Sec. III-C);
* per-field columns: one element per record, gathered non-contiguously when
  only a subset of records is relevant -- modeled with an expected
  touched-block calculation;
* gradient statistics g/h: ``stat_bytes`` per record, stored as separate
  streams ("This stream efficiency motivates storing these fields
  separately", Sec. III-B);
* record-pointer streams produced/consumed by step 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .schema import DatasetSpec

__all__ = [
    "LayoutConfig",
    "RecordLayout",
    "expected_touched_blocks",
    "field_element_bytes",
]


@dataclass(frozen=True)
class LayoutConfig:
    """Byte-level constants shared by all layouts.

    ``stat_bytes`` covers one record's first- and second-order gradient
    statistics (g, h) as two float32 values; ``pointer_bytes`` is one entry of
    the relevant-record pointer streams of steps 1/3.
    """

    block_bytes: int = 64
    stat_bytes: int = 8
    pointer_bytes: int = 4

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or (self.block_bytes & (self.block_bytes - 1)):
            raise ValueError(f"block_bytes must be a positive power of two, got {self.block_bytes}")
        if self.stat_bytes <= 0 or self.pointer_bytes <= 0:
            raise ValueError("stat_bytes and pointer_bytes must be positive")


def field_element_bytes(n_total_bins: int) -> int:
    """Bytes needed to store one record's bin index for a field.

    The common case is one byte (<=256 bins, the paper's record format);
    huge-cardinality categorical fields widen to 2 or 4 bytes.
    """
    if n_total_bins <= 2**8:
        return 1
    if n_total_bins <= 2**16:
        return 2
    return 4


def expected_touched_blocks(
    n_selected: float | np.ndarray, n_universe: int, elems_per_block: int
) -> float | np.ndarray:
    """Expected number of blocks touched by a scattered subset read.

    When only ``n_selected`` of ``n_universe`` records are relevant (records
    reaching an interior tree vertex) and each block holds ``elems_per_block``
    record elements, a gather touches on average
    ``total_blocks * (1 - (1 - p)^k)`` blocks where ``p`` is the selection
    density.  This is the binomial approximation to sampling without
    replacement; it is exact at ``p in {0, 1}`` and never below the lower
    bound ``ceil(n_selected / elems_per_block)``.

    ``n_selected`` may be a scalar or an array (per-node counts); the return
    type matches.
    """
    if elems_per_block <= 0:
        raise ValueError("elems_per_block must be positive")
    if n_universe < 0:
        raise ValueError("counts must be non-negative")
    sel = np.asarray(n_selected, dtype=np.float64)
    if (sel < 0).any():
        raise ValueError("counts must be non-negative")
    if n_universe == 0:
        out = np.zeros_like(sel)
        return out if sel.ndim else 0.0
    sel = np.minimum(sel, n_universe)
    p = sel / n_universe
    total_blocks = -(-n_universe // elems_per_block)  # ceil division
    expected = total_blocks * (1.0 - (1.0 - p) ** elems_per_block)
    lower = np.ceil(sel / elems_per_block)
    out = np.maximum(expected, lower)
    out = np.where(sel == 0, 0.0, out)
    return out if out.ndim else float(out)


class RecordLayout:
    """Byte accounting for one dataset's row-major and column-major layouts."""

    def __init__(self, spec: DatasetSpec, config: LayoutConfig | None = None) -> None:
        self.spec = spec
        self.config = config or LayoutConfig()
        self.field_bytes = np.array(
            [field_element_bytes(f.n_total_bins) for f in spec.fields], dtype=np.int64
        )
        #: Payload bytes of one row-major record (fields only; g/h separate).
        self.record_bytes = int(self.field_bytes.sum())
        block = self.config.block_bytes
        if self.record_bytes <= block // 2:
            #: Extension (2): records at most half a block are packed.
            self.records_per_block = block // self.record_bytes
            self.blocks_per_record = 1
        else:
            self.records_per_block = 1
            self.blocks_per_record = -(-self.record_bytes // block)

    # -- row-major ------------------------------------------------------------

    def row_bytes_sequential(self, n_records: int) -> float:
        """Bytes to stream ``n_records`` contiguous row-major records."""
        if n_records <= 0:
            return 0.0
        blocks = -(-n_records // self.records_per_block) * self.blocks_per_record
        return float(blocks * self.config.block_bytes)

    def row_bytes_gather(
        self, n_selected: float | np.ndarray, n_universe: int
    ) -> float | np.ndarray:
        """Bytes to fetch a scattered subset of row-major records.

        Each record is one or more *contiguous* blocks ("each record is one or
        more memory blocks of contiguous bytes, thus achieving good memory
        bandwidth", Sec. III-B), so waste only arises from block sharing when
        records are packed.  ``n_selected`` may be per-node arrays.
        """
        sel = np.asarray(n_selected, dtype=np.float64)
        if self.records_per_block == 1:
            out = sel * self.blocks_per_record * self.config.block_bytes
            return out if out.ndim else float(out)
        blocks = expected_touched_blocks(sel, n_universe, self.records_per_block)
        out = np.asarray(blocks) * self.config.block_bytes
        return out if out.ndim else float(out)

    # -- column-major (the redundant format) -----------------------------------

    def column_bytes_sequential(self, field_indices: Sequence[int], n_records: int) -> float:
        """Bytes to stream whole per-field columns for the given fields.

        Integer block arithmetic, vectorized over the (possibly repeated)
        field list -- exact, so summing many trees' field lists in one call
        equals summing per-tree calls.
        """
        fields = np.asarray(field_indices, dtype=np.int64)
        if n_records <= 0 or fields.size == 0:
            return 0.0
        block = self.config.block_bytes
        elem = self.field_bytes[fields]
        blocks = -(-(n_records * elem) // block)
        return float((blocks * block).sum())

    def column_bytes_gather(
        self,
        field_index: int | np.ndarray,
        n_selected: float | np.ndarray,
        n_universe: int,
    ) -> float | np.ndarray:
        """Bytes to gather one field's column for a scattered record subset.

        The paper notes the single-field columns "would likely be more
        non-contiguous" than whole records; the expected-touched-block model
        quantifies exactly that.  ``field_index`` and ``n_selected`` may be
        matched arrays (one entry per split node).
        """
        fields = np.asarray(field_index, dtype=np.int64)
        sel = np.asarray(n_selected, dtype=np.float64)
        elem = self.field_bytes[fields]
        epb = self.config.block_bytes // elem
        if fields.ndim == 0:
            blocks = expected_touched_blocks(sel, n_universe, int(epb))
            out = np.asarray(blocks) * self.config.block_bytes
            return out if out.ndim else float(out)
        # Mixed element widths: group by epb value (at most 3 distinct).
        total = np.zeros_like(sel)
        for width in np.unique(epb):
            mask = epb == width
            total[mask] = expected_touched_blocks(sel[mask], n_universe, int(width))
        return total * self.config.block_bytes

    # -- auxiliary streams ------------------------------------------------------

    def stats_bytes_sequential(self, n_records: int) -> float:
        """Bytes to stream g/h for ``n_records`` contiguous records."""
        if n_records <= 0:
            return 0.0
        block = self.config.block_bytes
        blocks = -(-(n_records * self.config.stat_bytes) // block)
        return float(blocks * block)

    def stats_bytes_gather(
        self, n_selected: float | np.ndarray, n_universe: int
    ) -> float | np.ndarray:
        """Bytes to gather g/h for a scattered record subset."""
        epb = self.config.block_bytes // self.config.stat_bytes
        blocks = expected_touched_blocks(n_selected, n_universe, epb)
        out = np.asarray(blocks) * self.config.block_bytes
        return out if out.ndim else float(out)

    def pointer_bytes(self, n_records: float | np.ndarray) -> float | np.ndarray:
        """Bytes of a dense pointer stream (step 3 outputs, step 1 inputs)."""
        n = np.asarray(n_records, dtype=np.float64)
        block = self.config.block_bytes
        blocks = np.ceil(n * self.config.pointer_bytes / block)
        out = blocks * block
        return out if out.ndim else float(out)

    # -- capacity ---------------------------------------------------------------

    def total_row_store_bytes(self) -> float:
        """DRAM footprint of the row-major copy."""
        return self.row_bytes_sequential(self.spec.n_records)

    def total_column_store_bytes(self) -> float:
        """DRAM footprint of the redundant column-major copy."""
        return self.column_bytes_sequential(range(self.spec.n_fields), self.spec.n_records)

    def redundancy_overhead(self) -> float:
        """Extra capacity factor paid for the redundant format (~2x)."""
        row = self.total_row_store_bytes()
        if row == 0:
            return 0.0
        return (row + self.total_column_store_bytes()) / row
