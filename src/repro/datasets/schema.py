"""Dataset schema descriptions for the GBDT workloads.

The paper (Table III) characterizes each benchmark by the number of records,
the number of fields per record, how many of those are categorical, and the
number of features after one-hot encoding.  Booster's behaviour depends only
on these *structural* properties plus the statistical shape of the data (how
lopsided categorical splits are, how separable the target is), so the schema
layer captures exactly that and nothing else.

A *field* is a column of the raw table.  A *feature* is a column after one-hot
encoding: a numerical field contributes one feature; a categorical field with
``c`` categories contributes ``c`` one-hot features.  A *bin* is a histogram
slot: numerical fields get ``n_bins`` quantile bins plus one missing bin;
categorical fields get one bin per category plus one absent bin (the paper's
pre-processing optimization stores only the 'yes' bins and the absent bin and
reconstructs the 'no' bins by subtraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

__all__ = [
    "FieldKind",
    "FieldSpec",
    "DatasetSpec",
    "TaskKind",
    "DEFAULT_NUMERICAL_BINS",
]

#: Default quantile-bin count for numerical fields, *excluding* the missing
#: bin.  The paper discretizes into "256 bins, including one bin for records
#: with a missing field" (Sec. II-A), so 255 value bins + 1 missing bin = 256
#: total -- exactly one 2 KB / 256-entry BU SRAM (Sec. III-C).
DEFAULT_NUMERICAL_BINS = 255


class FieldKind(str, Enum):
    """Kind of a raw table column."""

    NUMERICAL = "numerical"
    CATEGORICAL = "categorical"


class TaskKind(str, Enum):
    """Learning task; selects the loss function."""

    REGRESSION = "regression"
    BINARY = "binary"
    RANKING = "ranking"  # trained as pointwise regression on relevance labels


@dataclass(frozen=True)
class FieldSpec:
    """Description of one raw field (table column).

    Parameters
    ----------
    name:
        Human-readable column name.
    kind:
        Numerical or categorical.
    n_categories:
        Number of categories for a categorical field (ignored for numerical).
    n_bins:
        Histogram bins for a numerical field, *excluding* the missing bin
        (ignored for categorical fields, whose bin count equals
        ``n_categories``).
    missing_rate:
        Fraction of records with this field absent.  The paper reserves a
        default/absent bin per field so that every record updates exactly one
        bin per field ("the higher-level fields are dense").
    skew:
        For categorical fields: Zipf-like exponent of the category popularity
        distribution.  ``0`` means uniform; larger values concentrate mass on
        the first categories, which is what makes one-vs-rest splits lopsided
        (the Allstate/Flight 99%-1% behaviour in Sec. IV).
    target_weight:
        Relative influence of this field on the synthetic target.  Fields with
        zero weight are noise.  A few high-weight fields yield early-pure
        leaves and hence shallow trees (the IoT behaviour).
    """

    name: str
    kind: FieldKind
    n_categories: int = 0
    n_bins: int = DEFAULT_NUMERICAL_BINS
    missing_rate: float = 0.0
    skew: float = 0.0
    target_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is FieldKind.CATEGORICAL:
            if self.n_categories < 2:
                raise ValueError(
                    f"categorical field {self.name!r} needs >=2 categories, "
                    f"got {self.n_categories}"
                )
        else:
            if self.n_bins < 2:
                raise ValueError(
                    f"numerical field {self.name!r} needs >=2 bins, got {self.n_bins}"
                )
        if not 0.0 <= self.missing_rate < 1.0:
            raise ValueError(f"missing_rate must be in [0, 1), got {self.missing_rate}")
        if self.skew < 0.0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")

    @property
    def is_categorical(self) -> bool:
        return self.kind is FieldKind.CATEGORICAL

    @property
    def n_features(self) -> int:
        """Features contributed after one-hot encoding."""
        return self.n_categories if self.is_categorical else 1

    @property
    def n_value_bins(self) -> int:
        """Histogram bins holding actual values (no missing/absent bin)."""
        return self.n_categories if self.is_categorical else self.n_bins

    @property
    def n_total_bins(self) -> int:
        """Value bins plus the one missing/absent bin."""
        return self.n_value_bins + 1

    @property
    def missing_bin(self) -> int:
        """Bin index used for records where this field is absent."""
        return self.n_value_bins


@dataclass(frozen=True)
class DatasetSpec:
    """Full structural description of a benchmark dataset.

    ``n_records`` is the instantiated record count; ``paper_records`` records
    the size the paper used so the registry can report the scale factor.
    """

    name: str
    fields: tuple[FieldSpec, ...]
    n_records: int
    task: TaskKind = TaskKind.BINARY
    paper_records: int = 0
    noise: float = 0.1
    seed: int = 0
    comment: str = ""

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError(f"n_records must be positive, got {self.n_records}")
        if len(self.fields) == 0:
            raise ValueError("dataset needs at least one field")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in dataset {self.name!r}")

    # -- structural aggregates -------------------------------------------------

    @property
    def n_fields(self) -> int:
        return len(self.fields)

    @property
    def n_categorical_fields(self) -> int:
        return sum(1 for f in self.fields if f.is_categorical)

    @property
    def n_numerical_fields(self) -> int:
        return self.n_fields - self.n_categorical_fields

    @property
    def n_features(self) -> int:
        """Features after one-hot encoding (Table III column)."""
        return sum(f.n_features for f in self.fields)

    @property
    def n_total_bins(self) -> int:
        """Total histogram bins across fields (group-by-field view)."""
        return sum(f.n_total_bins for f in self.fields)

    @property
    def has_categorical(self) -> bool:
        return self.n_categorical_fields > 0

    def scaled(self, factor: float) -> "DatasetSpec":
        """Return a copy with ``n_records`` scaled by ``factor`` (Sec. V-F)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        n = max(1, int(round(self.n_records * factor)))
        return DatasetSpec(
            name=self.name,
            fields=self.fields,
            n_records=n,
            task=self.task,
            paper_records=self.paper_records,
            noise=self.noise,
            seed=self.seed,
            comment=self.comment,
        )

    def with_records(self, n_records: int) -> "DatasetSpec":
        """Return a copy with an explicit record count."""
        return DatasetSpec(
            name=self.name,
            fields=self.fields,
            n_records=n_records,
            task=self.task,
            paper_records=self.paper_records,
            noise=self.noise,
            seed=self.seed,
            comment=self.comment,
        )


def make_numerical_fields(
    count: int,
    prefix: str = "num",
    n_bins: int = DEFAULT_NUMERICAL_BINS,
    missing_rate: float = 0.0,
    target_weights: Sequence[float] | None = None,
) -> list[FieldSpec]:
    """Convenience constructor for a block of numerical fields."""
    weights = list(target_weights) if target_weights is not None else []
    out = []
    for i in range(count):
        w = weights[i] if i < len(weights) else 0.0
        out.append(
            FieldSpec(
                name=f"{prefix}{i}",
                kind=FieldKind.NUMERICAL,
                n_bins=n_bins,
                missing_rate=missing_rate,
                target_weight=w,
            )
        )
    return out
