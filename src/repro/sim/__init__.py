"""Simulation orchestration: cost constants, executor, results, reports.

The executor is imported lazily: it depends on the hardware-model packages,
which themselves import the leaf modules here (``calibrate``), so an eager
import would be circular.
"""

from .calibrate import DEFAULT_COSTS, CostModel
from .report import format_speedup, render_series, render_table
from .results import ComparisonResult, InferenceResult, geomean

__all__ = [
    "ComparisonResult",
    "CostModel",
    "DEFAULT_COSTS",
    "DEFAULT_SIM_TREES",
    "Executor",
    "InferenceResult",
    "PAPER_TREES",
    "format_speedup",
    "geomean",
    "quick_compare",
    "render_series",
    "render_table",
]

_LAZY = {"Executor", "quick_compare", "PAPER_TREES", "DEFAULT_SIM_TREES"}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        from . import executor as _executor

        return getattr(_executor, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
