"""Result containers and speedup arithmetic for the experiments.

Both containers are JSON round-trippable (``to_dict``/``from_dict``): the
experiments layer's persistent :class:`~repro.experiments.cache.ResultStore`
and the ``repro sweep --out`` JSONL manifests serialize them so a timing
result survives the process that produced it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # import would be circular at runtime (baselines uses sim)
    from ..baselines.base import StepTimes

from ..serving.result import ServingResult, ServingStats  # noqa: E402 -- re-export beside its siblings

__all__ = ["geomean", "ComparisonResult", "InferenceResult", "ServingResult", "ServingStats"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for Fig. 7/12/13)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class ComparisonResult:
    """Training-time comparison of all systems on one dataset."""

    dataset: str
    systems: dict[str, StepTimes]
    profile_summary: dict = field(default_factory=dict)
    baseline: str = "ideal-32-core"

    def _times(self, system: str) -> StepTimes:
        try:
            return self.systems[system]
        except KeyError:
            raise ValueError(
                f"system {system!r} is not part of this comparison "
                f"(have: {sorted(self.systems)})"
            ) from None

    def seconds(self, system: str) -> float:
        return self._times(system).total

    def speedup(self, system: str, over: str | None = None) -> float:
        """Speedup of ``system`` over the baseline (Fig. 7's Y-axis)."""
        base = self._times(over or self.baseline).total
        mine = self._times(system).total
        if mine <= 0:
            raise ValueError(f"non-positive time for {system!r}")
        return base / mine

    def normalized_breakdown(self, system: str) -> dict[str, float]:
        """Per-step times normalized to the baseline total (Fig. 8's Y-axis)."""
        base = self._times(self.baseline).total
        d = self._times(system).as_dict()
        return {k: v / base for k, v in d.items()}

    def to_dict(self) -> dict:
        """Plain-JSON form; ``from_dict`` round-trips it."""
        return {
            "dataset": self.dataset,
            "baseline": self.baseline,
            "systems": {name: st.as_dict() for name, st in self.systems.items()},
            "profile_summary": dict(self.profile_summary),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ComparisonResult":
        from ..baselines.base import StepTimes

        return cls(
            dataset=d["dataset"],
            systems={
                name: StepTimes.from_dict(st) for name, st in d["systems"].items()
            },
            profile_summary=dict(d.get("profile_summary", {})),
            baseline=d.get("baseline", "ideal-32-core"),
        )

    def table(self) -> str:
        """Human-readable comparison table."""
        from .report import render_table

        headers = ["system", "total (s)", "step1", "step2", "step3", "step5", "other", "speedup"]
        rows = []
        for name, st in self.systems.items():
            if self.baseline in self.systems:
                speedup_cell = f"{self.speedup(name):.2f}x"
            else:
                speedup_cell = "-"
            rows.append(
                [
                    name,
                    f"{st.total:.4g}",
                    f"{st.step1:.3g}",
                    f"{st.step2:.3g}",
                    f"{st.step3:.3g}",
                    f"{st.step5:.3g}",
                    f"{st.other:.3g}",
                    speedup_cell,
                ]
            )
        return render_table(headers, rows, title=f"dataset: {self.dataset}")


@dataclass
class InferenceResult:
    """Batch-inference comparison on one dataset (Fig. 13)."""

    dataset: str
    seconds: dict[str, float]
    baseline: str = "ideal-32-core"

    def _seconds(self, system: str) -> float:
        try:
            return self.seconds[system]
        except KeyError:
            raise ValueError(
                f"system {system!r} is not part of this comparison "
                f"(have: {sorted(self.seconds)})"
            ) from None

    def speedup(self, system: str, over: str | None = None) -> float:
        mine = self._seconds(system)
        if mine <= 0:
            raise ValueError(f"non-positive time for {system!r}")
        return self._seconds(over or self.baseline) / mine

    def table(self) -> str:
        """Human-readable inference table (the ``repro inference`` view)."""
        from .report import render_table

        rows = []
        for system, seconds in self.seconds.items():
            if self.baseline in self.seconds:
                speedup_cell = f"{self.speedup(system):.1f}x"
            else:
                speedup_cell = "-"
            rows.append([system, f"{seconds * 1e3:.2f} ms", speedup_cell])
        return render_table(
            ["system", "batch time", "speedup"],
            rows,
            title=f"batch inference: {self.dataset}",
        )

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "baseline": self.baseline,
            "seconds": dict(self.seconds),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "InferenceResult":
        return cls(
            dataset=d["dataset"],
            seconds={name: float(v) for name, v in d["seconds"].items()},
            baseline=d.get("baseline", "ideal-32-core"),
        )
