"""Result containers and speedup arithmetic for the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import would be circular at runtime (baselines uses sim)
    from ..baselines.base import StepTimes

__all__ = ["geomean", "ComparisonResult", "InferenceResult"]


def geomean(values) -> float:
    """Geometric mean (the paper's aggregate for Fig. 7/12/13)."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class ComparisonResult:
    """Training-time comparison of all systems on one dataset."""

    dataset: str
    systems: dict[str, StepTimes]
    profile_summary: dict = field(default_factory=dict)
    baseline: str = "ideal-32-core"

    def seconds(self, system: str) -> float:
        return self.systems[system].total

    def speedup(self, system: str, over: str | None = None) -> float:
        """Speedup of ``system`` over the baseline (Fig. 7's Y-axis)."""
        base = self.systems[over or self.baseline].total
        mine = self.systems[system].total
        if mine <= 0:
            raise ValueError(f"non-positive time for {system!r}")
        return base / mine

    def normalized_breakdown(self, system: str) -> dict[str, float]:
        """Per-step times normalized to the baseline total (Fig. 8's Y-axis)."""
        base = self.systems[self.baseline].total
        d = self.systems[system].as_dict()
        return {k: v / base for k, v in d.items()}

    def table(self) -> str:
        """Human-readable comparison table."""
        from .report import render_table

        headers = ["system", "total (s)", "step1", "step2", "step3", "step5", "other", "speedup"]
        rows = []
        for name, st in self.systems.items():
            rows.append(
                [
                    name,
                    f"{st.total:.4g}",
                    f"{st.step1:.3g}",
                    f"{st.step2:.3g}",
                    f"{st.step3:.3g}",
                    f"{st.step5:.3g}",
                    f"{st.other:.3g}",
                    f"{self.speedup(name):.2f}x",
                ]
            )
        return render_table(headers, rows, title=f"dataset: {self.dataset}")


@dataclass
class InferenceResult:
    """Batch-inference comparison on one dataset (Fig. 13)."""

    dataset: str
    seconds: dict[str, float]
    baseline: str = "ideal-32-core"

    def speedup(self, system: str) -> float:
        return self.seconds[self.baseline] / self.seconds[system]
