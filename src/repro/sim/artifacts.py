"""Renderable reproductions of every paper table and figure.

Each builder takes a shared :class:`Executor` and returns the rendered text
artifact.  The benchmark suite, the ``paper_repro`` example, and the CLI all
go through these functions, so there is exactly one implementation of each
table/figure.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..datasets import paper_seq_minutes, table3_rows
from ..energy import AreaPowerModel, EnergyModel, SRAMEnergyModel
from ..memory import DRAMSimulator, sequential
from .executor import Executor
from .report import render_table
from .results import geomean

__all__ = ["ARTIFACTS", "build", "build_all"]


def table3(ex: Executor) -> str:
    rows = []
    for meta in table3_rows():
        prof = ex.profile(meta["name"])
        mins = ex.model("sequential").training_seconds(prof) / 60
        rows.append(
            [
                meta["name"],
                f"{meta['paper_records'] / 1e6:.0f}M",
                meta["fields"],
                meta["categorical_fields"],
                meta["features_onehot"],
                f"{mins:.1f}",
                f"{paper_seq_minutes(meta['name']):.1f}",
            ]
        )
    return render_table(
        ["name", "records", "fields", "categ", "features", "model seq-min", "paper"],
        rows,
        title="Table III -- datasets",
    )


def table4(ex: Executor) -> str:
    stats = DRAMSimulator().run(sequential(24_000))
    return render_table(
        ["quantity", "value"],
        [
            ["config", "24 ch x 16 banks, 1 KB rows, 12-12-12-28"],
            ["sustained stream", f"{stats.sustained_gbps:.1f} GB/s (paper ~400)"],
            ["row hit rate", f"{stats.row_hit_rate:.3f}"],
        ],
        title="Table IV -- DRAM",
    )


def table5(ex: Executor) -> str:
    m = SRAMEnergyModel()
    return render_table(
        ["config", "SRAM", "energy (norm.)"],
        [
            ["Ideal 32-core", "32 KB", f"{m.normalized(32 * 1024):.2f}"],
            ["Ideal GPU", "96 KB x32 banks", f"{m.normalized(96 * 1024, 32):.2f}"],
            ["Booster", "2 KB", f"{m.normalized(2 * 1024):.2f}"],
        ],
        title="Table V -- normalized SRAM access energy",
    )


def table6(ex: Executor) -> str:
    rows = [[n, f"{a:.1f}", f"{p:.1f}"] for n, a, p in AreaPowerModel().estimate().rows()]
    return render_table(
        ["component", "area mm2", "power W"],
        rows,
        title="Table VI -- ASIC budget (paper: 60.0 mm2 / 23.2 W)",
    )


def fig6(ex: Executor) -> str:
    rows = []
    for name in ex.all_datasets():
        st = ex.model("sequential").training_times(ex.profile(name))
        rows.append(
            [name]
            + [f"{100 * v / st.total:.1f}%" for v in (st.step1, st.step2, st.step3, st.step5)]
        )
    return render_table(
        ["dataset", "step1", "step2", "step3", "step5"],
        rows,
        title="Fig. 6 -- sequential breakdown",
    )


def fig7(ex: Executor) -> str:
    rows, sps = [], []
    for name in ex.all_datasets():
        cmp = ex.compare(name)
        b = cmp.speedup("booster")
        sps.append(b)
        rows.append(
            [
                name,
                f"{cmp.speedup('ideal-gpu'):.2f}x",
                f"{cmp.speedup('inter-record'):.2f}x",
                f"{b:.2f}x",
            ]
        )
    rows.append(["geomean", "-", "-", f"{geomean(sps):.2f}x"])
    return render_table(
        ["dataset", "Ideal GPU", "IR", "Booster"],
        rows,
        title="Fig. 7 -- speedup over Ideal 32-core (paper geomean 11.4x)",
    )


def fig8(ex: Executor) -> str:
    rows = []
    for name in ex.all_datasets():
        cmp = ex.compare(name, systems=["ideal-32-core", "ideal-gpu", "booster"])
        for s in ("ideal-32-core", "ideal-gpu", "booster"):
            nb = cmp.normalized_breakdown(s)
            rows.append(
                [name, s]
                + [f"{nb[k]:.3f}" for k in ("step1", "step2", "step3", "step5", "other", "total")]
            )
    return render_table(
        ["dataset", "system", "s1", "s2", "s3", "s5", "other", "total"],
        rows,
        title="Fig. 8 -- normalized breakdown",
    )


def fig9(ex: Executor) -> str:
    rows = []
    for name in ex.all_datasets():
        cmp = ex.compare(
            name,
            systems=["ideal-32-core", "booster-no-opts", "booster-group-by-field", "booster"],
        )
        rows.append(
            [
                name,
                f"{cmp.speedup('booster-no-opts'):.2f}x",
                f"{cmp.speedup('booster-group-by-field'):.2f}x",
                f"{cmp.speedup('booster'):.2f}x",
            ]
        )
    return render_table(
        ["dataset", "no-opts", "+group-by-field", "+column"],
        rows,
        title="Fig. 9 -- optimization ablation",
    )


def fig10(ex: Executor) -> str:
    em = EnergyModel()
    sram = {s: [] for s in ("ideal-32-core", "ideal-gpu", "booster")}
    dram = {s: [] for s in sram}
    for name in ex.all_datasets():
        cmp = em.compare(ex.profile(name))
        bs, bd = cmp["ideal-32-core"].sram_joules, cmp["ideal-32-core"].dram_joules
        for s, e in cmp.items():
            sram[s].append(e.sram_joules / bs)
            dram[s].append(e.dram_joules / bd)
    rows = [[s, f"{np.mean(sram[s]):.2f}", f"{np.mean(dram[s]):.2f}"] for s in sram]
    return render_table(
        ["system", "SRAM (norm.)", "DRAM (norm.)"],
        rows,
        title="Fig. 10 -- energy (mean over benchmarks)",
    )


def fig11(ex: Executor) -> str:
    rows = []
    for name in ex.all_datasets():
        cmp = ex.compare(
            name, systems=["ideal-32-core", "real-32-core", "ideal-gpu", "real-gpu"]
        )
        base = cmp.seconds("ideal-32-core")
        rows.append(
            [name]
            + [f"{cmp.seconds(s) / base:.2f}" for s in ("real-32-core", "ideal-gpu", "real-gpu")]
        )
    return render_table(
        ["dataset", "Real 32", "Ideal GPU", "Real GPU"],
        rows,
        title="Fig. 11 -- ideal vs real (time / Ideal 32-core)",
    )


def fig12(ex: Executor) -> str:
    rows, sps = [], []
    for name in ex.all_datasets():
        cmp = ex.compare(name, systems=["ideal-32-core", "booster"], extra_scale=10.0)
        s = cmp.speedup("booster")
        sps.append(s)
        rows.append([name, f"{s:.2f}x"])
    rows.append(["geomean", f"{geomean(sps):.2f}x"])
    return render_table(
        ["dataset", "Booster at 10x records"],
        rows,
        title="Fig. 12 -- 10x scaling (paper geomean 27.9x)",
    )


def fig13(ex: Executor) -> str:
    rows, sps = [], []
    for name in ex.all_datasets():
        s = ex.inference(name).speedup("booster")
        sps.append(s)
        rows.append([name, f"{s:.1f}x"])
    rows.append(["mean", f"{geomean(sps):.1f}x"])
    return render_table(
        ["dataset", "inference speedup"],
        rows,
        title="Fig. 13 -- batch inference (paper mean 45x)",
    )


ARTIFACTS: dict[str, Callable[[Executor], str]] = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}


def build(name: str, ex: Executor) -> str:
    """Render one artifact by name (KeyError lists the choices)."""
    if name not in ARTIFACTS:
        raise KeyError(f"unknown artifact {name!r}; choose from {sorted(ARTIFACTS)}")
    return ARTIFACTS[name](ex)


def build_all(ex: Executor, names: list[str] | None = None) -> str:
    """Render several artifacts joined by blank lines."""
    keys = names or list(ARTIFACTS)
    return "\n\n".join(build(k, ex) for k in keys)
