"""Programmatic validation of every reproduced paper claim.

``validate_all`` evaluates the full claim checklist against a shared
executor and returns structured verdicts; ``report`` renders them as the
EXPERIMENTS.md-style table.  The claim list is the machine-readable version
of the reproduction contract: each entry carries the paper's published value,
the measured value, and the acceptance band, so a regression anywhere in the
model stack shows up as a failed claim rather than a silently drifted number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import AreaPowerModel, EnergyModel, SRAMEnergyModel
from ..memory import DRAMSimulator, sequential
from .executor import Executor
from .report import render_table
from .results import geomean

__all__ = ["Claim", "validate_all", "report"]


@dataclass
class Claim:
    """One published claim with its measured value and acceptance band."""

    exp_id: str
    name: str
    paper: str
    measured: str
    passed: bool

    @property
    def verdict(self) -> str:
        return "ok" if self.passed else "FAIL"


def _speedups(ex: Executor) -> dict[str, float]:
    return {name: ex.compare(name).speedup("booster") for name in ex.all_datasets()}


def validate_all(ex: Executor | None = None) -> list[Claim]:
    """Evaluate the complete claim checklist; returns one Claim per row."""
    ex = ex or Executor(sim_trees=6)
    claims: list[Claim] = []

    def add(exp_id: str, name: str, paper: str, measured: str, passed: bool) -> None:
        claims.append(Claim(exp_id, name, paper, measured, passed))

    # -- Table III: structure ---------------------------------------------------
    from ..datasets import dataset_spec

    structure = {
        "iot": (115, 115), "higgs": (28, 28), "allstate": (32, 4232),
        "mq2008": (46, 46), "flight": (8, 666),
    }
    ok = all(
        (dataset_spec(n).n_fields, dataset_spec(n).n_features) == v
        for n, v in structure.items()
    )
    add(
        "Table III", "dataset structure (fields/features)", "exact",
        "exact" if ok else "mismatch", ok,
    )

    # -- Table IV: DRAM -----------------------------------------------------------
    bw = DRAMSimulator().run(sequential(24_000)).sustained_gbps
    add("Table IV", "sustained streaming bandwidth", "~400 GB/s", f"{bw:.1f} GB/s", 360 < bw <= 384)

    # -- Table V: SRAM energies -----------------------------------------------------
    m = SRAMEnergyModel()
    vals = (m.normalized(32 * 1024), m.normalized(96 * 1024, 32), m.normalized(2 * 1024))
    ok = m.validate_table5()
    add("Table V", "normalized SRAM energies", "1.00 / 2.64 / 0.71",
        " / ".join(f"{v:.2f}" for v in vals), ok)

    # -- Table VI: ASIC budget ---------------------------------------------------------
    budget = AreaPowerModel().estimate()
    ok = abs(budget.total_mm2 - 60.0) / 60.0 < 0.02 and abs(budget.total_w - 23.2) / 23.2 < 0.02
    add("Table VI", "chip area / power", "60.0 mm2 / 23.2 W",
        f"{budget.total_mm2:.1f} mm2 / {budget.total_w:.1f} W", ok)

    # -- Fig. 6: sequential breakdown ------------------------------------------------------
    seq_shares = {}
    for name in ex.all_datasets():
        st = ex.model("sequential").training_times(ex.profile(name))
        seq_shares[name] = (st.step1 + st.step3 + st.step5) / st.total
    ok = all(v > 0.9 for v in seq_shares.values())
    add("Fig. 6", "steps 1/3/5 dominate sequential time", ">90-98%",
        f"min {100 * min(seq_shares.values()):.1f}%", ok)

    # -- Fig. 7: training speedups -----------------------------------------------------------
    sp = _speedups(ex)
    g = geomean(sp.values())
    add("Fig. 7", "Booster geomean over Ideal 32-core", "11.4x", f"{g:.2f}x", 8.0 < g < 16.0)
    add("Fig. 7", "maximum speedup benchmark", "IoT (30.6x)",
        f"{max(sp, key=sp.get)} ({max(sp.values()):.1f}x)", max(sp, key=sp.get) == "iot")
    add("Fig. 7", "minimum speedup benchmark", "Flight (4.6x)",
        f"{min(sp, key=sp.get)} ({min(sp.values()):.1f}x)", min(sp, key=sp.get) == "flight")
    gpu = [ex.compare(n).speedup("ideal-gpu") for n in ex.all_datasets()]
    add("Fig. 7", "Ideal GPU over Ideal 32-core", "1.6-1.9x",
        f"{min(gpu):.2f}-{max(gpu):.2f}x", all(1.4 < v < 2.0 for v in gpu))
    ir = ex.model("inter-record")
    ok = ir.copies(ex.profile("higgs")) == 271 and ir.copies(ex.profile("mq2008")) == 179
    add("Fig. 7", "IR histogram copies (Higgs/Mq2008)", "271 / 179",
        f"{ir.copies(ex.profile('higgs'))} / {ir.copies(ex.profile('mq2008'))}", ok)

    # -- Fig. 9: ablation orderings ------------------------------------------------------------
    ok = True
    for name in ex.all_datasets():
        cmp = ex.compare(name, systems=[
            "ideal-32-core", "booster-no-opts", "booster-group-by-field", "booster"])
        no, gf, full = (cmp.speedup(s) for s in
                        ("booster-no-opts", "booster-group-by-field", "booster"))
        ok &= no <= gf * 1.001 <= full * 1.001
    add("Fig. 9", "optimizations monotone (no-opts -> +mapping -> +column)", "monotone",
        "monotone" if ok else "violated", ok)

    # -- Fig. 10: energy -----------------------------------------------------------------------
    em = EnergyModel()
    ok = True
    for name in ex.all_datasets():
        e = em.compare(ex.profile(name))
        ok &= e["booster"].sram_joules < e["ideal-32-core"].sram_joules
        ok &= e["booster"].dram_joules < e["ideal-32-core"].dram_joules
    add("Fig. 10", "Booster strictly lower SRAM and DRAM energy", "both lower",
        "both lower" if ok else "violated", ok)

    # -- Fig. 11: real-hardware crossovers ---------------------------------------------------------
    losers = []
    for name in ex.all_datasets():
        prof = ex.profile(name)
        gpu_s = ex.model("real-gpu").training_seconds(prof)
        if gpu_s > ex.model("real-32-core").training_seconds(prof):
            losers.append(name)
    ok = sorted(losers) == ["allstate", "mq2008"]
    add("Fig. 11", "real GPU loses to real 32-core on", "Allstate, Mq2008",
        ", ".join(sorted(losers)) or "none", ok)

    # -- Fig. 12: scaling ------------------------------------------------------
    ok = True
    for name in ex.all_datasets():
        base = sp[name]
        scaled = ex.compare(name, systems=["ideal-32-core", "booster"],
                            extra_scale=10.0).speedup("booster")
        ok &= scaled > base
    add("Fig. 12", "speedups grow at 10x records", "all grow",
        "all grow" if ok else "violated", ok)

    # -- Fig. 13: inference ----------------------------------------------------
    inf = {n: ex.inference(n).speedup("booster") for n in ex.all_datasets()}
    mean = geomean(inf.values())
    deep = [v for n, v in inf.items() if n != "iot"]
    ok = (30 < mean < 65) and inf["iot"] < 0.8 * min(deep) and max(deep) / min(deep) < 1.3
    add("Fig. 13", "inference mean / IoT outlier / deep cluster", "45x / 21.1x / ~55.5x",
        f"{mean:.1f}x / {inf['iot']:.1f}x / {min(deep):.1f}-{max(deep):.1f}x", ok)

    return claims


def report(claims: list[Claim] | None = None, ex: Executor | None = None) -> str:
    """Render the claims checklist as a fixed-width table."""
    claims = claims if claims is not None else validate_all(ex)
    rows = [[c.exp_id, c.name, c.paper, c.measured, c.verdict] for c in claims]
    n_ok = sum(c.passed for c in claims)
    return render_table(
        ["experiment", "claim", "paper", "measured", "verdict"],
        rows,
        title=f"reproduction claim checklist: {n_ok}/{len(claims)} passing",
    )
