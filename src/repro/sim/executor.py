"""End-to-end experiment executor: a facade over :mod:`repro.experiments`.

Pipeline per dataset (mirrors the paper's methodology, Sec. IV):

1. generate the synthetic benchmark at simulation scale (registry);
2. run the functional GBDT trainer to obtain a :class:`WorkProfile`;
3. extrapolate the profile to the paper's record count (Table III) and tree
   count (500 trees) -- time models consume paper-scale work;
4. evaluate every hardware model on the identical profile.

The executor no longer owns the caching: functional training is served by
the experiments layer's persistent :class:`ProfileCache` (``results/cache/``
by default), keyed by a content hash covering the dataset identity and
*every* training hyper-parameter, so identical configurations are never
retrained -- not within a session, and not across sessions.  Declarative
sweeps over executor configurations live in
:class:`repro.experiments.SweepRunner`; ``Executor.from_scenario`` bridges
the two worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..baselines import (
    HardwareModel,
    IdealGPU,
    IdealMulticore,
    InterRecordAccelerator,
    RealGPU,
    RealMulticore,
    SequentialCPU,
)
from ..baselines.base import StepTimes
from ..core import BoosterConfig, BoosterEngine
from ..datasets import BENCHMARK_NAMES
from ..datasets.encoding import BinnedDataset
from ..experiments.cache import ProfileCache, default_cache
from ..experiments.pipeline import benchmark_dataset, train_scenario_tracked
from ..experiments.scenario import ScenarioSpec, cost_overrides_from
from ..gbdt import EnsemblePredictor, TrainParams, TrainResult, WorkProfile
from ..memory.profile import BandwidthProfile, bandwidth_profile
from ..serving import (
    ServingParams,
    ServingResult,
    ServingStats,
    build_arrivals,
    simulate,
    summarize,
)
from .calibrate import DEFAULT_COSTS, CostModel
from .results import ComparisonResult, InferenceResult

__all__ = [
    "Executor",
    "MODEL_NAMES",
    "quick_compare",
    "PAPER_TREES",
    "DEFAULT_SIM_TREES",
]

#: The paper trains 500 trees of depth up to 6 per benchmark (Sec. IV).
PAPER_TREES = 500

#: Every hardware model the executor registers (importable without building
#: an executor, e.g. for CLI validation).
MODEL_NAMES = (
    "sequential",
    "ideal-32-core",
    "real-32-core",
    "ideal-gpu",
    "real-gpu",
    "inter-record",
    "booster",
    "booster-no-opts",
    "booster-group-by-field",
)
#: Boosting rounds actually executed by the functional simulator; per-tree
#: work is homogeneous after the first rounds and all results are ratios.
DEFAULT_SIM_TREES = 20


@dataclass
class Executor:
    """Runs the full dataset -> profile -> timing pipeline with caching.

    ``train_params`` pins the full training configuration; when omitted it
    defaults to ``TrainParams(n_trees=sim_trees)``.  ``cache`` selects the
    artifact store (the shared persistent default when omitted).
    """

    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    booster_config: BoosterConfig = field(default_factory=BoosterConfig)
    sim_records: int | None = None  # None => registry default (paper / 1000)
    sim_trees: int = DEFAULT_SIM_TREES
    seed: int = 7
    scale_to_paper: bool = True
    train_params: TrainParams | None = None
    cache: ProfileCache | None = None

    def __post_init__(self) -> None:
        if self.train_params is None:
            self.train_params = TrainParams(n_trees=self.sim_trees)
        else:
            self.sim_trees = self.train_params.n_trees
        self._cache = self.cache if self.cache is not None else default_cache()
        self._bandwidth: BandwidthProfile = bandwidth_profile()
        self._models = self._build_models()
        #: Provenance of the most recent train_result call: True = cache hit,
        #: False = this executor trained, None = no training requested yet.
        self.last_train_hit: bool | None = None

    # -- scenario bridge ---------------------------------------------------------

    @classmethod
    def from_scenario(
        cls, scenario: ScenarioSpec, cache: ProfileCache | None = None
    ) -> "Executor":
        """Build an executor configured exactly like ``scenario``.

        The scenario's dataset/systems/extra-scale choices are per-call
        arguments on the executor side; everything configurational (costs,
        design point, training params, scales, seed) carries over.
        """
        return cls(
            costs=scenario.costs(),
            booster_config=scenario.booster,
            sim_records=scenario.sim_records,
            seed=scenario.seed,
            scale_to_paper=scenario.scale_to_paper,
            train_params=scenario.train,
            cache=cache,
        )

    def scenario(self, dataset: str) -> ScenarioSpec:
        """The :class:`ScenarioSpec` describing this executor on ``dataset``."""
        assert self.train_params is not None
        return ScenarioSpec(
            dataset=dataset,
            sim_records=self.sim_records,
            seed=self.seed,
            train=self.train_params,
            booster=self.booster_config,
            cost_overrides=cost_overrides_from(self.costs),
            scale_to_paper=self.scale_to_paper,
        )

    # -- model registry ------------------------------------------------------------

    def _build_models(self) -> dict[str, HardwareModel]:
        kw = dict(costs=self.costs, bandwidth=self._bandwidth)
        models: dict[str, HardwareModel] = {
            "sequential": SequentialCPU(**kw),
            "ideal-32-core": IdealMulticore(**kw),
            "real-32-core": RealMulticore(**kw),
            "ideal-gpu": IdealGPU(**kw),
            "real-gpu": RealGPU(**kw),
            "inter-record": InterRecordAccelerator(**kw),
            "booster": BoosterEngine(config=self.booster_config, **kw),
            "booster-no-opts": BoosterEngine(
                config=self.booster_config,
                mapping_strategy="naive",
                column_format=False,
                **kw,
            ),
            "booster-group-by-field": BoosterEngine(
                config=self.booster_config,
                mapping_strategy="field",
                column_format=False,
                **kw,
            ),
        }
        assert set(models) == set(MODEL_NAMES)
        return models

    def model(self, name: str) -> HardwareModel:
        return self._models[name]

    @property
    def model_names(self) -> list[str]:
        return list(self._models)

    @property
    def bandwidth(self) -> BandwidthProfile:
        """The DRAM bandwidth calibration shared by all models."""
        return self._bandwidth

    # -- functional training (persistently cached) ---------------------------------

    def dataset(self, dataset: str) -> BinnedDataset:
        """The generated simulation-scale dataset (memoized per process)."""
        return benchmark_dataset(dataset, self.sim_records, self.seed)

    def train_result(self, dataset: str) -> TrainResult:
        result, hit = train_scenario_tracked(self.scenario(dataset), cache=self._cache)
        self.last_train_hit = hit
        return result

    def profile(self, dataset: str, extra_scale: float = 1.0) -> WorkProfile:
        """Paper-scale work profile (records x ``extra_scale``, 500 trees)."""
        result = self.train_result(dataset)
        prof = result.profile
        if self.scale_to_paper:
            k = prof.spec.paper_records / prof.spec.n_records
            prof = prof.scaled(k * extra_scale).with_trees_scaled(PAPER_TREES)
        elif extra_scale != 1.0:
            prof = prof.scaled(extra_scale)
        return prof

    # -- experiments ----------------------------------------------------------------------

    def compare(
        self,
        dataset: str,
        systems: list[str] | None = None,
        extra_scale: float = 1.0,
    ) -> ComparisonResult:
        """Training-time comparison (the Fig. 7 / 8 / 9 / 12 workhorse)."""
        prof = self.profile(dataset, extra_scale=extra_scale)
        names = systems or [
            "sequential",
            "ideal-32-core",
            "ideal-gpu",
            "inter-record",
            "booster",
        ]
        times: dict[str, StepTimes] = {}
        for name in names:
            times[name] = self._models[name].training_times(prof)
        return ComparisonResult(
            dataset=dataset, systems=times, profile_summary=prof.summary()
        )

    def inference(
        self,
        dataset: str,
        systems: list[str] | None = None,
        n_trees: int = PAPER_TREES,
        extra_scale: float = 1.0,
    ) -> InferenceResult:
        """Batch-inference comparison over all records (Fig. 13).

        ``extra_scale`` multiplies the batch's record count on top of the
        paper extrapolation, mirroring :meth:`profile`'s parameter so
        record-scaling sweeps measure scaled inference work too.
        """
        result = self.train_result(dataset)
        data = self.dataset(dataset)  # same memoized dataset training used
        predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
        work = predictor.inference_work(data, n_trees_target=n_trees)
        if self.scale_to_paper:
            work = work.scaled(work.spec.paper_records / work.n_records * extra_scale)
        elif extra_scale != 1.0:
            work = work.scaled(extra_scale)
        names = systems or ["ideal-32-core", "booster"]
        seconds = {name: self._models[name].inference_seconds(work) for name in names}
        return InferenceResult(dataset=dataset, seconds=seconds)

    def serve(
        self,
        dataset: str,
        serving: ServingParams | None = None,
        systems: list[str] | None = None,
        extra_scale: float = 1.0,
        seed: int | None = None,
    ) -> ServingResult:
        """Traffic-driven serving comparison: latency tail under a queue.

        Replays one arrival trace (generated from ``serving``'s parameters
        with ``seed``, or loaded from its recorded trace file) through the
        single-server batching queue once per system.  Per-batch service
        cost derives from the same paper-scale :class:`InferenceWork` the
        Fig. 13 batch comparison prices -- ``inference_seconds`` over the
        work scaled to the batch's exact record count (x ``extra_scale``,
        mirroring :meth:`inference`) -- so the serving numbers and the batch
        numbers share one cost model by construction.  Everything after
        arrival generation is a pure function of its inputs; the same
        scenario yields a bit-identical :class:`ServingResult` in any
        process.
        """
        params = serving if serving is not None else ServingParams()
        times, priorities = build_arrivals(params, self.seed if seed is None else seed)
        result = self.train_result(dataset)
        data = self.dataset(dataset)  # same memoized dataset training used
        predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
        base = predictor.inference_work(data, n_trees_target=PAPER_TREES)
        if params.arrival == "trace":
            span = float(times[-1] - times[0]) if times.size > 1 else 0.0
            offered = float(times.size / span) if span > 0 else float(times.size)
        else:
            offered = float(params.qps)
        names = systems or ["ideal-32-core", "booster"]
        cap = 1 if params.policy == "immediate" else params.max_batch
        stats: dict[str, ServingStats] = {}
        for name in names:
            model = self._models[name]
            memo: dict[int, float] = {}

            def service_seconds(
                n_records: int, _model: HardwareModel = model, _memo: dict[int, float] = memo
            ) -> float:
                # Batch sizes repeat constantly (the queue dispatches the
                # same few sizes); memoize per (model, record count).
                cost = _memo.get(n_records)
                if cost is None:
                    work = base.scaled(n_records * extra_scale / base.n_records)
                    cost = float(_model.inference_seconds(work))
                    _memo[n_records] = cost
                return cost

            # Best sustainable request rate over candidate batch sizes:
            # batching amortizes fixed cost, so probe small/half/full.
            candidates = sorted({1, max(1, cap // 2), cap})
            capacity = max(
                k / service_seconds(k * params.records_per_request) for k in candidates
            )
            trace = simulate(
                times,
                priorities,
                policy=params.policy,
                max_batch=params.max_batch,
                timeout_s=params.timeout_ms / 1e3,
                queue=params.queue,
                records_per_request=params.records_per_request,
                service_seconds=service_seconds,
            )
            stats[name] = summarize(trace, offered_qps=offered, capacity_qps=capacity)
        baseline = "ideal-32-core" if "ideal-32-core" in stats else names[0]
        return ServingResult(
            dataset=dataset,
            arrival=params.arrival,
            policy=params.policy,
            offered_qps=offered,
            systems=stats,
            baseline=baseline,
            params=params.to_dict(),
        )

    def all_datasets(self) -> tuple[str, ...]:
        return BENCHMARK_NAMES


def quick_compare(dataset: str = "higgs", **kwargs: Any) -> ComparisonResult:
    """One-call demo used by the README quickstart."""
    return Executor(**kwargs).compare(dataset)
