"""End-to-end experiment executor.

Pipeline per dataset (mirrors the paper's methodology, Sec. IV):

1. generate the synthetic benchmark at simulation scale (registry);
2. run the functional GBDT trainer to obtain a :class:`WorkProfile`;
3. extrapolate the profile to the paper's record count (Table III) and tree
   count (500 trees) -- time models consume paper-scale work;
4. evaluate every hardware model on the identical profile.

Training runs are cached per (dataset, records, trees, seed) so the whole
benchmark suite trains each dataset exactly once per session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import (
    HardwareModel,
    IdealGPU,
    IdealMulticore,
    InterRecordAccelerator,
    RealGPU,
    RealMulticore,
    SequentialCPU,
)
from ..baselines.base import StepTimes
from ..core import BoosterConfig, BoosterEngine
from ..datasets import BENCHMARK_NAMES, dataset_spec, generate
from ..gbdt import EnsemblePredictor, TrainParams, TrainResult, WorkProfile, train
from ..memory.profile import BandwidthProfile, bandwidth_profile
from .calibrate import DEFAULT_COSTS, CostModel
from .results import ComparisonResult, InferenceResult

__all__ = ["Executor", "quick_compare", "PAPER_TREES", "DEFAULT_SIM_TREES"]

#: The paper trains 500 trees of depth up to 6 per benchmark (Sec. IV).
PAPER_TREES = 500
#: Boosting rounds actually executed by the functional simulator; per-tree
#: work is homogeneous after the first rounds and all results are ratios.
DEFAULT_SIM_TREES = 20

_TRAIN_CACHE: dict[tuple, TrainResult] = {}


@dataclass
class Executor:
    """Runs the full dataset -> profile -> timing pipeline with caching."""

    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    booster_config: BoosterConfig = field(default_factory=BoosterConfig)
    sim_records: int | None = None  # None => registry default (paper / 1000)
    sim_trees: int = DEFAULT_SIM_TREES
    seed: int = 7
    scale_to_paper: bool = True

    def __post_init__(self) -> None:
        self._bandwidth: BandwidthProfile = bandwidth_profile()
        self._models = self._build_models()

    # -- model registry ------------------------------------------------------------

    def _build_models(self) -> dict[str, HardwareModel]:
        kw = dict(costs=self.costs, bandwidth=self._bandwidth)
        models: dict[str, HardwareModel] = {
            "sequential": SequentialCPU(**kw),
            "ideal-32-core": IdealMulticore(**kw),
            "real-32-core": RealMulticore(**kw),
            "ideal-gpu": IdealGPU(**kw),
            "real-gpu": RealGPU(**kw),
            "inter-record": InterRecordAccelerator(**kw),
            "booster": BoosterEngine(config=self.booster_config, **kw),
            "booster-no-opts": BoosterEngine(
                config=self.booster_config,
                mapping_strategy="naive",
                column_format=False,
                **kw,
            ),
            "booster-group-by-field": BoosterEngine(
                config=self.booster_config,
                mapping_strategy="field",
                column_format=False,
                **kw,
            ),
        }
        return models

    def model(self, name: str) -> HardwareModel:
        return self._models[name]

    @property
    def model_names(self) -> list[str]:
        return list(self._models)

    # -- functional training (cached) --------------------------------------------------

    def train_result(self, dataset: str) -> TrainResult:
        spec = dataset_spec(dataset, n_records=self.sim_records, seed=self.seed)
        key = (dataset, spec.n_records, self.sim_trees, self.seed)
        cached = _TRAIN_CACHE.get(key)
        if cached is not None:
            return cached
        data = generate(spec)
        result = train(data, TrainParams(n_trees=self.sim_trees))
        _TRAIN_CACHE[key] = result
        return result

    def profile(self, dataset: str, extra_scale: float = 1.0) -> WorkProfile:
        """Paper-scale work profile (records x ``extra_scale``, 500 trees)."""
        result = self.train_result(dataset)
        prof = result.profile
        if self.scale_to_paper:
            k = prof.spec.paper_records / prof.spec.n_records
            prof = prof.scaled(k * extra_scale).with_trees_scaled(PAPER_TREES)
        elif extra_scale != 1.0:
            prof = prof.scaled(extra_scale)
        return prof

    # -- experiments ----------------------------------------------------------------------

    def compare(
        self,
        dataset: str,
        systems: list[str] | None = None,
        extra_scale: float = 1.0,
    ) -> ComparisonResult:
        """Training-time comparison (the Fig. 7 / 8 / 9 / 12 workhorse)."""
        prof = self.profile(dataset, extra_scale=extra_scale)
        names = systems or [
            "sequential",
            "ideal-32-core",
            "ideal-gpu",
            "inter-record",
            "booster",
        ]
        times: dict[str, StepTimes] = {}
        for name in names:
            times[name] = self._models[name].training_times(prof)
        return ComparisonResult(
            dataset=dataset, systems=times, profile_summary=prof.summary()
        )

    def inference(
        self,
        dataset: str,
        systems: list[str] | None = None,
        n_trees: int = PAPER_TREES,
    ) -> InferenceResult:
        """Batch-inference comparison over all records (Fig. 13)."""
        result = self.train_result(dataset)
        data = generate(dataset_spec(dataset, n_records=self.sim_records, seed=self.seed))
        predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
        work = predictor.inference_work(data, n_trees_target=n_trees)
        if self.scale_to_paper:
            k = work.spec.paper_records / work.n_records
            work.sum_path_len *= k
            work.n_records = int(round(work.n_records * k))
            work.spec = work.spec.with_records(work.n_records)
        names = systems or ["ideal-32-core", "booster"]
        seconds = {name: self._models[name].inference_seconds(work) for name in names}
        return InferenceResult(dataset=dataset, seconds=seconds)

    def all_datasets(self) -> tuple[str, ...]:
        return BENCHMARK_NAMES


def quick_compare(dataset: str = "higgs", **kwargs) -> ComparisonResult:
    """One-call demo used by the README quickstart."""
    return Executor(**kwargs).compare(dataset)
