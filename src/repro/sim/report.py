"""Fixed-width table rendering for benchmark output.

Every benchmark prints its table/figure rows through these helpers so the
regenerated artifacts look uniform and diff cleanly against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_speedup"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Monospace table with a header rule."""
    cols = len(headers)
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != cols:
            raise ValueError(f"row has {len(row)} cells, expected {cols}")
    widths = [max(len(row[i]) for row in cells) for i in range(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, labels: Sequence[str], values: Sequence[float], unit: str = "") -> str:
    """One figure series as labeled values (a text stand-in for a bar chart)."""
    parts = [f"{name}:"]
    for lab, val in zip(labels, values):
        parts.append(f"  {lab:>12s} {val:10.3f}{unit}")
    return "\n".join(parts)


def format_speedup(x: float) -> str:
    return f"{x:.2f}x"
