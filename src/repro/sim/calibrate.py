"""Cost-model constants: the single source of truth for all timing models.

Calibration policy (see DESIGN.md Sec. 7): every constant is either

* taken **directly from the paper** -- BU op latency (8 cycles, Sec. III-B),
  clocks (Table V), SRAM sizes, DRAM parameters (Table IV), broadcast link
  fan-in (16 BUs/link), histogram replica counts implied by the mapping; or
* a **microarchitectural constant chosen once** from first principles
  (e.g., an L2 hit costs ~14 cycles, a PCIe transaction ~5 us) and then held
  fixed across *all* datasets, figures, and tables.

No per-figure or per-dataset tuning exists anywhere: per-dataset behaviour
emerges from measured work profiles (tree shapes, bins, fields, conflict
factors) interacting with these shared constants.

The one structural modeling choice worth calling out: the Ideal 32-core's
cost per histogram update depends on whether the *whole histogram* fits in
its 32 KB L1 (Table V).  This is the paper's own argument for why multicores
underperform ("limited on-chip cache to hold the replicated histograms",
Sec. II-D): IoT's 236 KB histogram thrashes L1 (expensive updates), Flight's
7 KB histogram does not (cheap updates) -- which is precisely what spreads
the Booster speedups from 4.6x (Flight) to 30.6x (IoT) in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Shared microarchitectural cost constants."""

    # -- clocks (Table V) -------------------------------------------------------
    cpu_clock_ghz: float = 2.2
    gpu_clock_ghz: float = 2.2  # the paper's Ideal GPU uses the CPU clock
    booster_clock_ghz: float = 1.0
    ir_clock_ghz: float = 1.0  # IR simulated "with the same clock speed as Booster"

    # -- parallelism limits (Sec. IV: "constrained only by 32- and 64-way") ------
    cpu_threads: int = 32
    gpu_lanes: int = 64

    # -- CPU core cost model ------------------------------------------------------
    #: Cycles for a histogram update when the bin line hits in L1.
    cpu_bin_update_hit_cycles: float = 3.0
    #: Added cycles when the histogram exceeds L1 and the update misses to L2.
    cpu_l1_miss_penalty_cycles: float = 14.0
    #: L1 data cache capacity (Table V: 32 KB).
    cpu_l1_bytes: int = 32 * 1024
    #: Per-record overhead in step 1 (fetch record, read g/h).
    cpu_record_overhead_cycles: float = 4.0
    #: Step 3: evaluate one predicate and append a pointer.
    cpu_partition_cycles: float = 4.0
    #: Step 5: one tree-level hop (load node, compare, branch).
    cpu_hop_cycles: float = 5.0
    #: Step 5: per-record g/h/loss update at the leaf.
    cpu_record_update_cycles: float = 12.0
    #: Inference tree hop: 500 cold tree tables thrash L1 and the branch
    #: predictor, unlike training's single hot tree (used for Fig. 13).
    cpu_inference_hop_cycles: float = 10.0
    #: Bytes per histogram bin in CPU/GPU memory (count + G + H packed).
    host_bin_bytes: int = 16

    # -- step 2 on the host (identical structure for every system) ----------------
    #: Cycles to evaluate one bin as a split candidate (cumulative adds plus
    #: the gain formula's divisions, both missing directions).
    step2_scan_cycles_per_bin: float = 30.0
    #: Cycles per (bin, copy) to reduce replicated histograms.
    step2_reduce_cycles_per_bin: float = 2.0
    #: Effective parallel speedup of step 2 on the 32-core host (reduction and
    #: scan parallelize poorly; Fig. 8 "Step 2 does not see much improvement").
    step2_parallel: float = 8.0
    #: Per-vertex host overhead (thread barrier / driver dispatch).
    host_node_overhead_s: float = 3e-6

    # -- Booster offload path -------------------------------------------------------
    pcie_gbps: float = 16.0
    #: Per-vertex accelerator<->host round-trip (result ship + predicate back).
    booster_node_overhead_s: float = 10e-6
    #: Bytes per histogram bin shipped to the host (count + G + H).
    offload_bin_bytes: int = 24

    # -- Booster microarchitecture (Sec. III-B) ---------------------------------------
    #: BU occupancy per field update: "a short integer subtract, an SRAM read,
    #: two pipelined floating-point adds, and an SRAM write ... 8 cycles".
    bu_op_cycles: int = 8
    #: SRAM lookups per tree hop in steps 5 / inference (table walk step).
    bu_hop_cycles: int = 8
    #: Step 3 predicate evaluation occupancy per record at a BU.
    bu_predicate_cycles: int = 2
    #: BUs per broadcast link ("a simple, pipelined broadcast ... 16 BUs per link").
    broadcast_fanin: int = 16
    #: On-chip bin entry (G and H as fp32: 2 KB SRAM / 256 entries, Sec. III-C).
    sram_bin_bytes: int = 8
    #: Cycles per entry per reduction round of the cluster-replica reduction.
    reduce_cycles_per_entry: float = 2.0

    # -- Real-hardware derating (Fig. 11 only) -----------------------------------------
    #: Real multicore over Ideal when the working set fits in L3 ...
    real_cpu_fit_factor: float = 1.1
    #: ... and when it streams from DRAM (cache misses, prefetch limits).
    real_cpu_spill_factor: float = 1.8
    #: Aggregate last-level cache of the 32-core part.
    cpu_l3_bytes: int = 64 * 1024 * 1024
    #: Real GPU: base kernel inefficiency before irregularity penalties.
    real_gpu_base_factor: float = 1.3
    #: Weight of the measured warp bin-conflict factor (atomic serialization);
    #: applies in proportion to shared-memory pressure (histogram vs 96 KB).
    real_gpu_conflict_weight: float = 0.45
    gpu_shared_bytes: int = 96 * 1024
    #: Per-vertex kernel-launch/sync overhead on the real GPU (three launches
    #: per vertex: bin, choose, partition).
    gpu_launch_overhead_s: float = 60e-6
    #: Weight of the measured path-length divergence in traversal steps.
    real_gpu_divergence_weight: float = 2.0

    # -- Inter-record (IR) baseline (Sec. II-E / V-A) -------------------------------------
    #: On-chip budget IR spends on (histogram copy + processing unit) pairs in
    #: SRAM-equivalent bytes.  Together with ``ir_pu_overhead_bytes`` this is
    #: solved from the paper's two published copy counts (271 for Higgs, 179
    #: for Mq2008): 271*(28*256*8 + pu) = 179*(46*256*8 + pu).
    ir_sram_budget_bytes: int = 19_440_000
    ir_pu_overhead_bytes: int = 14_380
    #: IR stores 256 bins per one-hot *feature* (no group-by-field insight).
    ir_bins_per_feature: int = 256
    ir_bin_bytes: int = 8
    #: IR processes a record's fields serially in its processing unit.
    ir_field_cycles: float = 8.0
    ir_hop_cycles: float = 8.0
    ir_partition_cycles: float = 2.0

    def cpu_bin_update_cycles_from_hit(self, hit_fraction: float) -> float:
        """Per-update cost given the access-weighted L1 hit fraction.

        Hits cost the base update; misses add the next-level penalty.  The
        hit fraction comes from measured root-histogram access counts
        (``WorkProfile.hot_access_fraction``): skewed categorical benchmarks
        concentrate updates on head categories (high hit, cheap -- why the
        paper's Allstate trains in 1.6 min despite 10M records), while
        uniform numerical benchmarks thrash L1 (IoT's 29.5k bins).
        """
        hit = min(max(hit_fraction, 0.0), 1.0)
        return self.cpu_bin_update_hit_cycles + (1.0 - hit) * self.cpu_l1_miss_penalty_cycles

    def cpu_bin_update_cycles(self, hist_bytes: float) -> float:
        """Capacity-only fallback when no measured access counts exist."""
        if hist_bytes <= 0:
            return self.cpu_bin_update_hit_cycles
        hit = min(1.0, self.cpu_l1_bytes / hist_bytes)
        return self.cpu_bin_update_cycles_from_hit(hit)


#: The constants used by every experiment in this repository.
DEFAULT_COSTS = CostModel()
