"""Sustained-bandwidth calibration from the cycle-level DRAM model.

The analytic timing models need "effective bytes per cycle" for each access
pattern.  Rather than invent efficiencies, we *measure* them once per DRAM
configuration by running representative traces through the cycle-level
simulator: a streaming trace, and ascending gathers at a ladder of selection
densities.  Results are cached per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DRAMConfig
from .dram import DRAMSimulator
from .stream import gather_blocks, sequential

__all__ = ["BandwidthProfile", "bandwidth_profile"]

#: Selection densities at which gather bandwidth is measured.
_DENSITY_LADDER = (0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)

#: Trace length used for calibration; long enough that fill/drain effects are
#: negligible (<1%), short enough to simulate in well under a second.
_CAL_BLOCKS = 24_000

_CACHE: dict[tuple, "BandwidthProfile"] = {}  # repro: noqa RPR005 -- content-keyed deterministic memo of pure simulation outputs; fork copies recompute identical profiles


@dataclass
class BandwidthProfile:
    """Measured sustained bandwidth (bytes/DRAM-cycle) per access pattern."""

    config: DRAMConfig
    sequential_bpc: float
    gather_densities: np.ndarray
    gather_bpc: np.ndarray
    sequential_latency: float = 0.0

    @property
    def sequential_gbps(self) -> float:
        return self.sequential_bpc * self.config.clock_ghz

    def gather_bpc_at(self, density: float | np.ndarray) -> float | np.ndarray:
        """Interpolated gather bandwidth at arbitrary densities.

        Below the measured ladder the curve is clamped (sparse gathers bottom
        out at per-row activation cost); above, at the density-1.0 point,
        which equals streaming.
        """
        d = np.clip(np.asarray(density, dtype=np.float64), 0.0, 1.0)
        out = np.interp(d, self.gather_densities, self.gather_bpc)
        return out if out.ndim else float(out)

    def seconds_for_bytes(self, nbytes: float, density: float | None = None) -> float:
        """Wall-clock seconds to move ``nbytes`` with the given pattern."""
        bpc = self.sequential_bpc if density is None else float(self.gather_bpc_at(density))
        if nbytes <= 0:
            return 0.0
        cycles = nbytes / max(bpc, 1e-9)
        return cycles / (self.config.clock_ghz * 1e9)


def bandwidth_profile(
    config: DRAMConfig | None = None, window: int = 16, n_blocks: int = _CAL_BLOCKS
) -> BandwidthProfile:
    """Measure (and cache) the bandwidth profile for a DRAM configuration."""
    cfg = config or DRAMConfig()
    key = (cfg, window, n_blocks)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    sim = DRAMSimulator(cfg, window=window)
    seq_stats = sim.run(sequential(n_blocks))
    densities = np.asarray(_DENSITY_LADDER, dtype=np.float64)
    bpcs = np.empty_like(densities)
    for i, d in enumerate(densities):
        universe = max(int(n_blocks / d), 1)
        trace = gather_blocks(universe, d, seed=17)
        stats = sim.run(trace)
        bpcs[i] = stats.bytes_per_cycle if stats.n_requests else 0.0

    profile = BandwidthProfile(
        config=cfg,
        sequential_bpc=seq_stats.bytes_per_cycle,
        gather_densities=densities,
        gather_bpc=bpcs,
        sequential_latency=seq_stats.mean_latency,
    )
    _CACHE[key] = profile
    return profile
