"""DRAM configuration (Table IV of the paper).

The paper simulates memory with DRAMSim2 configured as a high-bandwidth
24-channel part derived from the Hynix JESD235 (HBM) standard and an Nvidia
HPCA'17 paper:

==============================  =================
Channels, banks, row            24, 16, 1 KB
tCAS-tRP-tRCD-tRAS              12-12-12-28
==============================  =================

"This memory achieves a sustained bandwidth of about 400 GB/s."  With a
16-byte-per-cycle data bus per channel at 1 GHz, a 64 B block occupies the bus
for 4 cycles, giving 16 GB/s/channel peak and 384 GB/s aggregate -- matching
the paper's sustained figure once row-buffer behaviour is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DRAMConfig"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing and geometry parameters (all times in memory-clock cycles)."""

    n_channels: int = 24
    n_banks: int = 16
    row_bytes: int = 1024
    block_bytes: int = 64
    t_cas: int = 12  # column access strobe: RD issue -> first data
    t_rp: int = 12  # row precharge
    t_rcd: int = 12  # row-to-column delay: ACT -> RD allowed
    t_ras: int = 28  # minimum row-open time: ACT -> PRE allowed
    bus_bytes_per_cycle: int = 16  # per-channel data bus width
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.n_channels < 1 or self.n_banks < 1:
            raise ValueError("need at least one channel and one bank")
        if self.row_bytes % self.block_bytes:
            raise ValueError("row_bytes must be a multiple of block_bytes")
        if self.block_bytes % self.bus_bytes_per_cycle:
            raise ValueError("block_bytes must be a multiple of bus width")
        for t in (self.t_cas, self.t_rp, self.t_rcd, self.t_ras):
            if t < 1:
                raise ValueError("timing parameters must be positive")

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.block_bytes

    @property
    def burst_cycles(self) -> int:
        """Data-bus occupancy of one block transfer."""
        return self.block_bytes // self.bus_bytes_per_cycle

    @property
    def peak_bytes_per_cycle(self) -> float:
        return float(self.n_channels * self.bus_bytes_per_cycle)

    @property
    def peak_gbps(self) -> float:
        """Peak bandwidth in GB/s at the configured clock."""
        return self.peak_bytes_per_cycle * self.clock_ghz

    def bandwidth_gbps(self, bytes_moved: float, cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        return (bytes_moved / cycles) * self.clock_ghz
