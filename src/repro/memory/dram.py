"""Cycle-level DRAM model: banks, channels, FR-FCFS scheduling.

The model follows DRAMSim2's structure at the granularity the paper's results
depend on: per-bank row-buffer state machines with tRCD/tCAS/tRP/tRAS timing,
an open-page policy, a first-ready-first-come-first-served (FR-FCFS) window
scheduler per channel, and a shared per-channel data bus whose occupancy
(4 cycles per 64 B block) sets the peak bandwidth.  Channels are independent,
exactly as in hardware.

Used two ways:

* directly, to validate that streaming sustains ~400 GB/s (Table IV text) and
  that gathers degrade with selection density;
* through :mod:`repro.memory.profile`, which calibrates pattern-specific
  sustained bandwidths consumed by the analytic timing models.

Two scheduler implementations produce the identical request schedule:

* :meth:`ChannelSim.run_reference` -- the plain ``while pending`` loop, one
  interpreted iteration per request with an O(window) scan and an O(n)
  ``pending.pop(0)``.  It is the executable statement of the policy and the
  oracle the equivalence tests run against.
* :meth:`ChannelSim.run` -- array-based bank-state stepping.  The key
  observation is that whenever the oldest pending request is a row hit,
  FR-FCFS must serve it (position 0 is always arrival-eligible and the scan
  starts there), and serving a hit never changes any bank's open row -- so a
  maximal run of consecutive oldest-first hits can be detected with one
  vectorized ``open_row[banks] == rows`` comparison against *current* state
  and serviced in bulk.  Within such a stretch the per-bank read-issue chain
  and the shared-bus chain are max-plus recurrences,
  ``x_i = max(u_i, x_{i-1} + burst)``, which collapse to
  ``np.maximum.accumulate`` over ``u_i - i*burst`` (the same trick PR 1 used
  for ``simulate_step1_micro``).  Misses and dirty scheduling windows fall
  back to a scalar step over plain Python lists and a bounded window buffer,
  which still removes the reference's O(n) list pops and per-request NumPy
  scalar indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import AddressMapping
from .config import DRAMConfig

__all__ = ["BankState", "ChannelSim", "DRAMSimulator", "DRAMStats"]


@dataclass
class BankState:
    """Row-buffer and timing state of one bank (open-page policy)."""

    open_row: int = -1
    act_time: int = -(10**9)  # when the current row was activated
    row_ready_at: int = 0  # act_time + tRCD: first RD allowed
    precharged_at: int = 0  # when the bank finished precharging
    rd_ready_at: int = 0  # earliest next RD (column-to-column spacing)

    def is_hit(self, row: int) -> bool:
        return self.open_row == row


@dataclass
class DRAMStats:
    """Aggregate outcome of one simulated trace."""

    n_requests: int
    total_cycles: int
    bytes_moved: int
    row_hits: int
    latency_sum: float
    config: DRAMConfig

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.n_requests if self.n_requests else 0.0

    @property
    def bytes_per_cycle(self) -> float:
        return self.bytes_moved / self.total_cycles if self.total_cycles else 0.0

    @property
    def sustained_gbps(self) -> float:
        return self.bytes_per_cycle * self.config.clock_ghz

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.n_requests if self.n_requests else 0.0

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth actually delivered."""
        peak = self.config.peak_bytes_per_cycle
        return self.bytes_per_cycle / peak if peak else 0.0


#: First chunk size of the vectorized hit-run scan; doubles per chunk so a
#: long streaming stretch costs O(run) compares while a short one wastes at
#: most the initial chunk.
_SCAN_CHUNK = 64
_SCAN_CHUNK_MAX = 8192


class ChannelSim:
    """One channel: 16 banks, a data bus, and an FR-FCFS scheduling window."""

    def __init__(self, config: DRAMConfig, window: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.config = config
        self.window = window
        self.banks = [BankState() for _ in range(config.n_banks)]
        self.bus_free_at = 0
        self.row_hits = 0

    def _service(self, arrival: int, bank_ix: int, row: int) -> int:
        """Issue one block read; returns the data completion cycle."""
        cfg = self.config
        bank = self.banks[bank_ix]
        now = max(arrival, 0)

        if bank.is_hit(row):
            self.row_hits += 1
            rd_issue = max(now, bank.row_ready_at, bank.rd_ready_at)
        else:
            if bank.open_row >= 0:
                # Row conflict: precharge (respecting tRAS), then activate.
                pre_issue = max(now, bank.act_time + cfg.t_ras, bank.rd_ready_at)
                bank.precharged_at = pre_issue + cfg.t_rp
            # Closed bank (or just precharged): activate the new row.
            act_issue = max(now, bank.precharged_at)
            bank.open_row = row
            bank.act_time = act_issue
            bank.row_ready_at = act_issue + cfg.t_rcd
            rd_issue = bank.row_ready_at
        data_start = max(rd_issue + cfg.t_cas, self.bus_free_at)
        completion = data_start + cfg.burst_cycles
        self.bus_free_at = completion
        # Back-to-back column commands on one bank are spaced by the burst.
        bank.rd_ready_at = rd_issue + cfg.burst_cycles
        return completion

    def run_reference(
        self, arrivals: np.ndarray, banks: np.ndarray, rows: np.ndarray
    ) -> tuple[int, float]:
        """FR-FCFS service of a request stream; returns (makespan, latency sum).

        The scheduler looks at the next ``window`` pending requests and
        services a row-buffer hit first (first-ready), falling back to the
        oldest request -- DRAMSim2's default policy.  Scalar reference
        implementation; :meth:`run` reproduces this schedule exactly.
        """
        n = len(arrivals)
        if n == 0:
            return 0, 0.0
        pending = list(range(n))
        latency_sum = 0.0
        makespan = 0
        while pending:
            # Only *arrived* requests are eligible for first-ready selection;
            # a scheduler cannot reorder around the future.  The channel's
            # notion of "now" is its bus progress, or the oldest pending
            # arrival when the bus has run dry.
            now = max(self.bus_free_at, int(arrivals[pending[0]]))
            limit = min(self.window, len(pending))
            chosen = 0
            for k in range(limit):
                ix = pending[k]
                if int(arrivals[ix]) > now:
                    continue  # not arrived yet: ineligible for first-ready
                if self.banks[banks[ix]].is_hit(int(rows[ix])):
                    chosen = k
                    break
            ix = pending.pop(chosen)
            done = self._service(int(arrivals[ix]), int(banks[ix]), int(rows[ix]))
            latency_sum += done - int(arrivals[ix])
            if done > makespan:
                makespan = done
        return makespan, latency_sum

    def run(
        self, arrivals: np.ndarray, banks: np.ndarray, rows: np.ndarray
    ) -> tuple[int, float]:
        """Vectorized FR-FCFS service; identical schedule to ``run_reference``.

        Bulk path: while the oldest pending request is a row hit (and the
        window buffer holds a gap-free run of trace positions), the maximal
        hit run is found with chunked vectorized compares and serviced through
        two ``np.maximum.accumulate`` max-plus chains (per-bank read issue,
        then the shared bus).  Everything else takes a scalar step on plain
        Python state with a bounded window buffer.
        """
        n = len(arrivals)
        if n == 0:
            return 0, 0.0
        cfg = self.config
        burst = cfg.burst_cycles
        t_cas = cfg.t_cas
        t_rp = cfg.t_rp
        t_rcd = cfg.t_rcd
        t_ras = cfg.t_ras

        arr = np.asarray(arrivals, dtype=np.int64)
        bnk = np.asarray(banks, dtype=np.int64)
        row = np.asarray(rows, dtype=np.int64)
        arr0 = np.maximum(arr, 0)  # service-time clamp, as in _service
        arr_l = arr.tolist()
        bnk_l = bnk.tolist()
        row_l = row.tolist()

        # Bank state as parallel scalars: lists for the scalar step, plus an
        # open-row array for the vectorized hit compare (hits never mutate it,
        # so only the scalar miss path writes both copies).
        open_row = np.array([b.open_row for b in self.banks], dtype=np.int64)
        open_row_l = open_row.tolist()
        act_time = [b.act_time for b in self.banks]
        row_ready = [b.row_ready_at for b in self.banks]
        precharged = [b.precharged_at for b in self.banks]
        rd_ready = [b.rd_ready_at for b in self.banks]
        bus_free = self.bus_free_at
        row_hits = self.row_hits
        latency_sum = 0.0
        makespan = 0
        window = self.window

        # ``pending`` is represented as buf + [head, head+1, ..., n-1]: the
        # buffer holds the first min(window, remaining) pending positions in
        # schedule order (ascending trace positions, possibly with gaps where
        # hits were served out of FCFS order).
        buf: list[int] = []
        head = 0
        while buf or head < n:
            while len(buf) < window and head < n:
                buf.append(head)
                head += 1

            i0 = buf[0]
            last = buf[-1]
            if (
                last - i0 + 1 == len(buf)  # gap-free buffer ...
                and open_row_l[bnk_l[i0]] == row_l[i0]  # ... and oldest is a hit
            ):
                # Contiguity extends past the buffer into the unbuffered tail
                # only when the buffer runs right up to it.
                limit = n if last == head - 1 else last + 1
                # Maximal run of oldest-first hits vs CURRENT open rows.
                m = 0
                chunk = _SCAN_CHUNK
                while True:
                    lo = i0 + m
                    hi = min(lo + chunk, limit)
                    if lo >= hi:
                        break
                    hits = open_row[bnk[lo:hi]] == row[lo:hi]
                    if hits.all():
                        m += hi - lo
                        chunk = min(chunk * 2, _SCAN_CHUNK_MAX)
                    else:
                        m += int(np.argmin(hits))
                        break

                sl = slice(i0, i0 + m)
                sb = bnk[sl]
                # Per-bank read-issue chain: rd_issue = max(max(arrival, 0),
                # row_ready) folded with the burst-spaced previous issue.
                rd_issue = np.empty(m, dtype=np.int64)
                present = np.flatnonzero(np.bincount(sb, minlength=cfg.n_banks))
                sa = arr0[sl]
                for b in present:
                    mask = sb == b
                    u = np.maximum(sa[mask], row_ready[b])
                    offs = np.arange(u.shape[0], dtype=np.int64) * burst
                    seed = u - offs
                    seed[0] = max(int(u[0]), rd_ready[b])
                    issue = np.maximum.accumulate(seed) + offs
                    rd_issue[mask] = issue
                    rd_ready[b] = int(issue[-1]) + burst
                # Shared-bus chain in trace order.
                v = rd_issue + t_cas
                offs = np.arange(m, dtype=np.int64) * burst
                seed = v - offs
                seed[0] = max(int(v[0]), bus_free)
                completion = np.maximum.accumulate(seed) + offs + burst
                bus_free = int(completion[-1])
                latency_sum += float((completion - arr[sl]).sum())
                row_hits += m
                if bus_free > makespan:
                    makespan = bus_free
                if i0 + m > last:
                    head = max(head, i0 + m)
                    buf = []
                else:
                    buf = list(range(i0 + m, last + 1))
                continue

            # Scalar step: O(window) first-ready scan, then one service.
            now = bus_free if bus_free > arr_l[i0] else arr_l[i0]
            chosen = 0
            for k in range(len(buf)):
                ix = buf[k]
                if arr_l[ix] > now:
                    continue
                if open_row_l[bnk_l[ix]] == row_l[ix]:
                    chosen = k
                    break
            ix = buf.pop(chosen)
            a = arr_l[ix]
            a0 = a if a > 0 else 0
            b = bnk_l[ix]
            r = row_l[ix]
            if open_row_l[b] == r:
                row_hits += 1
                rd_issue_s = max(a0, row_ready[b], rd_ready[b])
            else:
                if open_row_l[b] >= 0:
                    pre_issue = max(a0, act_time[b] + t_ras, rd_ready[b])
                    precharged[b] = pre_issue + t_rp
                act_issue = max(a0, precharged[b])
                open_row_l[b] = r
                open_row[b] = r
                act_time[b] = act_issue
                row_ready[b] = act_issue + t_rcd
                rd_issue_s = row_ready[b]
            data_start = max(rd_issue_s + t_cas, bus_free)
            done = data_start + burst
            bus_free = done
            rd_ready[b] = rd_issue_s + burst
            latency_sum += done - a
            if done > makespan:
                makespan = done

        # Fold the final state back into the persistent bank objects so
        # repeated / mixed run calls observe the same channel history the
        # reference would.
        for b in range(cfg.n_banks):
            bank = self.banks[b]
            bank.open_row = open_row_l[b]
            bank.act_time = act_time[b]
            bank.row_ready_at = row_ready[b]
            bank.precharged_at = precharged[b]
            bank.rd_ready_at = rd_ready[b]
        self.bus_free_at = bus_free
        self.row_hits = row_hits
        return makespan, latency_sum


class DRAMSimulator:
    """Multi-channel DRAM: distributes a block trace and aggregates stats."""

    def __init__(
        self, config: DRAMConfig | None = None, window: int = 16, *, vectorized: bool = True
    ) -> None:
        self.config = config or DRAMConfig()
        self.window = window
        self.vectorized = vectorized
        self.mapping = AddressMapping(self.config)

    def run(self, block_addrs: np.ndarray, arrivals: np.ndarray | None = None) -> DRAMStats:
        """Simulate reads of the given block addresses.

        ``arrivals`` defaults to all-at-zero (throughput measurement); pass
        issue cycles to study latency under a paced stream.
        """
        addrs = np.asarray(block_addrs, dtype=np.int64)
        n = int(addrs.size)
        if arrivals is None:
            arrivals = np.zeros(n, dtype=np.int64)
        else:
            arrivals = np.asarray(arrivals, dtype=np.int64)
            if arrivals.shape != addrs.shape:
                raise ValueError("arrivals must match block_addrs in shape")
        if n == 0:
            return DRAMStats(0, 0, 0, 0, 0.0, self.config)

        channel, bank, row, _col = self.mapping.decode(addrs)
        makespan = 0
        latency_sum = 0.0
        row_hits = 0
        for ch in range(self.config.n_channels):
            mask = channel == ch
            if not mask.any():
                continue
            sim = ChannelSim(self.config, self.window)
            service = sim.run if self.vectorized else sim.run_reference
            span, lat = service(arrivals[mask], bank[mask], row[mask])
            latency_sum += lat
            row_hits += sim.row_hits
            if span > makespan:
                makespan = span
        return DRAMStats(
            n_requests=n,
            total_cycles=makespan,
            bytes_moved=n * self.config.block_bytes,
            row_hits=row_hits,
            latency_sum=latency_sum,
            config=self.config,
        )
