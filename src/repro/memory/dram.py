"""Cycle-level DRAM model: banks, channels, FR-FCFS scheduling.

The model follows DRAMSim2's structure at the granularity the paper's results
depend on: per-bank row-buffer state machines with tRCD/tCAS/tRP/tRAS timing,
an open-page policy, a first-ready-first-come-first-served (FR-FCFS) window
scheduler per channel, and a shared per-channel data bus whose occupancy
(4 cycles per 64 B block) sets the peak bandwidth.  Channels are independent,
exactly as in hardware.

Used two ways:

* directly, to validate that streaming sustains ~400 GB/s (Table IV text) and
  that gathers degrade with selection density;
* through :mod:`repro.memory.profile`, which calibrates pattern-specific
  sustained bandwidths consumed by the analytic timing models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import AddressMapping
from .config import DRAMConfig

__all__ = ["BankState", "ChannelSim", "DRAMSimulator", "DRAMStats"]


@dataclass
class BankState:
    """Row-buffer and timing state of one bank (open-page policy)."""

    open_row: int = -1
    act_time: int = -(10**9)  # when the current row was activated
    row_ready_at: int = 0  # act_time + tRCD: first RD allowed
    precharged_at: int = 0  # when the bank finished precharging
    rd_ready_at: int = 0  # earliest next RD (column-to-column spacing)

    def is_hit(self, row: int) -> bool:
        return self.open_row == row


@dataclass
class DRAMStats:
    """Aggregate outcome of one simulated trace."""

    n_requests: int
    total_cycles: int
    bytes_moved: int
    row_hits: int
    latency_sum: float
    config: DRAMConfig

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.n_requests if self.n_requests else 0.0

    @property
    def bytes_per_cycle(self) -> float:
        return self.bytes_moved / self.total_cycles if self.total_cycles else 0.0

    @property
    def sustained_gbps(self) -> float:
        return self.bytes_per_cycle * self.config.clock_ghz

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.n_requests if self.n_requests else 0.0

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth actually delivered."""
        peak = self.config.peak_bytes_per_cycle
        return self.bytes_per_cycle / peak if peak else 0.0


class ChannelSim:
    """One channel: 16 banks, a data bus, and an FR-FCFS scheduling window."""

    def __init__(self, config: DRAMConfig, window: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.config = config
        self.window = window
        self.banks = [BankState() for _ in range(config.n_banks)]
        self.bus_free_at = 0
        self.row_hits = 0

    def _service(self, arrival: int, bank_ix: int, row: int) -> int:
        """Issue one block read; returns the data completion cycle."""
        cfg = self.config
        bank = self.banks[bank_ix]
        now = max(arrival, 0)

        if bank.is_hit(row):
            self.row_hits += 1
            rd_issue = max(now, bank.row_ready_at, bank.rd_ready_at)
        else:
            if bank.open_row >= 0:
                # Row conflict: precharge (respecting tRAS), then activate.
                pre_issue = max(now, bank.act_time + cfg.t_ras, bank.rd_ready_at)
                bank.precharged_at = pre_issue + cfg.t_rp
            # Closed bank (or just precharged): activate the new row.
            act_issue = max(now, bank.precharged_at)
            bank.open_row = row
            bank.act_time = act_issue
            bank.row_ready_at = act_issue + cfg.t_rcd
            rd_issue = bank.row_ready_at

        data_start = max(rd_issue + cfg.t_cas, self.bus_free_at)
        completion = data_start + cfg.burst_cycles
        self.bus_free_at = completion
        # Back-to-back column commands on one bank are spaced by the burst.
        bank.rd_ready_at = rd_issue + cfg.burst_cycles
        return completion

    def run(
        self, arrivals: np.ndarray, banks: np.ndarray, rows: np.ndarray
    ) -> tuple[int, float]:
        """FR-FCFS service of a request stream; returns (makespan, latency sum).

        The scheduler looks at the next ``window`` pending requests and
        services a row-buffer hit first (first-ready), falling back to the
        oldest request -- DRAMSim2's default policy.
        """
        n = len(arrivals)
        if n == 0:
            return 0, 0.0
        pending = list(range(n))
        latency_sum = 0.0
        makespan = 0
        while pending:
            # Only *arrived* requests are eligible for first-ready selection;
            # a scheduler cannot reorder around the future.  The channel's
            # notion of "now" is its bus progress, or the oldest pending
            # arrival when the bus has run dry.
            now = max(self.bus_free_at, int(arrivals[pending[0]]))
            limit = min(self.window, len(pending))
            chosen = 0
            for k in range(limit):
                ix = pending[k]
                if int(arrivals[ix]) > now:
                    continue  # not arrived yet: ineligible for first-ready
                if self.banks[banks[ix]].is_hit(int(rows[ix])):
                    chosen = k
                    break
            ix = pending.pop(chosen)
            done = self._service(int(arrivals[ix]), int(banks[ix]), int(rows[ix]))
            latency_sum += done - int(arrivals[ix])
            if done > makespan:
                makespan = done
        return makespan, latency_sum


class DRAMSimulator:
    """Multi-channel DRAM: distributes a block trace and aggregates stats."""

    def __init__(self, config: DRAMConfig | None = None, window: int = 16) -> None:
        self.config = config or DRAMConfig()
        self.window = window
        self.mapping = AddressMapping(self.config)

    def run(self, block_addrs: np.ndarray, arrivals: np.ndarray | None = None) -> DRAMStats:
        """Simulate reads of the given block addresses.

        ``arrivals`` defaults to all-at-zero (throughput measurement); pass
        issue cycles to study latency under a paced stream.
        """
        addrs = np.asarray(block_addrs, dtype=np.int64)
        n = int(addrs.size)
        if arrivals is None:
            arrivals = np.zeros(n, dtype=np.int64)
        else:
            arrivals = np.asarray(arrivals, dtype=np.int64)
            if arrivals.shape != addrs.shape:
                raise ValueError("arrivals must match block_addrs in shape")
        if n == 0:
            return DRAMStats(0, 0, 0, 0, 0.0, self.config)

        channel, bank, row, _col = self.mapping.decode(addrs)
        makespan = 0
        latency_sum = 0.0
        row_hits = 0
        for ch in range(self.config.n_channels):
            mask = channel == ch
            if not mask.any():
                continue
            sim = ChannelSim(self.config, self.window)
            span, lat = sim.run(arrivals[mask], bank[mask], row[mask])
            latency_sum += lat
            row_hits += sim.row_hits
            if span > makespan:
                makespan = span
        return DRAMStats(
            n_requests=n,
            total_cycles=makespan,
            bytes_moved=n * self.config.block_bytes,
            row_hits=row_hits,
            latency_sum=latency_sum,
            config=self.config,
        )
