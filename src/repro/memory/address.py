"""Block-address to (channel, bank, row, column) mapping.

Block-interleaved across channels first, then banks, then row columns:
consecutive block addresses rotate across all 24 channels (streaming saturates
every data bus) and, within a channel, across all 16 banks (ACT/PRE latencies
of one bank hide under transfers on the others).  The mapping is bijective --
property-tested -- so no two blocks collide in one row slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DRAMConfig

__all__ = ["AddressMapping", "DecodedAddress"]


@dataclass(frozen=True)
class DecodedAddress:
    channel: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Vectorized block-address decode/encode for one DRAM config."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config

    def decode(
        self, block_addr: int | np.ndarray
    ) -> "DecodedAddress | tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Decode block addresses (scalar or array) to channel/bank/row/col."""
        cfg = self.config
        a = np.asarray(block_addr, dtype=np.int64)
        if (a < 0).any():
            raise ValueError("block addresses must be non-negative")
        channel = a % cfg.n_channels
        rest = a // cfg.n_channels
        bank = rest % cfg.n_banks
        rest = rest // cfg.n_banks
        column = rest % cfg.blocks_per_row
        row = rest // cfg.blocks_per_row
        if np.ndim(block_addr) == 0:
            return DecodedAddress(int(channel), int(bank), int(row), int(column))
        return channel, bank, row, column

    def encode(
        self,
        channel: int | np.ndarray,
        bank: int | np.ndarray,
        row: int | np.ndarray,
        column: int | np.ndarray,
    ) -> int | np.ndarray:
        """Inverse of :meth:`decode` (scalar or arrays)."""
        cfg = self.config
        ch = np.asarray(channel, dtype=np.int64)
        bk = np.asarray(bank, dtype=np.int64)
        rw = np.asarray(row, dtype=np.int64)
        co = np.asarray(column, dtype=np.int64)
        if (
            (ch < 0).any()
            or (ch >= cfg.n_channels).any()
            or (bk < 0).any()
            or (bk >= cfg.n_banks).any()
            or (co < 0).any()
            or (co >= cfg.blocks_per_row).any()
            or (rw < 0).any()
        ):
            raise ValueError("component out of range")
        out = ((rw * cfg.blocks_per_row + co) * cfg.n_banks + bk) * cfg.n_channels + ch
        if np.ndim(channel) == 0 and np.ndim(row) == 0:
            return int(out)
        return out

    def byte_to_block(self, byte_addr: int | np.ndarray) -> int | np.ndarray:
        """Byte address -> block address."""
        a = np.asarray(byte_addr, dtype=np.int64)
        out = a // self.config.block_bytes
        return int(out) if np.ndim(byte_addr) == 0 else out
