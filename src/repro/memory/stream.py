"""Access-trace generators for the DRAM model.

Each generator yields block addresses for one of the access patterns the
training steps produce:

* ``sequential``      -- streaming row-major records / whole columns (steps 1
  at the root, 5, and all double-buffered output streams);
* ``gather_records``  -- scattered record fetch at interior vertices (step 1),
  blocks selected with density ``p``;
* ``gather_column``   -- scattered single-field column access (step 3), the
  "more non-contiguous" pattern the paper notes;
* ``random_blocks``   -- worst-case pointer chasing, used to bound behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sequential", "gather_blocks", "random_blocks", "strided"]


def sequential(n_blocks: int, start: int = 0) -> np.ndarray:
    """Contiguous block stream starting at ``start``."""
    if n_blocks < 0:
        raise ValueError("n_blocks must be non-negative")
    return np.arange(start, start + n_blocks, dtype=np.int64)


def gather_blocks(
    n_universe_blocks: int, density: float, seed: int = 0, sort: bool = True
) -> np.ndarray:
    """Random subset of a block range at the given selection density.

    Models fetching the blocks touched by a scattered record subset: the
    address *order* is ascending (the pointer streams are produced in record
    order), so row-buffer locality survives at high densities and dies at low
    ones -- exactly the step-1/3 behaviour at deep tree vertices.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = rng.random(n_universe_blocks) < density
    out = np.nonzero(mask)[0].astype(np.int64)
    if not sort:
        rng.shuffle(out)
    return out


def random_blocks(n_blocks: int, universe: int, seed: int = 0) -> np.ndarray:
    """Uniformly random block addresses (pointer chasing upper bound)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=n_blocks, dtype=np.int64)


def strided(n_blocks: int, stride: int, start: int = 0) -> np.ndarray:
    """Fixed-stride block stream (e.g., one field of row-major records)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    return start + stride * np.arange(n_blocks, dtype=np.int64)
