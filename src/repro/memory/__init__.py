"""Cycle-level DRAM substrate (Table IV configuration).

Public API::

    from repro.memory import DRAMConfig, DRAMSimulator, bandwidth_profile
    stats = DRAMSimulator().run(sequential(10_000))
    prof = bandwidth_profile()        # sustained GB/s per access pattern
"""

from .address import AddressMapping, DecodedAddress
from .config import DRAMConfig
from .dram import BankState, ChannelSim, DRAMSimulator, DRAMStats
from .profile import BandwidthProfile, bandwidth_profile
from .stream import gather_blocks, random_blocks, sequential, strided

__all__ = [
    "AddressMapping",
    "BandwidthProfile",
    "BankState",
    "ChannelSim",
    "DRAMConfig",
    "DRAMSimulator",
    "DRAMStats",
    "DecodedAddress",
    "bandwidth_profile",
    "gather_blocks",
    "random_blocks",
    "sequential",
    "strided",
]
