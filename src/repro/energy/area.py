"""ASIC area/power model calibrated to the paper's synthesis (Table VI).

The paper synthesizes one 64-BU cluster (Synopsys DC, FreePDK45, CACTI for
the SRAM macros) and reports, for the full 50-cluster / 3200-BU chip at 1 GHz:

=============  ===========  =========
Component      Area (mm^2)  Power (W)
=============  ===========  =========
Control Logic  8.4          4.3
FPU            18.4         9.5
SRAM           33.1         9.4
Total          60.0         23.2
=============  ===========  =========

plus two structural facts: the 3200-bank SRAM area is "around 70% larger than
that of a 1-bank 6.4-MB SRAM array", and SRAM power is "only around 59% higher
than that of the 1-bank case" because static power dominates.

Our model decomposes each component into per-BU / per-cluster / per-byte terms
whose constants are solved *from those published numbers*, so the model
reproduces Table VI exactly at the design point and extrapolates smoothly for
the design-space ablations (BU count, SRAM size, cluster shape).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AreaPowerModel", "ChipBudget", "TABLE6"]

#: Published Table VI values: component -> (area mm^2, power W).
TABLE6 = {
    "control": (8.4, 4.3),
    "fpu": (18.4, 9.5),
    "sram": (33.1, 9.4),
    "total": (60.0, 23.2),
}

_REF_BUS = 3200
_REF_CLUSTERS = 50
_REF_SRAM_BYTES = 2048
_REF_CLOCK_GHZ = 1.0

# SRAM area: paper says 3200 banks cost ~1.7x the 1-bank-equal-capacity array,
# so base (1-bank) area for 6.4 MB is 33.1 / 1.7 mm^2 and the remainder is
# per-bank periphery.
_SRAM_BASE_MM2 = TABLE6["sram"][0] / 1.7
_SRAM_MM2_PER_BYTE = _SRAM_BASE_MM2 / (_REF_BUS * _REF_SRAM_BYTES)
_SRAM_MM2_PER_BANK = (TABLE6["sram"][0] - _SRAM_BASE_MM2) / _REF_BUS

# SRAM power: 59% higher than 1-bank => static-per-byte plus per-bank terms.
_SRAM_BASE_W = TABLE6["sram"][1] / 1.59
_SRAM_W_PER_BYTE = _SRAM_BASE_W / (_REF_BUS * _REF_SRAM_BYTES)
_SRAM_W_PER_BANK = (TABLE6["sram"][1] - _SRAM_BASE_W) / _REF_BUS

# FPU: pure per-BU costs (each BU has the FP adder pair for G and H).
_FPU_MM2_PER_BU = TABLE6["fpu"][0] / _REF_BUS
_FPU_W_PER_BU = TABLE6["fpu"][1] / _REF_BUS

# Control: split between per-BU sequencing, per-cluster distribution/broadcast
# links, and a global front end.  The split (60% / 33% / 7%) follows the
# cluster-replicated structure of Fig. 5; only the total is published.
_CTRL_MM2_PER_BU = 0.60 * TABLE6["control"][0] / _REF_BUS
_CTRL_MM2_PER_CLUSTER = 0.33 * TABLE6["control"][0] / _REF_CLUSTERS
_CTRL_MM2_GLOBAL = 0.07 * TABLE6["control"][0]
_CTRL_W_PER_BU = 0.60 * TABLE6["control"][1] / _REF_BUS
_CTRL_W_PER_CLUSTER = 0.33 * TABLE6["control"][1] / _REF_CLUSTERS
_CTRL_W_GLOBAL = 0.07 * TABLE6["control"][1]


@dataclass(frozen=True)
class ChipBudget:
    """Area/power estimate for one chip configuration."""

    control_mm2: float
    fpu_mm2: float
    sram_mm2: float
    control_w: float
    fpu_w: float
    sram_w: float

    @property
    def total_mm2(self) -> float:
        return self.control_mm2 + self.fpu_mm2 + self.sram_mm2

    @property
    def total_w(self) -> float:
        return self.control_w + self.fpu_w + self.sram_w

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, area, power) rows in Table VI order."""
        return [
            ("Control Logic", self.control_mm2, self.control_w),
            ("FPU", self.fpu_mm2, self.fpu_w),
            ("SRAM", self.sram_mm2, self.sram_w),
            ("Total", self.total_mm2, self.total_w),
        ]


class AreaPowerModel:
    """Area/power as a function of the Booster configuration."""

    def estimate(
        self,
        n_bus: int = _REF_BUS,
        n_clusters: int = _REF_CLUSTERS,
        sram_bytes: int = _REF_SRAM_BYTES,
        clock_ghz: float = _REF_CLOCK_GHZ,
    ) -> ChipBudget:
        if n_bus < 1 or n_clusters < 1 or sram_bytes < 1:
            raise ValueError("configuration values must be positive")
        total_sram = n_bus * sram_bytes
        # Dynamic power scales with clock; SRAM static power does not.
        f = clock_ghz / _REF_CLOCK_GHZ
        return ChipBudget(
            control_mm2=(
                _CTRL_MM2_PER_BU * n_bus
                + _CTRL_MM2_PER_CLUSTER * n_clusters
                + _CTRL_MM2_GLOBAL
            ),
            fpu_mm2=_FPU_MM2_PER_BU * n_bus,
            sram_mm2=_SRAM_MM2_PER_BYTE * total_sram + _SRAM_MM2_PER_BANK * n_bus,
            control_w=f
            * (
                _CTRL_W_PER_BU * n_bus
                + _CTRL_W_PER_CLUSTER * n_clusters
                + _CTRL_W_GLOBAL
            ),
            fpu_w=f * _FPU_W_PER_BU * n_bus,
            sram_w=_SRAM_W_PER_BYTE * total_sram + _SRAM_W_PER_BANK * n_bus,
        )

    def sram_budget_bytes(self, area_mm2: float, banks: int = 1) -> float:
        """Capacity fitting in a given area (used by the IR baseline, which
        re-purposes Booster's whole area as histogram storage)."""
        usable = area_mm2 - _SRAM_MM2_PER_BANK * banks
        if usable <= 0:
            return 0.0
        return usable / _SRAM_MM2_PER_BYTE
