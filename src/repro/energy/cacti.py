"""CACTI-like SRAM access-energy and area model.

The paper models SRAM access energy "using access activity from our simulator
and per-access energy cost from CACTI 7.0" (Sec. IV) and reports the
normalized per-access energies in Table V:

===========================  ==========  ==================
Configuration                SRAM        energy (norm.)
===========================  ==========  ==================
Ideal Multicore (L1D)        32 KB       1.00
Ideal GPU (Shared Memory)    96 KB (32-way banked)  2.64
Booster (BU SRAM)            2 KB        0.71
===========================  ==========  ==================

We do not re-run CACTI (unavailable offline); instead we fit a two-term
capacity/banking law through the paper's three published points:

    e(C, banks) = (C / 32 KB)^beta * (1 + kappa * (banks - 1))

``beta`` comes from the 2 KB vs 32 KB pair and ``kappa`` from the 96 KB
32-banked point, so the model reproduces Table V exactly and interpolates
plausibly for the ablation sweeps.  Area uses the linear-capacity +
per-bank-periphery decomposition calibrated in :mod:`repro.energy.area`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SRAMEnergyModel", "TABLE5_POINTS"]

#: (capacity_bytes, banks, normalized energy) -- Table V of the paper.
TABLE5_POINTS = (
    (32 * 1024, 1, 1.00),  # Ideal 32-core L1D
    (96 * 1024, 32, 2.64),  # Ideal GPU Shared Memory
    (2 * 1024, 1, 0.71),  # Booster BU SRAM
)

_REF_CAP = 32 * 1024


@dataclass(frozen=True)
class SRAMEnergyModel:
    """Normalized (and optionally absolute) per-access SRAM energy.

    ``pj_at_ref`` anchors the absolute scale: ~15 pJ for a 32 KB L1D access
    at 45 nm (CACTI-7 ballpark); only ratios matter for Fig. 10.
    """

    beta: float = math.log(0.71) / math.log(2 / 32)
    kappa: float = (2.64 / (96 / 32) ** (math.log(0.71) / math.log(2 / 32)) - 1.0) / 31.0
    pj_at_ref: float = 15.0

    def normalized(self, capacity_bytes: int, banks: int = 1) -> float:
        """Per-access energy normalized to a 1-bank 32 KB array."""
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if banks < 1:
            raise ValueError("banks must be >= 1")
        cap_term = (capacity_bytes / _REF_CAP) ** self.beta
        return cap_term * (1.0 + self.kappa * (banks - 1))

    def picojoules(self, capacity_bytes: int, banks: int = 1) -> float:
        """Absolute per-access energy in pJ."""
        return self.pj_at_ref * self.normalized(capacity_bytes, banks)

    def validate_table5(self, tol: float = 1e-6) -> bool:
        """The model must reproduce all three published points."""
        return all(
            abs(self.normalized(cap, banks) - target) <= tol * max(target, 1.0)
            for cap, banks, target in TABLE5_POINTS
        )
