"""Energy and area substrate: CACTI-like SRAM model, ASIC budget, accounting."""

from .area import TABLE6, AreaPowerModel, ChipBudget
from .cacti import TABLE5_POINTS, SRAMEnergyModel
from .model import DRAM_PJ_PER_BYTE, SYSTEM_SRAM, EnergyBreakdown, EnergyModel

__all__ = [
    "AreaPowerModel",
    "ChipBudget",
    "DRAM_PJ_PER_BYTE",
    "EnergyBreakdown",
    "EnergyModel",
    "SRAMEnergyModel",
    "SYSTEM_SRAM",
    "TABLE5_POINTS",
    "TABLE6",
]
