"""SRAM/DRAM energy accounting (Fig. 10, using Table V energies).

The paper "show[s] access energy comparisons for SRAM and DRAM separately"
because the two cannot be weighed against each other without a platform
ratio; Booster wins both, so it wins overall regardless.  Counts come from
the same work profiles the timing models use ("access activity from our
simulator"); per-access SRAM energies come from the CACTI-like model
calibrated at the Table V points; DRAM energy is proportional to bytes moved
("transfer activity"), so the redundant column-major format's byte savings
appear directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.layout import RecordLayout
from ..gbdt.workprofile import WorkProfile
from ..sim.calibrate import DEFAULT_COSTS, CostModel
from .cacti import SRAMEnergyModel

__all__ = ["EnergyBreakdown", "EnergyModel", "SYSTEM_SRAM"]

#: Per-system SRAM configuration used for per-access energy (Table V):
#: (capacity bytes, banks).
SYSTEM_SRAM = {
    "ideal-32-core": (32 * 1024, 1),  # L1 D-cache
    "ideal-gpu": (96 * 1024, 32),  # 32-way-banked Shared Memory
    "booster": (2 * 1024, 1),  # BU SRAM
}

#: HBM-class DRAM access energy, pJ per byte (absolute scale cancels in the
#: normalized Fig. 10 comparison).
DRAM_PJ_PER_BYTE = 30.0


@dataclass
class EnergyBreakdown:
    """Joules split by memory type, plus the underlying activity."""

    system: str
    sram_joules: float
    dram_joules: float
    sram_accesses: float
    dram_bytes: float

    @property
    def total_joules(self) -> float:
        return self.sram_joules + self.dram_joules


class EnergyModel:
    """Training-energy accounting for the three Fig. 10 systems."""

    def __init__(
        self,
        costs: CostModel | None = None,
        sram_model: SRAMEnergyModel | None = None,
        dram_pj_per_byte: float = DRAM_PJ_PER_BYTE,
    ) -> None:
        self.costs = costs or DEFAULT_COSTS
        self.sram_model = sram_model or SRAMEnergyModel()
        self.dram_pj_per_byte = dram_pj_per_byte

    # -- activity counts (identical work across systems) ---------------------------

    def sram_accesses(self, profile: WorkProfile) -> float:
        """On-chip accesses per training run.

        Step 1 histogram updates are read-modify-write (2 accesses); step 3
        reads the replicated predicate once per record; step 5 reads one
        table entry per hop and read-modify-writes each record's g/h.
        """
        return float(
            2.0 * profile.binned_record_fields()
            + profile.partition_records()
            + profile.traversal_hops()
            + 2.0 * profile.traversal_records()
        )

    def dram_bytes(self, profile: WorkProfile, column_format: bool) -> float:
        """Off-chip traffic; the column format is Booster's saving."""
        layout = RecordLayout(profile.spec)
        return (
            profile.step1_bytes(layout)
            + profile.step3_bytes(layout, column_format=column_format)
            + profile.step5_bytes(layout, column_format=column_format)
        )

    # -- per-system energy ----------------------------------------------------------

    def training_energy(self, profile: WorkProfile, system: str) -> EnergyBreakdown:
        if system not in SYSTEM_SRAM:
            raise KeyError(f"unknown system {system!r}; known: {sorted(SYSTEM_SRAM)}")
        cap, banks = SYSTEM_SRAM[system]
        accesses = self.sram_accesses(profile)
        sram_pj = accesses * self.sram_model.picojoules(cap, banks)
        column = system == "booster"
        nbytes = self.dram_bytes(profile, column_format=column)
        dram_pj = nbytes * self.dram_pj_per_byte
        return EnergyBreakdown(
            system=system,
            sram_joules=sram_pj * 1e-12,
            dram_joules=dram_pj * 1e-12,
            sram_accesses=accesses,
            dram_bytes=nbytes,
        )

    def compare(self, profile: WorkProfile) -> dict[str, EnergyBreakdown]:
        """All three Fig. 10 systems on identical work."""
        return {s: self.training_energy(profile, s) for s in SYSTEM_SRAM}
