"""Batch inference over a tree ensemble (Sec. II-B / III-D).

In batch inference each record traverses all trees; per tree one predicate is
evaluated per level until a leaf emits a weak prediction, and the trees'
outputs are summed (plus the base margin) into the strong prediction.  The
:class:`EnsemblePredictor` performs this functionally and extracts the
:class:`~repro.gbdt.workprofile.InferenceWork` quantities the Fig. 13 timing
models need -- notably both the *actual* path lengths (what a CPU/GPU pays)
and the max-depth bound (what a Booster BU's table walk pays).
"""

from __future__ import annotations

import numpy as np

from ..datasets.encoding import BinnedDataset
from .losses import Loss
from .tree import Tree
from .workprofile import InferenceWork

__all__ = ["EnsemblePredictor"]


class EnsemblePredictor:
    """Functional batch inference plus inference work extraction."""

    def __init__(self, trees: list[Tree], base_margin: float, loss: Loss) -> None:
        if not trees:
            raise ValueError("ensemble needs at least one tree")
        self.trees = trees
        self.base_margin = base_margin
        self.loss = loss

    def predict_margin(self, codes: np.ndarray) -> np.ndarray:
        out = np.full(codes.shape[0], self.base_margin, dtype=np.float64)
        for t in self.trees:
            out += t.predict(codes)
        return out

    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Predictions in the loss's natural space (probability for binary)."""
        return self.loss.predict_transform(self.predict_margin(codes))

    def inference_work(
        self, data: BinnedDataset, n_trees_target: int | None = None
    ) -> InferenceWork:
        """Measure traversal work for batch inference over ``data``.

        ``n_trees_target`` extrapolates the measured per-tree statistics to
        the paper's 500-tree models: path-length statistics are per-tree
        properties, so totals scale linearly in the tree count.
        """
        codes = data.codes
        n = codes.shape[0]
        sum_len = 0.0
        sq_sum = 0.0
        count = 0
        max_depth = 0
        nodes = 0
        table_bytes = 0.0
        for t in self.trees:
            _, depths = t.predict(codes, return_depth=True)
            sum_len += float(depths.sum())
            sq_sum += float(np.square(depths, dtype=np.float64).sum())
            count += int(depths.size)
            max_depth = max(max_depth, t.max_depth)
            nodes += t.n_nodes
            table_bytes += t.node_table().table_bytes()

        measured_trees = len(self.trees)
        target = n_trees_target or measured_trees
        scale = target / measured_trees
        mean_len = sum_len / count if count else 0.0
        var = max(sq_sum / count - mean_len * mean_len, 0.0) if count else 0.0
        cv = float(np.sqrt(var) / mean_len) if mean_len > 0 else 0.0

        return InferenceWork(
            spec=data.spec,
            n_records=n,
            n_trees=target,
            max_depth=max_depth,
            mean_path_len=mean_len,
            sum_path_len=sum_len * scale,
            path_len_cv=cv,
            mean_tree_nodes=nodes / measured_trees,
            table_bytes_total=table_bytes * scale,
        )
