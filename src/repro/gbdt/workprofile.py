"""Work profiles: the contract between functional training and timing models.

The paper's simulator derives time from *work quantities* -- how many records
each step touches at each tree vertex, how many bytes each layout moves, how
many bins step 2 scans -- because Booster's compute is hidden under memory by
construction (Sec. III-B) and the baselines are idealized to pure parallelism
limits (Sec. IV).  :class:`WorkProfile` captures exactly those quantities from
a real training run; every hardware model consumes it, so all systems are
timed on *identical* work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.layout import RecordLayout
from ..datasets.schema import DatasetSpec

__all__ = ["TreeWork", "WorkProfile", "InferenceWork"]


@dataclass
class TreeWork:
    """Per-node and per-tree work quantities for one boosting round."""

    depth: np.ndarray  # per-node depth
    n_reach: np.ndarray  # records reaching the node
    n_binned: np.ndarray  # records explicitly histogram-binned (0 => subtraction)
    split_evaluated: np.ndarray  # bool: step 2 scanned this node's histogram
    is_split: np.ndarray  # bool: node became interior
    split_field: np.ndarray  # field id used at interior nodes, -1 otherwise
    relevant_fields: np.ndarray  # unique fields used by the tree
    sum_path_len: float  # total interior hops over all records (step 5)
    mean_path_len: float
    max_path_len: int
    loss_after: float

    @property
    def n_nodes(self) -> int:
        return int(self.depth.shape[0])

    @property
    def n_splits(self) -> int:
        return int(self.is_split.sum())

    @property
    def n_leaves(self) -> int:
        return self.n_nodes - self.n_splits

    @property
    def max_depth(self) -> int:
        return int(self.depth.max()) if self.n_nodes else 0

    @property
    def n_relevant_fields(self) -> int:
        return int(self.relevant_fields.shape[0])


@dataclass
class _StackedWork:
    """Per-node arrays of *all* trees concatenated, plus per-tree scalars.

    The whole-run reductions (``binned_records``, ``step1_bytes``, ...) used
    to loop ``sum(... for t in profile.trees)``; stacking once and reducing
    with single NumPy calls removes the per-tree interpreted passes.  Built
    lazily and cached on the profile (tree lists are never mutated after
    construction; ``scaled``/``with_trees_scaled`` return fresh profiles).
    """

    n_binned: np.ndarray  # per-node, all trees
    n_reach: np.ndarray
    depth: np.ndarray
    split_evaluated: np.ndarray
    is_split: np.ndarray
    split_field: np.ndarray
    relevant_fields: np.ndarray  # all trees' relevant fields, concatenated
    sum_path_len: np.ndarray  # per-tree
    max_depth: np.ndarray  # per-tree
    n_nodes: np.ndarray  # per-tree

    @property
    def binned_nonzero(self) -> np.ndarray:
        """Per-node explicit-binning counts, zeros dropped (step-1 gathers)."""
        return self.n_binned[self.n_binned > 0]

    @property
    def split_reach(self) -> np.ndarray:
        """Records reaching each split node, all trees (step-3 partitions)."""
        return self.n_reach[self.is_split]

    @property
    def split_fields(self) -> np.ndarray:
        """Predicate field of each split node, all trees."""
        return self.split_field[self.is_split]


@dataclass
class WorkProfile:
    """All work quantities from one training run.

    ``warp_conflict_factor`` is the expected maximum same-bin multiplicity
    within a 32-record group, averaged over fields -- the quantity that
    serializes GPU atomic histogram updates (Sec. II-D).  ``path_len_cv`` is
    the coefficient of variation of traversal path lengths, the SIMT
    divergence proxy.  ``smaller_child_fraction_mean`` documents split
    lopsidedness (the Allstate/Flight 99/1 behaviour).
    """

    spec: DatasetSpec
    trees: list[TreeWork]
    warp_conflict_factor: float = 1.0
    path_len_cv: float = 0.0
    smaller_child_fraction_mean: float = 0.5
    train_seconds_wall: float = 0.0
    losses: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Per-bin access counts measured at the root of the first tree; drives
    #: the CPU cache model (skewed data concentrates updates in few hot bins).
    root_bin_counts: np.ndarray | None = None
    #: Growth configuration: "vertex" (vertex-by-vertex, the paper's default
    #: assumption) or "level" (level-by-level with per-vertex histograms).
    growth: str = "vertex"

    @property
    def stacked(self) -> _StackedWork:
        """Concatenated per-node arrays (cached; see :class:`_StackedWork`)."""
        cached = getattr(self, "_stacked", None)
        if cached is None:
            trees = self.trees
            empty = np.zeros(0, dtype=np.int64)
            cached = _StackedWork(
                n_binned=np.concatenate([t.n_binned for t in trees]) if trees else empty,
                n_reach=np.concatenate([t.n_reach for t in trees]) if trees else empty,
                depth=np.concatenate([t.depth for t in trees]) if trees else empty,
                split_evaluated=(
                    np.concatenate([t.split_evaluated for t in trees])
                    if trees
                    else empty.astype(bool)
                ),
                is_split=(
                    np.concatenate([t.is_split for t in trees]) if trees else empty.astype(bool)
                ),
                split_field=(
                    np.concatenate([t.split_field for t in trees]) if trees else empty
                ),
                relevant_fields=(
                    np.concatenate([t.relevant_fields for t in trees]) if trees else empty
                ),
                sum_path_len=np.array([t.sum_path_len for t in trees], dtype=np.float64),
                max_depth=np.array([t.max_depth for t in trees], dtype=np.int64),
                n_nodes=np.array([t.n_nodes for t in trees], dtype=np.int64),
            )
            self._stacked = cached
        return cached

    def total_levels(self) -> int:
        """Tree levels processed across the run (level-wise sync points)."""
        return int((self.stacked.max_depth + 1).sum())

    def mean_live_vertices(self) -> float:
        """Average vertices evaluated per level (level-wise histogram
        residency requirement: this many per-vertex histograms live on chip)."""
        levels = self.total_levels()
        if levels == 0:
            return 1.0
        return max(1.0, self.step2_evaluations() / levels)

    def scaled(self, factor: float) -> "WorkProfile":
        """Extrapolate the profile to a larger/smaller record count.

        Per-node record counts, traversal hops, and the record total scale
        linearly; tree *structure* (node counts, depths, fields, bins) and the
        per-record statistics (conflict factor, path lengths) are record-count
        invariant.  Used to report results at the paper's dataset sizes
        (Table III) and for the Fig. 12 10x scaling study, mirroring the
        paper's own record-replication methodology.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        trees = [
            TreeWork(
                depth=t.depth,
                n_reach=np.round(t.n_reach * factor).astype(np.int64),
                n_binned=np.round(t.n_binned * factor).astype(np.int64),
                split_evaluated=t.split_evaluated,
                is_split=t.is_split,
                split_field=t.split_field,
                relevant_fields=t.relevant_fields,
                sum_path_len=t.sum_path_len * factor,
                mean_path_len=t.mean_path_len,
                max_path_len=t.max_path_len,
                loss_after=t.loss_after,
            )
            for t in self.trees
        ]
        return WorkProfile(
            spec=self.spec.with_records(max(1, int(round(self.spec.n_records * factor)))),
            trees=trees,
            warp_conflict_factor=self.warp_conflict_factor,
            path_len_cv=self.path_len_cv,
            smaller_child_fraction_mean=self.smaller_child_fraction_mean,
            train_seconds_wall=self.train_seconds_wall,
            losses=self.losses,
            root_bin_counts=self.root_bin_counts,
            growth=self.growth,
        )

    def with_trees_scaled(self, n_trees_target: int) -> "WorkProfile":
        """Extrapolate to the paper's tree count (500) by replicating the
        measured per-tree work cyclically.  Per-tree work is statistically
        homogeneous after the first few boosting rounds, and every reported
        metric is a ratio of sums over trees."""
        if n_trees_target < 1:
            raise ValueError("n_trees_target must be >= 1")
        if not self.trees:
            return self
        reps = [self.trees[i % len(self.trees)] for i in range(n_trees_target)]
        return WorkProfile(
            spec=self.spec,
            trees=reps,
            warp_conflict_factor=self.warp_conflict_factor,
            path_len_cv=self.path_len_cv,
            smaller_child_fraction_mean=self.smaller_child_fraction_mean,
            train_seconds_wall=self.train_seconds_wall,
            losses=self.losses,
            root_bin_counts=self.root_bin_counts,
            growth=self.growth,
        )

    # -- structural shortcuts -----------------------------------------------------

    @property
    def n_records(self) -> int:
        return self.spec.n_records

    @property
    def n_fields(self) -> int:
        return self.spec.n_fields

    @property
    def n_total_bins(self) -> int:
        return self.spec.n_total_bins

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    # -- step 1: histogram binning ---------------------------------------------

    def binned_records(self) -> float:
        """Total records explicitly binned across all nodes and trees."""
        return float(self.stacked.n_binned.sum())

    def binned_records_reference(self) -> float:
        """Per-tree reference loop for :meth:`binned_records` (tests only)."""
        return float(sum(t.n_binned.sum() for t in self.trees))

    def binned_record_fields(self) -> float:
        """Total (record, field) histogram updates -- the step-1 op count."""
        return self.binned_records() * self.n_fields

    def step1_bytes(self, layout: RecordLayout) -> float:
        """DRAM bytes for step 1: pointer stream + row-major records + g/h."""
        n = self.n_records
        binned = self.stacked.binned_nonzero
        if binned.size == 0:
            return 0.0
        return float(
            np.sum(layout.row_bytes_gather(binned, n))
            + np.sum(layout.stats_bytes_gather(binned, n))
            + np.sum(layout.pointer_bytes(binned))
        )

    def step1_bytes_reference(self, layout: RecordLayout) -> float:
        """Per-tree reference loop for :meth:`step1_bytes` (tests only)."""
        n = self.n_records
        total = 0.0
        for t in self.trees:
            binned = t.n_binned[t.n_binned > 0]
            if binned.size == 0:
                continue
            total += float(np.sum(layout.row_bytes_gather(binned, n)))
            total += float(np.sum(layout.stats_bytes_gather(binned, n)))
            total += float(np.sum(layout.pointer_bytes(binned)))
        return total

    def hot_access_fraction(self, n_hot_bins: int) -> float:
        """Fraction of histogram updates that land in the ``n_hot_bins``
        most-accessed bins (measured at the first tree's root).

        This is the access-weighted cache-hit fraction for a cache holding
        ``n_hot_bins`` bin entries: near 1 for skewed categorical benchmarks
        (Allstate/Flight concentrate updates on head categories), near
        ``n_hot_bins / total_bins`` for uniform numerical ones (IoT, Higgs).
        """
        if n_hot_bins <= 0:
            return 0.0
        counts = self.root_bin_counts
        if counts is None or counts.size == 0:
            return min(1.0, n_hot_bins / max(self.n_total_bins, 1))
        if n_hot_bins >= counts.size:
            return 1.0
        total = float(counts.sum())
        if total <= 0:
            return 1.0
        top = np.partition(counts, counts.size - n_hot_bins)[-n_hot_bins:]
        return float(top.sum() / total)

    # -- step 2: split choice (host) ----------------------------------------------

    def step2_evaluations(self) -> int:
        """Nodes whose histogram was scanned for a split."""
        return int(self.stacked.split_evaluated.sum())

    def step2_evaluations_reference(self) -> int:
        """Per-tree reference loop for :meth:`step2_evaluations` (tests only)."""
        return int(sum(t.split_evaluated.sum() for t in self.trees))

    def step2_bin_scans(self) -> float:
        """Total bins scanned by step 2 (evaluations x total bins)."""
        return float(self.step2_evaluations() * self.n_total_bins)

    # -- step 3: single-predicate evaluation ---------------------------------------

    def partition_records(self) -> float:
        """Total records partitioned at split nodes (step-3 op count)."""
        return float(self.stacked.split_reach.sum())

    def partition_records_reference(self) -> float:
        """Per-tree reference loop for :meth:`partition_records` (tests only)."""
        return float(sum(t.n_reach[t.is_split].sum() for t in self.trees))

    def step3_bytes(self, layout: RecordLayout, column_format: bool) -> float:
        """DRAM bytes for step 3.

        With the redundant column format only the predicate's single-field
        column is gathered; without it the whole row-major record is fetched
        to use one field (the waste the paper's third contribution removes).
        Both variants read and write the record-pointer streams.
        """
        n = self.n_records
        stk = self.stacked
        reach = stk.split_reach
        if reach.size == 0:
            return 0.0
        if column_format:
            total = float(np.sum(layout.column_bytes_gather(stk.split_fields, reach, n)))
        else:
            total = float(np.sum(layout.row_bytes_gather(reach, n)))
        # Read the incoming pointer stream, write true/false streams.
        return total + 2.0 * float(np.sum(layout.pointer_bytes(reach)))

    def step3_bytes_reference(self, layout: RecordLayout, column_format: bool) -> float:
        """Per-tree reference loop for :meth:`step3_bytes` (tests only)."""
        n = self.n_records
        total = 0.0
        for t in self.trees:
            mask = t.is_split
            if not mask.any():
                continue
            reach = t.n_reach[mask]
            if column_format:
                fields = t.split_field[mask]
                total += float(np.sum(layout.column_bytes_gather(fields, reach, n)))
            else:
                total += float(np.sum(layout.row_bytes_gather(reach, n)))
            total += 2.0 * float(np.sum(layout.pointer_bytes(reach)))
        return total

    # -- step 5: one-tree traversal --------------------------------------------------

    def traversal_hops(self) -> float:
        """Total interior-node visits over all records and trees."""
        return float(self.stacked.sum_path_len.sum())

    def traversal_hops_reference(self) -> float:
        """Per-tree reference loop for :meth:`traversal_hops` (tests only)."""
        return float(sum(t.sum_path_len for t in self.trees))

    def traversal_records(self) -> float:
        return float(self.n_records * self.n_trees)

    def mean_relevant_fields(self) -> float:
        if not self.trees:
            return 0.0
        return float(np.mean([t.n_relevant_fields for t in self.trees]))

    def step5_bytes(self, layout: RecordLayout, column_format: bool) -> float:
        """DRAM bytes for step 5: record fetch + g/h read/update + labels.

        With the column format only the tree's relevant-field columns stream
        in; otherwise full row-major records do.
        """
        n = self.n_records
        n_trees = self.n_trees
        if n_trees == 0:
            return 0.0
        if column_format:
            # All trees' relevant-field column streams in one exact
            # integer-block computation (column bytes are per-field, so
            # concatenating across trees sums the same terms).
            total = layout.column_bytes_sequential(self.stacked.relevant_fields, n)
        else:
            total = n_trees * layout.row_bytes_sequential(n)
        total += n_trees * (2.0 * layout.stats_bytes_sequential(n))  # g/h read + write
        total += n_trees * float(layout.pointer_bytes(n))  # ground-truth labels
        return total

    def step5_bytes_reference(self, layout: RecordLayout, column_format: bool) -> float:
        """Per-tree reference loop for :meth:`step5_bytes` (tests only)."""
        n = self.n_records
        total = 0.0
        for t in self.trees:
            if column_format:
                total += layout.column_bytes_sequential(t.relevant_fields.tolist(), n)
            else:
                total += layout.row_bytes_sequential(n)
            total += 2.0 * layout.stats_bytes_sequential(n)  # g/h read + write
            total += float(layout.pointer_bytes(n))  # ground-truth labels
        return total

    # -- whole-run summaries -----------------------------------------------------------

    def mean_leaf_depth(self) -> float:
        stk = self.stacked
        if stk.depth.size == 0:
            return 0.0
        return float(stk.depth[~stk.is_split].mean())

    def mean_max_depth(self) -> float:
        if not self.trees:
            return 0.0
        return float(np.mean([t.max_depth for t in self.trees]))

    def mean_path_len(self) -> float:
        if not self.trees:
            return 0.0
        return float(np.mean([t.mean_path_len for t in self.trees]))

    def summary(self) -> dict:
        """Human-readable run summary used by reports and EXPERIMENTS.md."""
        return {
            "dataset": self.spec.name,
            "records": self.n_records,
            "fields": self.n_fields,
            "total_bins": self.n_total_bins,
            "trees": self.n_trees,
            "mean_leaf_depth": round(self.mean_leaf_depth(), 3),
            "mean_path_len": round(self.mean_path_len(), 3),
            "binned_records": self.binned_records(),
            "partition_records": self.partition_records(),
            "traversal_hops": self.traversal_hops(),
            "step2_evaluations": self.step2_evaluations(),
            "warp_conflict_factor": round(self.warp_conflict_factor, 3),
            "path_len_cv": round(self.path_len_cv, 4),
            "smaller_child_fraction": round(self.smaller_child_fraction_mean, 4),
        }


@dataclass
class InferenceWork:
    """Work quantities for batch inference (Sec. III-D / Fig. 13).

    Booster's per-record cost in a BU is bounded by the *maximum* tree depth
    (the table walk always provisions max-depth lookups); CPU/GPU cost follows
    the actual path lengths.  Both are captured here.
    """

    spec: DatasetSpec
    n_records: int
    n_trees: int
    max_depth: int
    mean_path_len: float
    sum_path_len: float
    path_len_cv: float
    mean_tree_nodes: float
    table_bytes_total: float

    def scaled(self, factor: float) -> "InferenceWork":
        """Extrapolate to a larger/smaller record count, returning a copy.

        Totals (record count, summed path length) scale linearly; per-record
        statistics (mean/max path lengths, divergence) and per-ensemble
        quantities (tree count, table bytes) are record-count invariant.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        n = max(1, int(round(self.n_records * factor)))
        return InferenceWork(
            spec=self.spec.with_records(n),
            n_records=n,
            n_trees=self.n_trees,
            max_depth=self.max_depth,
            mean_path_len=self.mean_path_len,
            sum_path_len=self.sum_path_len * factor,
            path_len_cv=self.path_len_cv,
            mean_tree_nodes=self.mean_tree_nodes,
            table_bytes_total=self.table_bytes_total,
        )

    @property
    def total_hops_actual(self) -> float:
        """CPU/GPU traversal work: actual interior hops."""
        return self.sum_path_len

    @property
    def total_hops_padded(self) -> float:
        """Booster traversal work: max-depth-padded lookups per record-tree."""
        return float(self.n_records) * self.n_trees * self.max_depth
