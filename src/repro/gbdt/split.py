"""Best-split search over histogram bins (step 2 of Table I).

This is the step the paper *offloads to the host* because it is short (work
proportional to the number of bins, not records) and the gain formula is
"complex (i.e., hardware-unfriendly) and may vary across implementations".
We implement the XGBoost objective:

    gain = 0.5 * [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma

For numerical fields candidates are the bin boundaries scanned left-to-right
with cumulative sums (exactly Fig. 3 of the paper); records with a missing
field are tried on both sides and the better direction kept.  For categorical
fields (one-hot semantics) candidates are one-vs-rest on each category.

The whole search is vectorized over the flattened bin space: segmented
cumulative sums give every candidate's left aggregate in O(total bins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.schema import DatasetSpec, FieldKind
from .histogram import Histogram

__all__ = ["SplitParams", "SplitDecision", "SplitSearcher", "segment_cumsum", "leaf_weight"]

#: Row-chunking granularity of :meth:`SplitSearcher.best_split_many`, in
#: histogram elements per chunk.  The gain math allocates a dozen-plus
#: (rows, n_bins) temporaries; letting rows grow with the level width (up to
#: 2^depth) pushes the working set out of cache and was measured up to ~4x
#: slower per element.  A few rows per chunk already amortizes the per-call
#: NumPy overhead while keeping the temporaries cache-resident.
_CHUNK_ELEMS = 32768


@dataclass(frozen=True)
class SplitParams:
    """Regularization and stopping knobs (XGBoost naming and defaults).

    ``min_child_weight=1`` (the XGBoost default) is what produces the paper's
    IoT behaviour: once a logistic leaf is well fit its records' hessians
    ``p(1-p)`` collapse toward zero, further splits violate the constraint,
    and trees come out shallow.
    """

    lambda_: float = 1.0
    gamma: float = 1e-3
    min_child_weight: float = 1.0
    min_child_records: int = 2

    def __post_init__(self) -> None:
        if self.lambda_ < 0:
            raise ValueError("lambda_ must be >= 0")
        if self.min_child_records < 1:
            raise ValueError("min_child_records must be >= 1")


@dataclass(frozen=True)
class SplitDecision:
    """Chosen split for one node (or no-split when ``gain <= 0``)."""

    field: int
    #: For numerical fields: the last *local* value-bin index that goes left
    #: (predicate "bin <= threshold_bin").  For categorical fields: the
    #: category whose one-hot feature goes left (predicate "category == bin").
    threshold_bin: int
    is_categorical: bool
    missing_left: bool
    gain: float
    grad_left: float
    hess_left: float
    count_left: float
    grad_right: float
    hess_right: float
    count_right: float

    @property
    def valid(self) -> bool:
        return self.gain > 0.0


def leaf_weight(grad: float, hess: float, lambda_: float) -> float:
    """Optimal leaf weight  w* = -G / (H + lambda)."""
    return -grad / (hess + lambda_)


def segment_cumsum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Cumulative sum restarting at each segment boundary.

    ``offsets`` is the (n_segments + 1) exclusive prefix of segment sizes;
    element ``i`` of the result is the sum of its segment's elements up to and
    including ``i``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("segment_cumsum expects a 1-D array")
    c = np.cumsum(values)
    starts = offsets[:-1]
    sizes = np.diff(offsets)
    if sizes.sum() != values.shape[0]:
        raise ValueError("offsets do not cover the array")
    base_vals = c[starts] - values[starts]
    base = np.repeat(base_vals, sizes)
    return c - base


class SplitSearcher:
    """Vectorized best-split search for a dataset's bin space."""

    def __init__(self, spec: DatasetSpec, offsets: np.ndarray, params: SplitParams) -> None:
        self.spec = spec
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.params = params
        n_bins = int(self.offsets[-1])
        sizes = np.diff(self.offsets)
        self._field_of_bin = np.repeat(np.arange(spec.n_fields, dtype=np.int64), sizes)
        self._local_bin = np.arange(n_bins, dtype=np.int64) - np.repeat(self.offsets[:-1], sizes)
        is_cat = np.array([f.kind is FieldKind.CATEGORICAL for f in spec.fields])
        self._bin_is_cat = is_cat[self._field_of_bin]
        value_bins = np.array([f.n_value_bins for f in spec.fields], dtype=np.int64)
        bins_value_count = value_bins[self._field_of_bin]
        self._is_missing_bin = self._local_bin == bins_value_count
        # Numerical candidates: local value bin v with v <= n_value_bins - 2
        # (a split after the last value bin leaves the right side empty).
        self._num_candidate = (
            ~self._bin_is_cat & ~self._is_missing_bin & (self._local_bin <= bins_value_count - 2)
        )
        # Categorical candidates: any value bin (one-vs-rest).
        self._cat_candidate = self._bin_is_cat & ~self._is_missing_bin
        self._n_bins = n_bins
        # Variant families with no candidate bins at all (e.g. the categorical
        # variants of a pure-numerical dataset) are skipped by the batched
        # search: their gain bands would be uniformly -inf and can never win.
        self._has_num = bool(self._num_candidate.any())
        self._has_cat = bool(self._cat_candidate.any())

    # -- gain math --------------------------------------------------------------

    def _gain(
        self,
        gl: np.ndarray,
        hl: np.ndarray,
        cl: np.ndarray,
        g_tot: float,
        h_tot: float,
        c_tot: float,
        candidate: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vector gain for candidate left aggregates; invalid -> -inf.

        ``candidate``, when given, folds a non-candidate mask into the
        invalid positions -- identical to masking the result afterwards with
        ``np.where(candidate, gain, -inf)`` but saves a full array pass.
        """
        p = self.params
        gr = g_tot - gl
        hr = h_tot - hl
        cr = c_tot - cl
        parent_term = (g_tot * g_tot) / (h_tot + p.lambda_)
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = 0.5 * (
                (gl * gl) / (hl + p.lambda_) + (gr * gr) / (hr + p.lambda_) - parent_term
            ) - p.gamma
        invalid = (
            (hl < p.min_child_weight)
            | (hr < p.min_child_weight)
            | (cl < p.min_child_records)
            | (cr < p.min_child_records)
        )
        if candidate is not None:
            invalid = invalid | ~candidate
        gain = np.where(invalid, -np.inf, gain)
        return gain

    # -- search -----------------------------------------------------------------

    def best_split(
        self, hist: Histogram, g_tot: float, h_tot: float, c_tot: float
    ) -> SplitDecision:
        """Scan every bin of every field; return the best candidate.

        ``g_tot``/``h_tot``/``c_tot`` are the node's record totals.  (They
        cannot be recovered by summing the flattened histogram, which counts
        every record once *per field*.)  Work is O(total bins) regardless of
        how many records reached the node -- the property that justifies
        offloading step 2 to the host.
        """
        if hist.n_bins != self._n_bins:
            raise ValueError("histogram does not match this dataset's bin space")

        cum_g = segment_cumsum(hist.grad, self.offsets)
        cum_h = segment_cumsum(hist.hess, self.offsets)
        cum_c = segment_cumsum(hist.count, self.offsets)

        # Per-field missing-bin aggregates broadcast to that field's bins.
        miss_idx = self.offsets[1:] - 1
        sizes = np.diff(self.offsets)
        g_miss = np.repeat(hist.grad[miss_idx], sizes)
        h_miss = np.repeat(hist.hess[miss_idx], sizes)
        c_miss = np.repeat(hist.count[miss_idx], sizes)

        neg = np.full(self._n_bins, -np.inf)

        # Numerical, missing goes right: left = value bins <= v.
        gl, hl, cl = cum_g, cum_h, cum_c
        gain_num_mr = np.where(
            self._num_candidate, self._gain(gl, hl, cl, g_tot, h_tot, c_tot), neg
        )
        # Numerical, missing goes left.
        gain_num_ml = np.where(
            self._num_candidate,
            self._gain(gl + g_miss, hl + h_miss, cl + c_miss, g_tot, h_tot, c_tot),
            neg,
        )
        # Categorical one-vs-rest, missing right: left = {category}.
        glc, hlc, clc = hist.grad, hist.hess, hist.count
        gain_cat_mr = np.where(
            self._cat_candidate, self._gain(glc, hlc, clc, g_tot, h_tot, c_tot), neg
        )
        # Categorical one-vs-rest, missing left.
        gain_cat_ml = np.where(
            self._cat_candidate,
            self._gain(glc + g_miss, hlc + h_miss, clc + c_miss, g_tot, h_tot, c_tot),
            neg,
        )

        stacked = np.stack([gain_num_mr, gain_num_ml, gain_cat_mr, gain_cat_ml])
        flat_best = int(np.argmax(stacked))
        variant, bin_idx = divmod(flat_best, self._n_bins)
        best_gain = float(stacked.ravel()[flat_best])

        if not np.isfinite(best_gain) or best_gain <= 0.0:
            return SplitDecision(
                field=-1,
                threshold_bin=-1,
                is_categorical=False,
                missing_left=False,
                gain=-np.inf if not np.isfinite(best_gain) else best_gain,
                grad_left=0.0,
                hess_left=0.0,
                count_left=0.0,
                grad_right=g_tot,
                hess_right=h_tot,
                count_right=c_tot,
            )

        missing_left = variant in (1, 3)
        is_cat = variant >= 2
        if is_cat:
            gl_v = float(hist.grad[bin_idx])
            hl_v = float(hist.hess[bin_idx])
            cl_v = float(hist.count[bin_idx])
        else:
            gl_v = float(cum_g[bin_idx])
            hl_v = float(cum_h[bin_idx])
            cl_v = float(cum_c[bin_idx])
        if missing_left:
            gl_v += float(g_miss[bin_idx])
            hl_v += float(h_miss[bin_idx])
            cl_v += float(c_miss[bin_idx])

        field = int(self._field_of_bin[bin_idx])
        return SplitDecision(
            field=field,
            threshold_bin=int(self._local_bin[bin_idx]),
            is_categorical=is_cat,
            missing_left=missing_left,
            gain=best_gain,
            grad_left=gl_v,
            hess_left=hl_v,
            count_left=cl_v,
            grad_right=g_tot - gl_v,
            hess_right=h_tot - hl_v,
            count_right=c_tot - cl_v,
        )

    def best_split_many(
        self,
        count: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        g_tot: np.ndarray,
        h_tot: np.ndarray,
        c_tot: np.ndarray,
    ) -> list[SplitDecision]:
        """:meth:`best_split` batched over a whole level of vertices.

        ``count``/``grad``/``hess`` are ``(k, n_bins)`` stacked histograms
        (row ``j`` = vertex ``j``) and the totals are length-``k`` arrays.
        All candidate gains for all vertices are evaluated in one pass;
        only the O(k) winner extraction stays in Python.

        Decision ``j`` is bit-identical to
        ``best_split(Histogram(count[j], grad[j], hess[j]), ...)``:
        ``np.cumsum(axis=1)`` accumulates each row sequentially exactly like
        the 1-D segment cumsum, the gain math is elementwise, and the per-row
        argmax scans the same flattened ``(variant, bin)`` order, preserving
        tie-breaking (property-tested).
        """
        count = np.atleast_2d(np.asarray(count, dtype=np.float64))
        grad = np.atleast_2d(np.asarray(grad, dtype=np.float64))
        hess = np.atleast_2d(np.asarray(hess, dtype=np.float64))
        k = count.shape[0]
        if count.shape[1] != self._n_bins:
            raise ValueError("histogram matrix does not match this dataset's bin space")
        if not (count.shape == grad.shape == hess.shape):
            raise ValueError("histogram matrices must share a shape")
        g_tot = np.asarray(g_tot, dtype=np.float64).reshape(k)
        h_tot = np.asarray(h_tot, dtype=np.float64).reshape(k)
        c_tot = np.asarray(c_tot, dtype=np.float64).reshape(k)
        if k == 0:
            return []

        # Chunk the rows so the gain temporaries stay cache-resident (see
        # _CHUNK_ELEMS); chunking never changes any per-row result.
        chunk = max(1, _CHUNK_ELEMS // self._n_bins)
        if k > chunk:
            decisions: list[SplitDecision] = []
            for lo in range(0, k, chunk):
                hi = min(lo + chunk, k)
                decisions.extend(
                    self.best_split_many(
                        count[lo:hi],
                        grad[lo:hi],
                        hess[lo:hi],
                        g_tot[lo:hi],
                        h_tot[lo:hi],
                        c_tot[lo:hi],
                    )
                )
            return decisions

        starts = self.offsets[:-1]
        sizes = np.diff(self.offsets)

        def seg_cumsum_rows(values: np.ndarray) -> np.ndarray:
            c = np.cumsum(values, axis=1)
            base = np.repeat(c[:, starts] - values[:, starts], sizes, axis=1)
            return c - base

        cum_g = cum_h = cum_c = None
        if self._has_num:
            cum_g = seg_cumsum_rows(grad)
            cum_h = seg_cumsum_rows(hess)
            cum_c = seg_cumsum_rows(count)

        miss_idx = self.offsets[1:] - 1
        g_miss = np.repeat(grad[:, miss_idx], sizes, axis=1)
        h_miss = np.repeat(hess[:, miss_idx], sizes, axis=1)
        c_miss = np.repeat(count[:, miss_idx], sizes, axis=1)

        gt, ht, ct = g_tot[:, None], h_tot[:, None], c_tot[:, None]
        rows_idx = np.arange(k)

        # Per-band winners in best_split's variant order, minus the
        # candidate-free families (uniformly -inf, can never win -- dropping
        # a band never moves the winner, and an all--inf level still falls
        # into the same no-split branch).  The two-stage argmax -- first bin
        # within each band, then band -- scans the same (variant, bin)
        # C order best_split's argmax over np.stack does, so ties (and NaN
        # propagation) break identically, without materializing the stacked
        # and re-flattened copies of all the gain data.
        variant_ids: list[int] = []
        band_args: list[np.ndarray] = []
        band_maxes: list[np.ndarray] = []

        def add_band(
            gl: np.ndarray,
            hl: np.ndarray,
            cl: np.ndarray,
            candidate: np.ndarray,
            variant: int,
        ) -> None:
            band = self._gain(gl, hl, cl, gt, ht, ct, candidate=candidate)
            arg = np.argmax(band, axis=1)
            band_args.append(arg)
            band_maxes.append(band[rows_idx, arg])
            variant_ids.append(variant)

        if self._has_num:
            add_band(cum_g, cum_h, cum_c, self._num_candidate, 0)
            add_band(cum_g + g_miss, cum_h + h_miss, cum_c + c_miss, self._num_candidate, 1)
        if self._has_cat:
            add_band(grad, hess, count, self._cat_candidate, 2)
            add_band(grad + g_miss, hess + h_miss, count + c_miss, self._cat_candidate, 3)

        if band_maxes:
            max_stack = np.stack(band_maxes)  # (bands, k)
            band_best = np.argmax(max_stack, axis=0)
            best_gains = max_stack[band_best, rows_idx]
            variants = np.asarray(variant_ids, dtype=np.int64)[band_best]
            bin_idxs = np.stack(band_args)[band_best, rows_idx]
        else:  # no candidate bins anywhere: every vertex is a no-split
            best_gains = np.full(k, -np.inf)
            variants = np.zeros(k, dtype=np.int64)
            bin_idxs = np.zeros(k, dtype=np.int64)

        decisions: list[SplitDecision] = []
        for j in range(k):
            best_gain = float(best_gains[j])
            if not np.isfinite(best_gain) or best_gain <= 0.0:
                decisions.append(
                    SplitDecision(
                        field=-1,
                        threshold_bin=-1,
                        is_categorical=False,
                        missing_left=False,
                        gain=-np.inf if not np.isfinite(best_gain) else best_gain,
                        grad_left=0.0,
                        hess_left=0.0,
                        count_left=0.0,
                        grad_right=float(g_tot[j]),
                        hess_right=float(h_tot[j]),
                        count_right=float(c_tot[j]),
                    )
                )
                continue
            variant = int(variants[j])
            bin_idx = int(bin_idxs[j])
            missing_left = variant in (1, 3)
            is_cat = variant >= 2
            if is_cat:
                gl_v = float(grad[j, bin_idx])
                hl_v = float(hess[j, bin_idx])
                cl_v = float(count[j, bin_idx])
            else:
                gl_v = float(cum_g[j, bin_idx])
                hl_v = float(cum_h[j, bin_idx])
                cl_v = float(cum_c[j, bin_idx])
            if missing_left:
                gl_v += float(g_miss[j, bin_idx])
                hl_v += float(h_miss[j, bin_idx])
                cl_v += float(c_miss[j, bin_idx])
            decisions.append(
                SplitDecision(
                    field=int(self._field_of_bin[bin_idx]),
                    threshold_bin=int(self._local_bin[bin_idx]),
                    is_categorical=is_cat,
                    missing_left=missing_left,
                    gain=best_gain,
                    grad_left=gl_v,
                    hess_left=hl_v,
                    count_left=cl_v,
                    grad_right=float(g_tot[j]) - gl_v,
                    hess_right=float(h_tot[j]) - hl_v,
                    count_right=float(c_tot[j]) - cl_v,
                )
            )
        return decisions

    @property
    def n_bins(self) -> int:
        return self._n_bins
