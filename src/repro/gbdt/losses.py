"""Loss functions and gradient statistics for gradient boosting.

GB is agnostic about the loss as long as it is differentiable and convex
(Sec. II-A); training only consumes the per-record first- and second-order
gradient statistics ``g_i = dl/dF`` and ``h_i = d^2l/dF^2`` evaluated at the
current ensemble margin ``F``.  We implement the two losses the benchmarks
need: squared error (regression / pointwise ranking) and logistic (binary
classification).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..datasets.schema import TaskKind

__all__ = ["Loss", "SquaredErrorLoss", "LogisticLoss", "loss_for_task"]

#: Floor on the hessian to keep leaf weights finite on pure nodes.
_H_EPS = 1e-16


class Loss(ABC):
    """Interface: margin -> (loss value, g, h)."""

    name: str = "loss"

    @abstractmethod
    def base_margin(self, y: np.ndarray) -> float:
        """Initial constant margin F0 minimizing the loss over ``y``."""

    @abstractmethod
    def value(self, margin: np.ndarray, y: np.ndarray) -> float:
        """Mean loss at the given margins."""

    @abstractmethod
    def gradients(self, margin: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-record (g, h) at the given margins; float64 arrays."""

    def predict_transform(self, margin: np.ndarray) -> np.ndarray:
        """Map margins to the natural prediction space (identity by default)."""
        return margin


class SquaredErrorLoss(Loss):
    """l(F, y) = 0.5 (F - y)^2;  g = F - y,  h = 1."""

    name = "squared_error"

    def base_margin(self, y: np.ndarray) -> float:
        return float(np.mean(y)) if y.size else 0.0

    def value(self, margin: np.ndarray, y: np.ndarray) -> float:
        d = margin - y
        return float(0.5 * np.mean(d * d)) if y.size else 0.0

    def gradients(self, margin: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = (margin - y).astype(np.float64)
        h = np.ones_like(g)
        return g, h


class LogisticLoss(Loss):
    """Binary cross-entropy on the sigmoid of the margin.

    g = p - y,  h = p (1 - p)  with  p = sigmoid(F).
    """

    name = "logistic"

    def base_margin(self, y: np.ndarray) -> float:
        if y.size == 0:
            return 0.0
        p = float(np.clip(np.mean(y), 1e-6, 1.0 - 1e-6))
        return float(np.log(p / (1.0 - p)))

    @staticmethod
    def _sigmoid(margin: np.ndarray) -> np.ndarray:
        # Numerically stable: exp of a non-positive argument only.
        out = np.empty_like(margin, dtype=np.float64)
        pos = margin >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-margin[pos]))
        e = np.exp(margin[~pos])
        out[~pos] = e / (1.0 + e)
        return out

    def value(self, margin: np.ndarray, y: np.ndarray) -> float:
        if y.size == 0:
            return 0.0
        # log(1 + exp(F)) - y F, computed stably via logaddexp.
        return float(np.mean(np.logaddexp(0.0, margin) - y * margin))

    def gradients(self, margin: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = self._sigmoid(np.asarray(margin, dtype=np.float64))
        g = p - y
        h = np.maximum(p * (1.0 - p), _H_EPS)
        return g, h

    def predict_transform(self, margin: np.ndarray) -> np.ndarray:
        return self._sigmoid(np.asarray(margin, dtype=np.float64))


def loss_for_task(task: TaskKind) -> Loss:
    """Loss used for each benchmark task (ranking trained pointwise)."""
    if task is TaskKind.BINARY:
        return LogisticLoss()
    return SquaredErrorLoss()
