"""From-scratch histogram GBDT substrate (the paper's Sec. II algorithm).

Public API::

    from repro.gbdt import train, TrainParams
    result = train(load("higgs"), TrainParams(n_trees=30))
    result.profile          # WorkProfile consumed by the timing models
    result.predict(codes)   # functional predictions
"""

from .histogram import Histogram, HistogramBuilder
from .levelwise import LevelWiseTrainer, train_level_wise
from .instrument import max_run_lengths, path_length_cv, warp_conflict_factor
from .losses import LogisticLoss, Loss, SquaredErrorLoss, loss_for_task
from .predict import EnsemblePredictor
from .split import SplitDecision, SplitParams, SplitSearcher, leaf_weight, segment_cumsum
from .trainer import GBDTTrainer, TrainParams, TrainResult, train
from .tree import NodeTable, Tree
from .workprofile import InferenceWork, TreeWork, WorkProfile

__all__ = [
    "EnsemblePredictor",
    "GBDTTrainer",
    "Histogram",
    "HistogramBuilder",
    "InferenceWork",
    "LevelWiseTrainer",
    "LogisticLoss",
    "Loss",
    "NodeTable",
    "SplitDecision",
    "SplitParams",
    "SplitSearcher",
    "SquaredErrorLoss",
    "TrainParams",
    "TrainResult",
    "Tree",
    "TreeWork",
    "WorkProfile",
    "leaf_weight",
    "loss_for_task",
    "max_run_lengths",
    "path_length_cv",
    "segment_cumsum",
    "train",
    "train_level_wise",
    "warp_conflict_factor",
]
