"""Level-by-level tree growth (the paper's alternative configuration).

Sec. II-A: "GB implementations can be configured to proceed vertex by vertex
or level by level (i.e., explore together all the valid vertices at a level
...). The [level-wise configuration] streams in all the input records and
histogram-bins the relevant records at each vertex.  Because multiple
vertices are explored together, this configuration maintains a separate
histogram per vertex."

Differences from the vertex-by-vertex trainer that matter to hardware:

* step 1 makes **one pass over all active records per level** (sequential
  streaming, no per-vertex pointer gathers), updating per-vertex histograms
  selected by each record's current node -- but the smaller-child subtraction
  still halves the explicit work (only the smaller child of each split is
  binned; the sibling is derived);
* the on-chip capacity requirement multiplies by the number of live vertices
  at the level (up to 2^depth histograms), which is exactly the trade-off
  Booster's SRAM budget bounds (see
  :meth:`~repro.core.engine.BoosterEngine.bin_mapping` capacity checks);
* step 2 evaluates all the level's vertices in one host round trip, so the
  per-vertex offload overhead amortizes.

The resulting model is numerically identical to the vertex-by-vertex trainer
(same splits, same trees) -- property-tested -- while the work profile's
*shape* differs, which the ``growth`` ablation benchmark exercises.

The software implementation mirrors the hardware story.  The default
(vectorized) path keeps a whole level's histograms as three ``(live
vertices, n_bins)`` matrices and runs every step over them at once:

* step 2 is **one batched search** for all of the level's vertices
  (:meth:`~repro.gbdt.split.SplitSearcher.best_split_many` -- the "one host
  round trip" of the paper, literally);
* step 3 partitions the records of all splitting vertices in one array pass;
* step 1 bins all explicit (smaller) children through one grouped
  ``vertex x global-bin`` bincount
  (:meth:`~repro.gbdt.histogram.HistogramBuilder.build_grouped_arrays`), and
  every sibling histogram is derived with a single whole-matrix subtraction
  instead of per-child ``Histogram.subtract`` calls.

The per-vertex loop survives as the scalar reference path
(``vectorized=False``): per-vertex ``np.nonzero(vertex_of_record == vid)``
scans, per-vertex ``build`` and ``best_split`` calls.  Both paths produce
bit-identical models and work profiles, which the equivalence tests assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..datasets.encoding import BinnedDataset
from .histogram import Histogram, HistogramBuilder
from .instrument import warp_conflict_factor
from .losses import Loss, loss_for_task
from .split import SplitDecision, SplitSearcher, leaf_weight
from .trainer import TrainParams, TrainResult
from .tree import Tree
from .workprofile import TreeWork, WorkProfile

__all__ = ["LevelWiseTrainer", "train_level_wise"]


@dataclass
class _LevelNode:
    """One live vertex during level-wise growth (reference path)."""

    tree_node: int  # id in the Tree being built
    g_tot: float
    h_tot: float
    c_tot: float
    hist: Histogram | None = None
    binned_here: int = 0  # records explicitly binned for this vertex
    n_reach: int = 0


class LevelWiseTrainer:
    """Level-by-level GBDT trainer with the same split semantics.

    ``vectorized`` selects the whole-level matrix pass (default) or the
    per-vertex scalar reference loop; both are numerically identical, and
    the reference is the oracle the equivalence tests run against.
    """

    def __init__(
        self,
        data: BinnedDataset,
        params: TrainParams | None = None,
        *,
        vectorized: bool = True,
    ) -> None:
        self.data = data
        self.params = params or TrainParams()
        self.vectorized = vectorized
        self.builder = HistogramBuilder(data)
        self.searcher = SplitSearcher(data.spec, self.builder.offsets, self.params.split)
        self.loss: Loss = loss_for_task(data.spec.task)

    def fit(self) -> TrainResult:
        t_start = time.perf_counter()
        data = self.data
        params = self.params
        n = data.n_records
        y = data.y
        margin = np.full(n, self.loss.base_margin(y), dtype=np.float64)
        base_margin = float(margin[0]) if n else 0.0

        trees: list[Tree] = []
        works: list[TreeWork] = []
        losses = np.empty(params.n_trees, dtype=np.float64)
        root_bin_counts: np.ndarray | None = None
        child_fracs: list[float] = []
        path_sum = path_sq = 0.0
        path_count = 0

        for round_ix in range(params.n_trees):
            g, h = self.loss.gradients(margin, y)
            tree, work, fracs, root_counts = self._grow_tree(g, h)
            trees.append(tree)
            if root_bin_counts is None:
                root_bin_counts = root_counts

            pred, depths = tree.predict(data.codes, return_depth=True)
            margin += pred
            losses[round_ix] = self.loss.value(margin, y)
            work.sum_path_len = float(depths.sum())
            work.mean_path_len = float(depths.mean()) if n else 0.0
            work.max_path_len = int(depths.max()) if n else 0
            work.loss_after = float(losses[round_ix])
            works.append(work)
            child_fracs.extend(fracs)
            path_sum += float(depths.sum())
            path_sq += float(np.square(depths, dtype=np.float64).sum())
            path_count += int(depths.size)

        cv = 0.0
        if path_count and path_sum > 0:
            mean = path_sum / path_count
            var = max(path_sq / path_count - mean * mean, 0.0)
            cv = float(np.sqrt(var) / mean)

        profile = WorkProfile(
            spec=data.spec,
            trees=works,
            warp_conflict_factor=warp_conflict_factor(data.codes, sample=params.conflict_sample),
            path_len_cv=cv,
            smaller_child_fraction_mean=float(np.mean(child_fracs)) if child_fracs else 0.5,
            train_seconds_wall=time.perf_counter() - t_start,
            losses=losses.copy(),
            root_bin_counts=root_bin_counts,
            growth="level",
        )
        return TrainResult(
            trees=trees,
            profile=profile,
            losses=losses,
            base_margin=base_margin,
            loss=self.loss,
            params=params,
        )

    # -- one tree ------------------------------------------------------------------

    def _grow_tree(self, g: np.ndarray, h: np.ndarray) -> "tuple[Tree, TreeWork, list[float], np.ndarray | None]":
        if self.vectorized:
            return self._grow_tree_vectorized(g, h)
        return self._grow_tree_reference(g, h)

    def _grow_tree_vectorized(
        self, g: np.ndarray, h: np.ndarray
    ) -> "tuple[Tree, TreeWork, list[float], np.ndarray | None]":
        """Whole-level matrix pass: the live level is three ``(L, n_bins)``
        histogram matrices plus per-vertex total arrays.

        Per level: one batched step-2 search over the eligible rows, one
        vectorized record partition for all splitting vertices, one grouped
        bincount for all smaller children, and one matrix subtraction
        (``parent rows - small-child matrix``) for all siblings.  Only O(live
        vertices) bookkeeping (tree node construction, work counters) stays
        in Python.  Bit-identical to :meth:`_grow_tree_reference`: vertex
        order, child vid numbering (2i / 2i+1), record order inside each
        child, and every float accumulation order are preserved.
        """
        data = self.data
        params = self.params
        n = data.n_records
        tree = Tree(data.spec)
        min_children = 2 * params.split.min_child_records

        depths: list[int] = []
        reaches: list[int] = []
        binneds: list[int] = []
        evals: list[bool] = []
        issplits: list[bool] = []
        sfields: list[int] = []
        child_fracs: list[float] = []

        root_hist = self.builder.build(np.arange(n, dtype=np.int64), g, h)
        root_counts = root_hist.count.copy()
        # Level state, indexed by level-local vertex id 0..L-1 (contiguous by
        # construction: the next level's vids are 2i/2i+1 per split i).
        hist_c = root_hist.count[None, :]
        hist_g = root_hist.grad[None, :]
        hist_h = root_hist.hess[None, :]
        has_hist = np.ones(1, dtype=bool)
        g_tot = np.array([float(g.sum())])
        h_tot = np.array([float(h.sum())])
        c_tot = np.array([float(n)])
        n_reach = np.array([n], dtype=np.int64)
        binned = np.array([n], dtype=np.int64)
        vertex_of_record = np.zeros(n, dtype=np.int64)
        # Tree node ids of the level ABOVE's splitting vertices, in split
        # order: child vid j's parent is split j // 2.  Threaded as a local
        # (never trainer state), like the reference path's maps.
        prev_split_nodes: list[int] = []

        for depth in range(params.max_depth + 1):
            n_live = int(g_tot.shape[0])
            if n_live == 0:
                break

            # Step 2 for the whole level in one batched search.
            if depth < params.max_depth:
                can_split = (n_reach >= min_children) & has_hist
            else:
                can_split = np.zeros(n_live, dtype=bool)
            elig = np.flatnonzero(can_split)
            decisions: list[SplitDecision | None] = [None] * n_live
            if elig.size == n_live:
                # All rows eligible: skip the (k, n_bins) fancy-index copies.
                decisions = list(
                    self.searcher.best_split_many(hist_c, hist_g, hist_h, g_tot, h_tot, c_tot)
                )
            elif elig.size:
                batch = self.searcher.best_split_many(
                    hist_c[elig],
                    hist_g[elig],
                    hist_h[elig],
                    g_tot[elig],
                    h_tot[elig],
                    c_tot[elig],
                )
                for j, d in zip(elig, batch):
                    decisions[int(j)] = d

            tree_nodes = np.empty(n_live, dtype=np.int64)
            split_vids: list[int] = []
            split_decisions: list[SplitDecision] = []
            for vid in range(n_live):
                d = decisions[vid]
                is_split = d is not None and d.valid
                depths.append(depth)
                reaches.append(int(n_reach[vid]))
                binneds.append(int(binned[vid]))
                evals.append(bool(can_split[vid]))
                if not is_split:
                    issplits.append(False)
                    sfields.append(-1)
                    w = params.learning_rate * leaf_weight(
                        float(g_tot[vid]), float(h_tot[vid]), params.split.lambda_
                    )
                    tree_nodes[vid] = tree.add_leaf(depth, w)
                else:
                    assert d is not None
                    issplits.append(True)
                    sfields.append(d.field)
                    tree_nodes[vid] = tree.add_split(
                        depth, d.field, d.threshold_bin, d.is_categorical, d.missing_left
                    )
                    split_vids.append(vid)
                    split_decisions.append(d)

            # Attach children pointers now that parents have real node ids.
            if depth > 0:
                for vid in range(n_live):
                    parent_node = prev_split_nodes[vid // 2]
                    if vid % 2 == 0:
                        tree.set_children(
                            parent_node, int(tree_nodes[vid]), tree.right[parent_node]
                        )
                    else:
                        tree.set_children(
                            parent_node, tree.left[parent_node], int(tree_nodes[vid])
                        )

            if not split_vids:
                break

            prev_split_nodes = [int(tree_nodes[v]) for v in split_vids]
            (
                vertex_of_record,
                fracs,
                g_tot,
                h_tot,
                c_tot,
                n_reach,
                binned,
                hist_c,
                hist_g,
                hist_h,
                has_hist,
            ) = self._partition_level_vectorized(
                n_live,
                split_vids,
                split_decisions,
                vertex_of_record,
                hist_c,
                hist_g,
                hist_h,
                g,
                h,
                depth,
            )
            child_fracs.extend(fracs)

        tree.validate()
        work = TreeWork(
            depth=np.asarray(depths, dtype=np.int64),
            n_reach=np.asarray(reaches, dtype=np.int64),
            n_binned=np.asarray(binneds, dtype=np.int64),
            split_evaluated=np.asarray(evals, dtype=bool),
            is_split=np.asarray(issplits, dtype=bool),
            split_field=np.asarray(sfields, dtype=np.int64),
            relevant_fields=tree.relevant_fields(),
            sum_path_len=0.0,
            mean_path_len=0.0,
            max_path_len=0,
            loss_after=0.0,
        )
        return tree, work, child_fracs, root_counts

    # -- one level: partition + explicit-child binning (vectorized) ----------------

    def _partition_level_vectorized(
        self,
        n_live: int,
        split_vids: list[int],
        decisions: list[SplitDecision],
        vertex_of_record: np.ndarray,
        hist_c: np.ndarray,
        hist_g: np.ndarray,
        hist_h: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        depth: int,
    ) -> tuple:
        """Steps 3 + 1 for a whole level, no per-vertex passes.

        Partitions the records of ALL splitting vertices in one array pass
        (one gather over the code matrix instead of per-vertex ``nonzero``
        scans), bins all the explicit (smaller) children through one grouped
        bincount, and derives every sibling histogram with a single
        whole-matrix subtraction of the small-child matrix from the parent
        rows.  The counterpart of :meth:`_partition_level_reference` (the
        ``repro bench`` level-core microbench drives both on the same
        captured level state).

        Returns the next level's state:
        ``(vertex_of_record, fracs, g_tot, h_tot, c_tot, n_reach, binned,
        hist_c, hist_g, hist_h, has_hist)``.
        """
        data = self.data
        params = self.params
        n = vertex_of_record.shape[0]
        n_bins = self.builder.n_bins

        # Step 3, all vertices at once: map each record's vertex to its
        # split slot (-1 for parked records and non-splitting vertices),
        # then evaluate every predicate in one gather over the codes.
        k = len(split_vids)
        sv = np.asarray(split_vids, dtype=np.int64)
        ds = decisions
        fields = np.array([d.field for d in ds], dtype=np.int64)
        thresholds = np.array([d.threshold_bin for d in ds], dtype=np.int64)
        is_cat = np.array([d.is_categorical for d in ds], dtype=bool)
        miss_left = np.array([d.missing_left for d in ds], dtype=bool)
        missing_bin = np.array(
            [data.spec.fields[int(f)].missing_bin for f in fields], dtype=np.int64
        )

        slot = np.full(n_live, -1, dtype=np.int64)
        slot[sv] = np.arange(k, dtype=np.int64)
        active = vertex_of_record >= 0
        rec_slot = np.full(n, -1, dtype=np.int64)
        rec_slot[active] = slot[vertex_of_record[active]]
        rows = np.nonzero(rec_slot >= 0)[0]  # ascending record order
        s = rec_slot[rows]
        codes_sel = data.codes[rows, fields[s]].astype(np.int64)
        missing = codes_sel == missing_bin[s]
        left = np.where(is_cat[s], codes_sel == thresholds[s], codes_sel <= thresholds[s])
        left = np.where(missing, miss_left[s], left)
        child_slot = 2 * s + (~left).astype(np.int64)

        new_assignment = np.full(n, -1, dtype=np.int64)
        new_assignment[rows] = child_slot
        counts = np.bincount(child_slot, minlength=2 * k)
        left_sizes = counts[0::2]
        right_sizes = counts[1::2]
        member_sizes = left_sizes + right_sizes
        fracs = (np.minimum(left_sizes, right_sizes) / np.maximum(member_sizes, 1)).tolist()

        # Next level's per-vertex totals, interleaved left/right.
        g_tot = np.empty(2 * k)
        h_tot = np.empty(2 * k)
        c_tot = np.empty(2 * k)
        g_tot[0::2] = [d.grad_left for d in ds]
        g_tot[1::2] = [d.grad_right for d in ds]
        h_tot[0::2] = [d.hess_left for d in ds]
        h_tot[1::2] = [d.hess_right for d in ds]
        c_tot[0::2] = [d.count_left for d in ds]
        c_tot[1::2] = [d.count_right for d in ds]
        n_reach = np.empty(2 * k, dtype=np.int64)
        n_reach[0::2] = left_sizes
        n_reach[1::2] = right_sizes
        binned = np.zeros(2 * k, dtype=np.int64)

        # Step 1, level-wise: one grouped bincount bins ALL the explicit
        # (smaller) children; all siblings come from ONE whole-matrix
        # subtraction of the small-child matrix from the parent rows.
        if depth + 1 < params.max_depth:
            small_is_left = left_sizes <= right_sizes
            rec_is_small = left == small_is_left[s]
            small_c, small_g, small_h = self.builder.build_grouped_arrays(
                rows[rec_is_small], s[rec_is_small], k, g, h
            )
            # Parent rows: when every live vertex split (the common deep-level
            # case), sv == arange(n_live) and the matrices are the parent
            # stack already -- skip the gather copies.
            if k == n_live:
                parent_c, parent_g, parent_h = hist_c, hist_g, hist_h
            else:
                parent_c, parent_g, parent_h = hist_c[sv], hist_g[sv], hist_h[sv]
            pos = 2 * np.arange(k, dtype=np.int64)
            small_pos = pos + (~small_is_left).astype(np.int64)
            large_pos = pos + small_is_left.astype(np.int64)
            hist_c = np.empty((2 * k, n_bins))
            hist_g = np.empty((2 * k, n_bins))
            hist_h = np.empty((2 * k, n_bins))
            hist_c[small_pos] = small_c
            hist_g[small_pos] = small_g
            hist_h[small_pos] = small_h
            # Sibling = parent - small, computed in place into the small-child
            # buffers (their rows were just copied out above).
            np.subtract(parent_c, small_c, out=small_c)
            np.subtract(parent_g, small_g, out=small_g)
            np.subtract(parent_h, small_h, out=small_h)
            hist_c[large_pos] = small_c
            hist_g[large_pos] = small_g
            hist_h[large_pos] = small_h
            has_hist = np.ones(2 * k, dtype=bool)
            binned[small_pos] = np.where(small_is_left, left_sizes, right_sizes)
        else:
            has_hist = np.zeros(2 * k, dtype=bool)

        return (
            new_assignment,
            fracs,
            g_tot,
            h_tot,
            c_tot,
            n_reach,
            binned,
            hist_c,
            hist_g,
            hist_h,
            has_hist,
        )

    def _grow_tree_reference(
        self, g: np.ndarray, h: np.ndarray
    ) -> "tuple[Tree, TreeWork, list[float], np.ndarray | None]":
        """Scalar reference: per-vertex dict state, per-vertex step 2."""
        data = self.data
        params = self.params
        n = data.n_records
        tree = Tree(data.spec)

        depths: list[int] = []
        reaches: list[int] = []
        binneds: list[int] = []
        evals: list[bool] = []
        issplits: list[bool] = []
        sfields: list[int] = []
        child_fracs: list[float] = []
        root_counts: np.ndarray | None = None

        # Every record carries its current vertex; -1 once it rests in a leaf.
        root_hist = self.builder.build(np.arange(n, dtype=np.int64), g, h)
        root_counts = root_hist.count.copy()
        root = _LevelNode(
            tree_node=-1,  # assigned below
            g_tot=float(g.sum()),
            h_tot=float(h.sum()),
            c_tot=float(n),
            hist=root_hist,
            binned_here=n,
            n_reach=n,
        )
        live = {0: root}  # level-local vertex id -> node state
        vertex_of_record = np.zeros(n, dtype=np.int64)
        # Vertex bookkeeping of the level ABOVE, threaded level to level as
        # locals (never trainer state, so concurrent/repeated ``fit`` calls
        # cannot observe each other's stale maps): child vid -> (parent vid,
        # is_left) and parent vid -> tree node id.
        parent_of: dict[int, tuple[int, bool]] = {}
        parent_node_ids: dict[int, int] = {}

        for depth in range(params.max_depth + 1):
            if not live:
                break
            splits_this_level: dict[int, SplitDecision] = {}

            # Step 2 for every vertex at this level (one host round trip).
            for vid, node in live.items():
                n_reach = node.n_reach
                can_split = (
                    depth < params.max_depth
                    and n_reach >= 2 * params.split.min_child_records
                    and node.hist is not None
                )
                decision = None
                if can_split:
                    decision = self.searcher.best_split(
                        node.hist, node.g_tot, node.h_tot, node.c_tot
                    )
                is_split = decision is not None and decision.valid

                depths.append(depth)
                reaches.append(n_reach)
                binneds.append(node.binned_here)
                evals.append(bool(can_split))

                if not is_split:
                    issplits.append(False)
                    sfields.append(-1)
                    w = params.learning_rate * leaf_weight(
                        node.g_tot, node.h_tot, params.split.lambda_
                    )
                    node.tree_node = tree.add_leaf(depth, w)
                else:
                    assert decision is not None
                    issplits.append(True)
                    sfields.append(decision.field)
                    node.tree_node = tree.add_split(
                        depth,
                        decision.field,
                        decision.threshold_bin,
                        decision.is_categorical,
                        decision.missing_left,
                    )
                    splits_this_level[vid] = decision

            # Attach children pointers now that parents have real node ids.
            if depth > 0:
                for vid, node in live.items():
                    parent_vid, is_left = parent_of[vid]
                    parent_node = parent_node_ids[parent_vid]
                    if is_left:
                        tree.set_children(parent_node, node.tree_node, tree.right[parent_node])
                    else:
                        tree.set_children(parent_node, tree.left[parent_node], node.tree_node)

            if not splits_this_level:
                break

            # Steps 3 + 1, level-wise: one pass re-assigns every record whose
            # vertex split (leaves keep their records parked), then one
            # streaming pass bins all the explicit children's records.
            parent_node_ids = {vid: node.tree_node for vid, node in live.items()}
            next_live, parent_of, vertex_of_record, fracs = self._partition_level_reference(
                live, splits_this_level, vertex_of_record, g, h, depth
            )
            child_fracs.extend(fracs)
            live = next_live

        tree.validate()
        work = TreeWork(
            depth=np.asarray(depths, dtype=np.int64),
            n_reach=np.asarray(reaches, dtype=np.int64),
            n_binned=np.asarray(binneds, dtype=np.int64),
            split_evaluated=np.asarray(evals, dtype=bool),
            is_split=np.asarray(issplits, dtype=bool),
            split_field=np.asarray(sfields, dtype=np.int64),
            relevant_fields=tree.relevant_fields(),
            sum_path_len=0.0,
            mean_path_len=0.0,
            max_path_len=0,
            loss_after=0.0,
        )
        return tree, work, child_fracs, root_counts

    # -- one level: partition + explicit-child binning (reference) -----------------

    def _partition_level_reference(
        self,
        live: dict[int, _LevelNode],
        splits: dict[int, SplitDecision],
        vertex_of_record: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        depth: int,
    ) -> "tuple[dict[int, _LevelNode], dict[int, tuple[int, bool]], np.ndarray, list[float]]":
        """Scalar reference: per-vertex record scans and per-vertex builds.

        One ``np.nonzero`` scan and (for the smaller child) one ``build``
        call per splitting vertex -- the O(vertices x records) schedule the
        matrix pass replaces.  Kept as the equivalence oracle and the
        plainest statement of the level-wise semantics.
        """
        data = self.data
        params = self.params
        n = vertex_of_record.shape[0]
        next_live: dict[int, _LevelNode] = {}
        parent_of: dict[int, tuple[int, bool]] = {}
        fracs: list[float] = []
        new_assignment = np.full(n, -1, dtype=np.int64)
        next_vid = 0
        explicit_children: list[tuple[int, np.ndarray]] = []
        for vid, decision in splits.items():
            member = np.nonzero(vertex_of_record == vid)[0]
            codes = data.codes[member, decision.field].astype(np.int64)
            fspec = data.spec.fields[decision.field]
            missing = codes == fspec.missing_bin
            if decision.is_categorical:
                left = codes == decision.threshold_bin
            else:
                left = codes <= decision.threshold_bin
            left = np.where(missing, decision.missing_left, left)
            left_idx = member[left]
            right_idx = member[~left]
            fracs.append(min(left_idx.size, right_idx.size) / max(member.size, 1))

            lvid, rvid = next_vid, next_vid + 1
            next_vid += 2
            new_assignment[left_idx] = lvid
            new_assignment[right_idx] = rvid
            parent_of[lvid] = (vid, True)
            parent_of[rvid] = (vid, False)
            next_live[lvid] = _LevelNode(
                tree_node=-1,
                g_tot=decision.grad_left,
                h_tot=decision.hess_left,
                c_tot=decision.count_left,
                n_reach=int(left_idx.size),
            )
            next_live[rvid] = _LevelNode(
                tree_node=-1,
                g_tot=decision.grad_right,
                h_tot=decision.hess_right,
                c_tot=decision.count_right,
                n_reach=int(right_idx.size),
            )
            # Smaller-child rule, per vertex: bin the smaller explicitly,
            # derive the sibling by subtraction.
            if depth + 1 < params.max_depth:
                small_vid = lvid if left_idx.size <= right_idx.size else rvid
                small_idx = left_idx if small_vid == lvid else right_idx
                explicit_children.append((small_vid, small_idx))

        for small_vid, small_idx in explicit_children:
            small_hist = self.builder.build(small_idx, g, h)
            next_live[small_vid].hist = small_hist
            next_live[small_vid].binned_here = int(small_idx.size)
            parent_vid, small_is_left = parent_of[small_vid]
            sibling_vid = small_vid + 1 if small_is_left else small_vid - 1
            parent_hist = live[parent_vid].hist
            assert parent_hist is not None
            next_live[sibling_vid].hist = parent_hist.subtract(small_hist)

        return next_live, parent_of, new_assignment, fracs


def train_level_wise(
    data: BinnedDataset, params: TrainParams | None = None, *, vectorized: bool = True
) -> TrainResult:
    """Convenience wrapper mirroring :func:`repro.gbdt.train`."""
    return LevelWiseTrainer(data, params, vectorized=vectorized).fit()
