"""Level-by-level tree growth (the paper's alternative configuration).

Sec. II-A: "GB implementations can be configured to proceed vertex by vertex
or level by level (i.e., explore together all the valid vertices at a level
...). The [level-wise configuration] streams in all the input records and
histogram-bins the relevant records at each vertex.  Because multiple
vertices are explored together, this configuration maintains a separate
histogram per vertex."

Differences from the vertex-by-vertex trainer that matter to hardware:

* step 1 makes **one pass over all active records per level** (sequential
  streaming, no per-vertex pointer gathers), updating per-vertex histograms
  selected by each record's current node -- but the smaller-child subtraction
  still halves the explicit work (only the smaller child of each split is
  binned; the sibling is derived);
* the on-chip capacity requirement multiplies by the number of live vertices
  at the level (up to 2^depth histograms), which is exactly the trade-off
  Booster's SRAM budget bounds (see
  :meth:`~repro.core.engine.BoosterEngine.bin_mapping` capacity checks);
* step 2 evaluates all the level's vertices in one host round trip, so the
  per-vertex offload overhead amortizes.

The resulting model is numerically identical to the vertex-by-vertex trainer
(same splits, same trees) -- property-tested -- while the work profile's
*shape* differs, which the ``growth`` ablation benchmark exercises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..datasets.encoding import BinnedDataset
from .histogram import Histogram, HistogramBuilder
from .instrument import warp_conflict_factor
from .losses import Loss, loss_for_task
from .split import SplitDecision, SplitSearcher, leaf_weight
from .trainer import TrainParams, TrainResult
from .tree import Tree
from .workprofile import TreeWork, WorkProfile

__all__ = ["LevelWiseTrainer", "train_level_wise"]


@dataclass
class _LevelNode:
    """One live vertex during level-wise growth."""

    tree_node: int  # id in the Tree being built
    g_tot: float
    h_tot: float
    c_tot: float
    hist: Histogram | None = None
    binned_here: int = 0  # records explicitly binned for this vertex
    n_reach: int = 0


class LevelWiseTrainer:
    """Level-by-level GBDT trainer with the same split semantics."""

    def __init__(self, data: BinnedDataset, params: TrainParams | None = None) -> None:
        self.data = data
        self.params = params or TrainParams()
        self.builder = HistogramBuilder(data)
        self.searcher = SplitSearcher(data.spec, self.builder.offsets, self.params.split)
        self.loss: Loss = loss_for_task(data.spec.task)

    def fit(self) -> TrainResult:
        t_start = time.perf_counter()
        data = self.data
        params = self.params
        n = data.n_records
        y = data.y
        margin = np.full(n, self.loss.base_margin(y), dtype=np.float64)
        base_margin = float(margin[0]) if n else 0.0

        trees: list[Tree] = []
        works: list[TreeWork] = []
        losses = np.empty(params.n_trees, dtype=np.float64)
        root_bin_counts: np.ndarray | None = None
        child_fracs: list[float] = []
        path_sum = path_sq = 0.0
        path_count = 0

        for round_ix in range(params.n_trees):
            g, h = self.loss.gradients(margin, y)
            tree, work, fracs, root_counts = self._grow_tree(g, h)
            trees.append(tree)
            if root_bin_counts is None:
                root_bin_counts = root_counts

            pred, depths = tree.predict(data.codes, return_depth=True)
            margin += pred
            losses[round_ix] = self.loss.value(margin, y)
            work.sum_path_len = float(depths.sum())
            work.mean_path_len = float(depths.mean()) if n else 0.0
            work.max_path_len = int(depths.max()) if n else 0
            work.loss_after = float(losses[round_ix])
            works.append(work)
            child_fracs.extend(fracs)
            path_sum += float(depths.sum())
            path_sq += float(np.square(depths, dtype=np.float64).sum())
            path_count += int(depths.size)

        cv = 0.0
        if path_count and path_sum > 0:
            mean = path_sum / path_count
            var = max(path_sq / path_count - mean * mean, 0.0)
            cv = float(np.sqrt(var) / mean)

        profile = WorkProfile(
            spec=data.spec,
            trees=works,
            warp_conflict_factor=warp_conflict_factor(data.codes, sample=params.conflict_sample),
            path_len_cv=cv,
            smaller_child_fraction_mean=float(np.mean(child_fracs)) if child_fracs else 0.5,
            train_seconds_wall=time.perf_counter() - t_start,
            losses=losses.copy(),
            root_bin_counts=root_bin_counts,
            growth="level",
        )
        return TrainResult(
            trees=trees,
            profile=profile,
            losses=losses,
            base_margin=base_margin,
            loss=self.loss,
            params=params,
        )

    # -- one tree ------------------------------------------------------------------

    def _grow_tree(self, g: np.ndarray, h: np.ndarray):
        data = self.data
        params = self.params
        n = data.n_records
        tree = Tree(data.spec)

        depths: list[int] = []
        reaches: list[int] = []
        binneds: list[int] = []
        evals: list[bool] = []
        issplits: list[bool] = []
        sfields: list[int] = []
        child_fracs: list[float] = []
        root_counts: np.ndarray | None = None

        # Every record carries its current vertex; -1 once it rests in a leaf.
        assignment = np.zeros(n, dtype=np.int64)
        root_hist = self.builder.build(np.arange(n, dtype=np.int64), g, h)
        root_counts = root_hist.count.copy()
        root = _LevelNode(
            tree_node=-1,  # assigned below
            g_tot=float(g.sum()),
            h_tot=float(h.sum()),
            c_tot=float(n),
            hist=root_hist,
            binned_here=n,
            n_reach=n,
        )
        live = {0: root}  # level-local vertex id -> node state
        vertex_of_record = assignment  # alias for clarity

        for depth in range(params.max_depth + 1):
            if not live:
                break
            next_live: dict[int, _LevelNode] = {}
            splits_this_level: dict[int, SplitDecision] = {}

            # Step 2 for every vertex at this level (one host round trip).
            for vid, node in live.items():
                n_reach = node.n_reach
                can_split = (
                    depth < params.max_depth
                    and n_reach >= 2 * params.split.min_child_records
                    and node.hist is not None
                )
                decision = None
                if can_split:
                    decision = self.searcher.best_split(
                        node.hist, node.g_tot, node.h_tot, node.c_tot
                    )
                is_split = decision is not None and decision.valid

                depths.append(depth)
                reaches.append(n_reach)
                binneds.append(node.binned_here)
                evals.append(bool(can_split))

                if not is_split:
                    issplits.append(False)
                    sfields.append(-1)
                    w = params.learning_rate * leaf_weight(
                        node.g_tot, node.h_tot, params.split.lambda_
                    )
                    node.tree_node = tree.add_leaf(depth, w)
                else:
                    assert decision is not None
                    issplits.append(True)
                    sfields.append(decision.field)
                    node.tree_node = tree.add_split(
                        depth,
                        decision.field,
                        decision.threshold_bin,
                        decision.is_categorical,
                        decision.missing_left,
                    )
                    splits_this_level[vid] = decision

            # Attach children pointers now that parents have real node ids.
            if depth > 0:
                for vid, node in live.items():
                    parent_vid, is_left = self._parent_of[vid]
                    parent_node = self._node_ids[parent_vid]
                    if is_left:
                        tree.set_children(parent_node, node.tree_node, tree.right[parent_node])
                    else:
                        tree.set_children(parent_node, tree.left[parent_node], node.tree_node)

            if not splits_this_level:
                break

            # Step 3, level-wise: one pass re-assigns every record whose
            # vertex split; leaves keep their records parked.
            self._node_ids = {vid: node.tree_node for vid, node in live.items()}
            self._parent_of = {}
            new_assignment = np.full(n, -1, dtype=np.int64)
            next_vid = 0
            explicit_children: list[tuple[int, np.ndarray]] = []
            for vid, decision in splits_this_level.items():
                node = live[vid]
                member = np.nonzero(vertex_of_record == vid)[0]
                codes = data.codes[member, decision.field].astype(np.int64)
                fspec = data.spec.fields[decision.field]
                missing = codes == fspec.missing_bin
                if decision.is_categorical:
                    left = codes == decision.threshold_bin
                else:
                    left = codes <= decision.threshold_bin
                left = np.where(missing, decision.missing_left, left)
                left_idx = member[left]
                right_idx = member[~left]
                child_fracs.append(min(left_idx.size, right_idx.size) / max(member.size, 1))

                lvid, rvid = next_vid, next_vid + 1
                next_vid += 2
                new_assignment[left_idx] = lvid
                new_assignment[right_idx] = rvid
                self._parent_of[lvid] = (vid, True)
                self._parent_of[rvid] = (vid, False)
                next_live[lvid] = _LevelNode(
                    tree_node=-1,
                    g_tot=decision.grad_left,
                    h_tot=decision.hess_left,
                    c_tot=decision.count_left,
                    n_reach=int(left_idx.size),
                )
                next_live[rvid] = _LevelNode(
                    tree_node=-1,
                    g_tot=decision.grad_right,
                    h_tot=decision.hess_right,
                    c_tot=decision.count_right,
                    n_reach=int(right_idx.size),
                )
                # Smaller-child rule, per vertex: bin the smaller explicitly,
                # derive the sibling by subtraction.
                if depth + 1 < params.max_depth:
                    small_vid = lvid if left_idx.size <= right_idx.size else rvid
                    small_idx = left_idx if small_vid == lvid else right_idx
                    explicit_children.append((small_vid, small_idx))

            # Step 1, level-wise: one streaming pass bins all the explicit
            # children's records into per-vertex histograms.
            for small_vid, small_idx in explicit_children:
                small_hist = self.builder.build(small_idx, g, h)
                next_live[small_vid].hist = small_hist
                next_live[small_vid].binned_here = int(small_idx.size)
                parent_vid, small_is_left = self._parent_of[small_vid]
                sibling_vid = small_vid + 1 if small_is_left else small_vid - 1
                parent_hist = live[parent_vid].hist
                assert parent_hist is not None
                next_live[sibling_vid].hist = parent_hist.subtract(small_hist)

            vertex_of_record = new_assignment
            live = next_live

        tree.validate()
        work = TreeWork(
            depth=np.asarray(depths, dtype=np.int64),
            n_reach=np.asarray(reaches, dtype=np.int64),
            n_binned=np.asarray(binneds, dtype=np.int64),
            split_evaluated=np.asarray(evals, dtype=bool),
            is_split=np.asarray(issplits, dtype=bool),
            split_field=np.asarray(sfields, dtype=np.int64),
            relevant_fields=tree.relevant_fields(),
            sum_path_len=0.0,
            mean_path_len=0.0,
            max_path_len=0,
            loss_after=0.0,
        )
        return tree, work, child_fracs, root_counts


def train_level_wise(data: BinnedDataset, params: TrainParams | None = None) -> TrainResult:
    """Convenience wrapper mirroring :func:`repro.gbdt.train`."""
    return LevelWiseTrainer(data, params).fit()
