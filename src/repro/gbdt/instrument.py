"""Irregularity instrumentation: warp bin conflicts and path divergence.

Section II-D argues GPUs fail on GB training because histogram updates are
read-modify-write and irregular: threads of a warp frequently hit the *same*
bin (serialized atomics) and records take different tree paths (SIMT
divergence).  These two statistics are measurable properties of the data, so
we measure them and feed them to the "real GPU" derating model instead of
inventing constants.
"""

from __future__ import annotations

import numpy as np

__all__ = ["warp_conflict_factor", "max_run_lengths", "path_length_cv"]


def max_run_lengths(sorted_rows: np.ndarray) -> np.ndarray:
    """Per-row maximum run length of equal adjacent values.

    Rows must be sorted.  A run of length ``r`` means ``r`` lanes of the warp
    update the same histogram bin, which hardware serializes into ``r``
    sequential read-modify-writes.
    """
    if sorted_rows.ndim != 2:
        raise ValueError("expected a 2-D array of sorted rows")
    n_rows, width = sorted_rows.shape
    if width == 0:
        return np.zeros(n_rows, dtype=np.int64)
    change = np.ones((n_rows, width), dtype=np.int64)
    change[:, 1:] = (sorted_rows[:, 1:] != sorted_rows[:, :-1]).astype(np.int64)
    run_id = np.cumsum(change, axis=1) - 1  # 0-based run index within the row
    counts = np.zeros((n_rows, width), dtype=np.int64)
    rows = np.repeat(np.arange(n_rows), width)
    np.add.at(counts, (rows, run_id.ravel()), 1)
    return counts.max(axis=1)


def warp_conflict_factor(codes: np.ndarray, warp: int = 32, sample: int = 4096) -> float:
    """Expected max same-bin multiplicity within a warp, averaged over fields.

    ``codes`` is the (records x fields) bin-code matrix.  For each field, the
    first ``sample`` records are grouped into warps of ``warp`` consecutive
    records; the mean over warps of the maximum bin multiplicity estimates the
    atomic-serialization factor.  Uniform 256-bin fields give ~1.2-1.5;
    heavily skewed categorical fields approach ``warp`` itself.
    """
    if warp < 1:
        raise ValueError("warp must be >= 1")
    n, n_fields = codes.shape
    use = min(n, sample)
    use -= use % warp
    if use < warp:
        return 1.0
    factors = np.empty(n_fields, dtype=np.float64)
    for j in range(n_fields):
        groups = np.sort(codes[:use, j].reshape(-1, warp), axis=1)
        factors[j] = max_run_lengths(groups).mean()
    return float(factors.mean())


def path_length_cv(path_lengths: np.ndarray) -> float:
    """Coefficient of variation of traversal path lengths (divergence proxy)."""
    if path_lengths.size == 0:
        return 0.0
    mean = float(path_lengths.mean())
    if mean == 0.0:
        return 0.0
    return float(path_lengths.std() / mean)
