"""The GBDT training loop (steps 1-6 of Table I) with work instrumentation.

The trainer grows the ensemble one tree at a time; each tree grows vertex by
vertex ("GB implementations can be configured to proceed vertex by vertex or
level by level.  The above assumes the former", Sec. II-A):

1. histogram-bin the gradient statistics of the records reaching the vertex
   (with the smaller-child subtraction optimization);
2. choose the best split from the histogram (the host-offloaded step);
3. partition the vertex's records with the new predicate;
4. repeat to the configured depth or until gain stops exceeding gamma;
5. traverse the finished tree with *all* records, updating every record's
   g/h and the total loss;
6. start the next tree.

Every step increments the corresponding counters of a :class:`WorkProfile`,
which the hardware timing models consume.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..datasets.encoding import BinnedDataset
from .histogram import Histogram, HistogramBuilder
from .instrument import warp_conflict_factor
from .losses import Loss, loss_for_task
from .split import SplitDecision, SplitParams, SplitSearcher, leaf_weight
from .tree import Tree
from .workprofile import TreeWork, WorkProfile

__all__ = ["TrainParams", "TrainResult", "GBDTTrainer", "train"]


@dataclass(frozen=True)
class TrainParams:
    """Training hyper-parameters (XGBoost-style defaults).

    The paper's models are 500 trees of depth up to 6; functional simulation
    defaults to fewer trees because per-tree work is statistically homogeneous
    after the first few rounds and every reported figure is a time *ratio*.
    """

    n_trees: int = 30
    max_depth: int = 6
    learning_rate: float = 0.3  # XGBoost's default eta
    split: SplitParams = dc_field(default_factory=SplitParams)
    conflict_sample: int = 4096

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")


@dataclass
class TrainResult:
    """Trained ensemble plus the work profile of the run."""

    trees: list[Tree]
    profile: WorkProfile
    losses: np.ndarray
    base_margin: float
    loss: Loss
    params: TrainParams

    def predict_margin(self, codes: np.ndarray) -> np.ndarray:
        out = np.full(codes.shape[0], self.base_margin, dtype=np.float64)
        for t in self.trees:
            out += t.predict(codes)
        return out

    def predict(self, codes: np.ndarray) -> np.ndarray:
        return self.loss.predict_transform(self.predict_margin(codes))


@dataclass
class _NodeTask:
    """Queue entry for vertex-by-vertex growth."""

    depth: int
    index: np.ndarray
    hist: Histogram | None  # None => bin explicitly if a split will be attempted
    g_tot: float
    h_tot: float
    c_tot: float
    parent: int  # tree node id of the parent, -1 for root
    is_left: bool
    #: Records explicitly binned at the parent to produce ``hist`` (the
    #: smaller-child optimization does the binning there); step-1 work is
    #: charged when this task is popped so accounting is order-independent.
    binned_at_parent: int = 0


class GBDTTrainer:
    """Instrumented histogram-GBDT trainer for one dataset."""

    def __init__(self, data: BinnedDataset, params: TrainParams | None = None) -> None:
        self.data = data
        self.params = params or TrainParams()
        self.builder = HistogramBuilder(data)
        self.searcher = SplitSearcher(data.spec, self.builder.offsets, self.params.split)
        self.loss: Loss = loss_for_task(data.spec.task)

    # -- public API ---------------------------------------------------------------

    def fit(self) -> TrainResult:
        t_start = time.perf_counter()
        data = self.data
        params = self.params
        n = data.n_records
        y = data.y
        margin = np.full(n, self.loss.base_margin(y), dtype=np.float64)
        base_margin = float(margin[0]) if n else 0.0

        trees: list[Tree] = []
        tree_works: list[TreeWork] = []
        losses = np.empty(params.n_trees, dtype=np.float64)

        path_sum = 0.0
        path_sq_sum = 0.0
        path_count = 0
        child_fracs: list[float] = []

        root_bin_counts: np.ndarray | None = None
        for round_ix in range(params.n_trees):
            g, h = self.loss.gradients(margin, y)
            tree, work, fracs, root_counts = self._grow_tree(g, h)
            trees.append(tree)
            if root_bin_counts is None and root_counts is not None:
                root_bin_counts = root_counts

            # Step 5: one-tree traversal over *all* records, updating margins.
            pred, depths = tree.predict(data.codes, return_depth=True)
            margin += pred  # leaf weights already include the learning rate
            losses[round_ix] = self.loss.value(margin, y)

            work.sum_path_len = float(depths.sum())
            work.mean_path_len = float(depths.mean()) if n else 0.0
            work.max_path_len = int(depths.max()) if n else 0
            work.loss_after = float(losses[round_ix])
            tree_works.append(work)

            path_sum += float(depths.sum())
            path_sq_sum += float(np.square(depths, dtype=np.float64).sum())
            path_count += int(depths.size)
            child_fracs.extend(fracs)

        cv = 0.0
        if path_count and path_sum > 0:
            mean = path_sum / path_count
            var = max(path_sq_sum / path_count - mean * mean, 0.0)
            cv = float(np.sqrt(var) / mean)

        profile = WorkProfile(
            spec=data.spec,
            trees=tree_works,
            warp_conflict_factor=warp_conflict_factor(
                data.codes, sample=params.conflict_sample
            ),
            path_len_cv=cv,
            smaller_child_fraction_mean=float(np.mean(child_fracs)) if child_fracs else 0.5,
            train_seconds_wall=time.perf_counter() - t_start,
            losses=losses.copy(),
            root_bin_counts=root_bin_counts,
        )
        return TrainResult(
            trees=trees,
            profile=profile,
            losses=losses,
            base_margin=base_margin,
            loss=self.loss,
            params=params,
        )

    # -- tree growth ----------------------------------------------------------------

    def _grow_tree(
        self, g: np.ndarray, h: np.ndarray
    ) -> tuple[Tree, TreeWork, list[float], np.ndarray | None]:
        data = self.data
        params = self.params
        spec = data.spec
        lam = params.split.lambda_
        lr = params.learning_rate
        n = data.n_records
        tree = Tree(spec)

        depths: list[int] = []
        reaches: list[int] = []
        binneds: list[int] = []
        evals: list[bool] = []
        issplits: list[bool] = []
        sfields: list[int] = []
        child_fracs: list[float] = []

        root_counts: np.ndarray | None = None
        all_idx = np.arange(n, dtype=np.int64)
        root = _NodeTask(
            depth=0,
            index=all_idx,
            hist=None,
            g_tot=float(g.sum()),
            h_tot=float(h.sum()),
            c_tot=float(n),
            parent=-1,
            is_left=False,
        )
        queue: deque[_NodeTask] = deque([root])

        while queue:
            task = queue.popleft()
            n_reach = int(task.index.size)

            can_split = (
                task.depth < params.max_depth
                and n_reach >= 2 * params.split.min_child_records
            )

            # Step 1: bin explicitly unless the subtraction trick supplied the
            # histogram at the parent; nodes that will not attempt a split
            # (depth/size limits) never need one.
            hist = task.hist
            n_binned = task.binned_at_parent
            if hist is None and can_split:
                hist = self.builder.build(task.index, g, h)
                n_binned = n_reach
            if task.parent < 0 and hist is not None and root_counts is None:
                root_counts = hist.count.copy()

            decision: SplitDecision | None = None
            if can_split:
                assert hist is not None
                # Step 2 (host-offloaded): scan all bins for the best split.
                decision = self.searcher.best_split(
                    hist, task.g_tot, task.h_tot, task.c_tot
                )

            node_is_split = decision is not None and decision.valid
            left_idx = right_idx = None
            if node_is_split:
                # Step 3: partition the node's records with the new predicate.
                left_mask = self._predicate_mask(task.index, decision)
                left_idx = task.index[left_mask]
                right_idx = task.index[~left_mask]
                if left_idx.size == 0 or right_idx.size == 0:
                    node_is_split = False  # degenerate split; make a leaf

            depths.append(task.depth)
            reaches.append(n_reach)
            binneds.append(n_binned)
            evals.append(bool(can_split))
            issplits.append(bool(node_is_split))
            sfields.append(int(decision.field) if node_is_split else -1)

            if not node_is_split:
                w = lr * leaf_weight(task.g_tot, task.h_tot, lam)
                node = tree.add_leaf(task.depth, w)
                self._attach(tree, task, node)
                continue

            assert decision is not None and left_idx is not None and right_idx is not None
            node = tree.add_split(
                task.depth,
                decision.field,
                decision.threshold_bin,
                decision.is_categorical,
                decision.missing_left,
            )
            self._attach(tree, task, node)
            child_fracs.append(min(left_idx.size, right_idx.size) / n_reach)

            # Smaller child is binned explicitly; larger gets parent - smaller.
            left_task = _NodeTask(
                depth=task.depth + 1,
                index=left_idx,
                hist=None,
                g_tot=decision.grad_left,
                h_tot=decision.hess_left,
                c_tot=decision.count_left,
                parent=node,
                is_left=True,
            )
            right_task = _NodeTask(
                depth=task.depth + 1,
                index=right_idx,
                hist=None,
                g_tot=decision.grad_right,
                h_tot=decision.hess_right,
                c_tot=decision.count_right,
                parent=node,
                is_left=False,
            )
            small, large = (
                (left_task, right_task)
                if left_idx.size <= right_idx.size
                else (right_task, left_task)
            )
            if task.depth + 1 < params.max_depth:
                # Children may split, so they need histograms: bin the smaller
                # child explicitly (through the builder's grouped bincount
                # core; ``build`` is its single-group case) and derive the
                # larger one by subtraction.
                assert hist is not None
                small_hist = self.builder.build(small.index, g, h)
                small.hist = small_hist
                small.binned_at_parent = int(small.index.size)
                large.hist = hist.subtract(small_hist)
            queue.append(left_task)
            queue.append(right_task)

        tree.validate()
        work = TreeWork(
            depth=np.asarray(depths, dtype=np.int64),
            n_reach=np.asarray(reaches, dtype=np.int64),
            n_binned=np.asarray(binneds, dtype=np.int64),
            split_evaluated=np.asarray(evals, dtype=bool),
            is_split=np.asarray(issplits, dtype=bool),
            split_field=np.asarray(sfields, dtype=np.int64),
            relevant_fields=tree.relevant_fields(),
            sum_path_len=0.0,
            mean_path_len=0.0,
            max_path_len=0,
            loss_after=0.0,
        )
        return tree, work, child_fracs, root_counts

    def _attach(self, tree: Tree, task: _NodeTask, node: int) -> None:
        if task.parent < 0:
            return
        left = tree.left[task.parent]
        right = tree.right[task.parent]
        if task.is_left:
            tree.set_children(task.parent, node, right)
        else:
            tree.set_children(task.parent, left, node)

    def _predicate_mask(self, index: np.ndarray, decision: SplitDecision) -> np.ndarray:
        """Evaluate the split predicate over the node's records."""
        field_spec = self.data.spec.fields[decision.field]
        codes = self.data.codes[index, decision.field].astype(np.int64)
        missing = codes == field_spec.missing_bin
        if decision.is_categorical:
            left = codes == decision.threshold_bin
        else:
            left = codes <= decision.threshold_bin
        return np.where(missing, decision.missing_left, left)


def train(data: BinnedDataset, params: TrainParams | None = None) -> TrainResult:
    """Convenience wrapper: ``train(load("higgs"))``."""
    return GBDTTrainer(data, params).fit()
