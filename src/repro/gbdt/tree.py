"""Array-encoded regression trees and the SRAM node-table format.

The paper maps a grown tree to a table "where each entry captures a vertex by
encoding its predicate ... and pointers to the vertex's left and right
children" (step 5, Sec. III-B); each BU walks that table with one SRAM access
per tree level.  :class:`Tree` keeps exactly that representation as parallel
NumPy arrays, so functional prediction, the Booster timing model, and the
node-table export all share one structure.

Predicate semantics per node:

* numerical field:  go left iff ``bin_code <= threshold_bin`` (missing code
  follows ``missing_left``);
* categorical field (one-hot one-vs-rest): go left iff
  ``bin_code == threshold_bin`` (missing follows ``missing_left``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.schema import DatasetSpec

__all__ = ["Tree", "NodeTable"]

_NO_CHILD = -1


@dataclass
class NodeTable:
    """The tree-as-table encoding broadcast into Booster SRAMs.

    Fields are *renumbered* among the tree's relevant fields (Sec. III-B:
    "the original field 228 may be renumbered as the new field 7"), so a BU
    only needs the relevant single-field columns.
    """

    relevant_fields: np.ndarray  # original field ids, position = new id
    field_renumbered: np.ndarray  # per node; -1 for leaves
    threshold_bin: np.ndarray
    is_categorical: np.ndarray
    missing_left: np.ndarray
    left: np.ndarray
    right: np.ndarray
    weight: np.ndarray
    is_leaf: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.left.shape[0])

    def entry_bytes(self) -> int:
        """Bytes per SRAM table entry.

        field# (1B) + bin (2B) + flags (1B) + two child pointers (2B each) or
        a leaf weight (4B) -> 8 bytes, matching the 2 KB SRAM / 256-entry
        sizing argument.
        """
        return 8

    def table_bytes(self) -> int:
        return self.n_nodes * self.entry_bytes()


class Tree:
    """A single regression tree grown by the trainer.

    Nodes are stored in creation (BFS-ish) order; node 0 is the root.  Leaf
    nodes carry the (learning-rate-scaled) output weight.
    """

    def __init__(self, spec: DatasetSpec) -> None:
        self.spec = spec
        self.field: list[int] = []
        self.threshold_bin: list[int] = []
        self.is_categorical: list[bool] = []
        self.missing_left: list[bool] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.weight: list[float] = []
        self.depth: list[int] = []
        self._frozen: dict[str, np.ndarray] | None = None

    # -- construction -----------------------------------------------------------

    def add_leaf(self, depth: int, weight: float) -> int:
        """Append a leaf node; returns its id."""
        return self._add(depth, -1, -1, False, False, weight)

    def add_split(
        self,
        depth: int,
        split_field: int,
        threshold_bin: int,
        is_categorical: bool,
        missing_left: bool,
    ) -> int:
        """Append an interior node (children attached later); returns its id."""
        if split_field < 0 or split_field >= self.spec.n_fields:
            raise ValueError(f"split field {split_field} out of range")
        return self._add(depth, split_field, threshold_bin, is_categorical, missing_left, 0.0)

    def _add(
        self,
        depth: int,
        split_field: int,
        threshold_bin: int,
        is_categorical: bool,
        missing_left: bool,
        weight: float,
    ) -> int:
        self._frozen = None
        self.field.append(split_field)
        self.threshold_bin.append(threshold_bin)
        self.is_categorical.append(is_categorical)
        self.missing_left.append(missing_left)
        self.left.append(_NO_CHILD)
        self.right.append(_NO_CHILD)
        self.weight.append(weight)
        self.depth.append(depth)
        return len(self.field) - 1

    def set_children(self, node: int, left: int, right: int) -> None:
        self._frozen = None
        self.left[node] = left
        self.right[node] = right

    # -- views ------------------------------------------------------------------

    def _arrays(self) -> dict[str, np.ndarray]:
        if self._frozen is None:
            self._frozen = {
                "field": np.asarray(self.field, dtype=np.int64),
                "threshold_bin": np.asarray(self.threshold_bin, dtype=np.int64),
                "is_categorical": np.asarray(self.is_categorical, dtype=bool),
                "missing_left": np.asarray(self.missing_left, dtype=bool),
                "left": np.asarray(self.left, dtype=np.int64),
                "right": np.asarray(self.right, dtype=np.int64),
                "weight": np.asarray(self.weight, dtype=np.float64),
                "depth": np.asarray(self.depth, dtype=np.int64),
            }
        return self._frozen

    @property
    def n_nodes(self) -> int:
        return len(self.field)

    @property
    def n_leaves(self) -> int:
        a = self._arrays()
        return int((a["left"] == _NO_CHILD).sum())

    @property
    def max_depth(self) -> int:
        a = self._arrays()
        return int(a["depth"].max()) if self.n_nodes else 0

    def relevant_fields(self) -> np.ndarray:
        """Original ids of fields referenced by interior nodes, sorted."""
        a = self._arrays()
        interior = a["field"][a["field"] >= 0]
        return np.unique(interior)

    def leaf_depths(self) -> np.ndarray:
        a = self._arrays()
        return a["depth"][a["left"] == _NO_CHILD]

    # -- prediction ---------------------------------------------------------------

    def go_left(self, codes_col: np.ndarray, node: int) -> np.ndarray:
        """Vector predicate evaluation for one node's field codes."""
        a = self._arrays()
        f = int(a["field"][node])
        spec_field = self.spec.fields[f]
        thr = int(a["threshold_bin"][node])
        miss_left = bool(a["missing_left"][node])
        missing = codes_col == spec_field.missing_bin
        if bool(a["is_categorical"][node]):
            left = codes_col == thr
        else:
            left = codes_col <= thr
        return np.where(missing, miss_left, left)

    def predict(
        self, codes: np.ndarray, return_depth: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Traverse all records; returns weights (and per-record path length).

        Vectorized level-by-level descent: every record holds a current node
        id; leaves stay put.  Path length counts interior hops, i.e. the
        number of SRAM table lookups a BU would perform.
        """
        a = self._arrays()
        n = codes.shape[0]
        cur = np.zeros(n, dtype=np.int64)
        depth_out = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_depth + 1):
            is_interior = a["left"][cur] != _NO_CHILD
            if not is_interior.any():
                break
            idx = np.nonzero(is_interior)[0]
            nodes = cur[idx]
            fields = a["field"][nodes]
            codes_sel = codes[idx, fields]
            thr = a["threshold_bin"][nodes]
            cat = a["is_categorical"][nodes]
            miss_left = a["missing_left"][nodes]
            missing_bins = self._missing_bins()[fields]
            missing = codes_sel == missing_bins
            left = np.where(cat, codes_sel == thr, codes_sel <= thr)
            left = np.where(missing, miss_left, left)
            cur[idx] = np.where(left, a["left"][nodes], a["right"][nodes])
            depth_out[idx] += 1
        out = a["weight"][cur]
        if return_depth:
            return out, depth_out
        return out

    def _missing_bins(self) -> np.ndarray:
        return np.asarray([f.missing_bin for f in self.spec.fields], dtype=np.int64)

    # -- export -------------------------------------------------------------------

    def node_table(self) -> NodeTable:
        """Export the SRAM table with relevant-field renumbering."""
        a = self._arrays()
        relevant = self.relevant_fields()
        renumber = {int(orig): new for new, orig in enumerate(relevant)}
        fr = np.array(
            [renumber[int(f)] if f >= 0 else -1 for f in a["field"]], dtype=np.int64
        )
        return NodeTable(
            relevant_fields=relevant,
            field_renumbered=fr,
            threshold_bin=a["threshold_bin"].copy(),
            is_categorical=a["is_categorical"].copy(),
            missing_left=a["missing_left"].copy(),
            left=a["left"].copy(),
            right=a["right"].copy(),
            weight=a["weight"].copy(),
            is_leaf=a["left"] == _NO_CHILD,
        )

    def validate(self) -> None:
        """Structural invariants: children exist, one parent each, leaves closed."""
        a = self._arrays()
        n = self.n_nodes
        interior = a["left"] != _NO_CHILD
        if (a["right"][interior] == _NO_CHILD).any():
            raise ValueError("interior node with only one child")
        kids = np.concatenate([a["left"][interior], a["right"][interior]])
        if kids.size and (kids.min() < 0 or kids.max() >= n):
            raise ValueError("child pointer out of range")
        if kids.size != np.unique(kids).size:
            raise ValueError("node has two parents")
        if n > 1 and kids.size != n - 1:
            raise ValueError("orphan nodes present")
