"""Histogram binning of gradient statistics (step 1 of Table I).

A histogram is, per bin: the record count and the summed gradient statistics
(G, H).  We store the three arrays *flattened across fields* (the group-by-
field view): bin ``offsets[j] + k`` is bin ``k`` of field ``j``, including
each field's trailing missing/absent bin.  Every record contributes exactly
one update per field -- the density property Booster's mapping exploits.

Also implements the smaller-child *subtraction trick* (Sec. II-A): after a
split, only the smaller child is binned explicitly; the larger child's
histogram is the parent's minus the smaller child's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.encoding import BinnedDataset

__all__ = ["Histogram", "HistogramBuilder"]


@dataclass
class Histogram:
    """Per-bin count / G / H, flattened across fields."""

    count: np.ndarray  # float64 (so subtraction never wraps), shape (n_bins,)
    grad: np.ndarray  # G per bin
    hess: np.ndarray  # H per bin

    def __post_init__(self) -> None:
        if not (self.count.shape == self.grad.shape == self.hess.shape):
            raise ValueError("histogram arrays must share a shape")

    @property
    def n_bins(self) -> int:
        return int(self.count.shape[0])

    def subtract(self, child: "Histogram") -> "Histogram":
        """Parent minus explicitly-binned child = the other child."""
        if child.n_bins != self.n_bins:
            raise ValueError("cannot subtract histograms of different sizes")
        return Histogram(
            count=self.count - child.count,
            grad=self.grad - child.grad,
            hess=self.hess - child.hess,
        )

    def totals_for_field(self, lo: int, hi: int) -> tuple[float, float, float]:
        """(count, G, H) summed over one field's bin range [lo, hi)."""
        return (
            float(self.count[lo:hi].sum()),
            float(self.grad[lo:hi].sum()),
            float(self.hess[lo:hi].sum()),
        )


class HistogramBuilder:
    """Vectorized histogram construction for one dataset.

    The builder owns the global bin space (offsets per field) and converts
    per-field codes into global bin indices once per call.  ``np.bincount``
    with weights is the NumPy analogue of the accumulate-into-SRAM operation
    each Booster BU performs.
    """

    def __init__(self, data: BinnedDataset) -> None:
        self.data = data
        self.offsets = data.bin_offsets()
        self.n_bins = int(self.offsets[-1])
        self._col_offsets = self.offsets[:-1].astype(np.int64)

    def build(self, index: np.ndarray, g: np.ndarray, h: np.ndarray) -> Histogram:
        """Bin the records selected by ``index`` (positions into the dataset).

        Exactly ``len(index) * n_fields`` bin updates are performed -- the
        quantity the timing models charge for step 1.
        """
        if index.size == 0:
            z = np.zeros(self.n_bins, dtype=np.float64)
            return Histogram(count=z.copy(), grad=z.copy(), hess=z.copy())
        codes = self.data.codes[index].astype(np.int64)
        codes += self._col_offsets[None, :]
        flat = codes.ravel()
        n_fields = self.data.n_fields
        gw = np.repeat(g[index], n_fields)
        hw = np.repeat(h[index], n_fields)
        count = np.bincount(flat, minlength=self.n_bins).astype(np.float64)
        grad = np.bincount(flat, weights=gw, minlength=self.n_bins)
        hess = np.bincount(flat, weights=hw, minlength=self.n_bins)
        return Histogram(count=count, grad=grad, hess=hess)

    def build_brute_force(self, index: np.ndarray, g: np.ndarray, h: np.ndarray) -> Histogram:
        """Reference implementation (pure loops) used only by tests."""
        count = np.zeros(self.n_bins, dtype=np.float64)
        grad = np.zeros(self.n_bins, dtype=np.float64)
        hess = np.zeros(self.n_bins, dtype=np.float64)
        for i in index:
            for j in range(self.data.n_fields):
                b = int(self.offsets[j]) + int(self.data.codes[i, j])
                count[b] += 1.0
                grad[b] += g[i]
                hess[b] += h[i]
        return Histogram(count=count, grad=grad, hess=hess)

    def field_slice(self, field: int) -> slice:
        """Global-bin slice of one field (missing bin included)."""
        return slice(int(self.offsets[field]), int(self.offsets[field + 1]))
