"""Histogram binning of gradient statistics (step 1 of Table I).

A histogram is, per bin: the record count and the summed gradient statistics
(G, H).  We store the three arrays *flattened across fields* (the group-by-
field view): bin ``offsets[j] + k`` is bin ``k`` of field ``j``, including
each field's trailing missing/absent bin.  Every record contributes exactly
one update per field -- the density property Booster's mapping exploits.

Also implements the smaller-child *subtraction trick* (Sec. II-A): after a
split, only the smaller child is binned explicitly; the larger child's
histogram is the parent's minus the smaller child's.

Two vectorization layers keep step 1 out of interpreted Python:

* the **global-bin code matrix** (``codes + offsets``, int64) is computed
  once per dataset in :meth:`HistogramBuilder.__init__` instead of being
  re-materialized on every ``build`` call;
* :meth:`HistogramBuilder.build_grouped` bins the records of *many* vertices
  in one ``np.bincount`` over a composite ``vertex x global-bin`` key --
  the level-wise trainer's whole-level pass and the vertex-by-vertex
  trainer's sibling builds both run through this core (``build`` is the
  single-group special case).  When the composite bin space exceeds
  :data:`GROUPED_FALLBACK_CELLS` the accumulation arrays no longer fit in
  cache and the builder falls back to bit-identical per-group bincounts.

Bit-exactness note: ``np.bincount`` accumulates weights in input order, and
the grouped composite key keeps each (group, bin) cell's updates in the same
record order a per-group ``build`` call would use, so grouped and per-group
histograms are identical to the last ulp -- which is what lets the grouped
trainers produce byte-identical models (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.encoding import BinnedDataset

__all__ = ["GROUPED_FALLBACK_CELLS", "Histogram", "HistogramBuilder"]

#: Composite-key cell budget (``n_groups * n_bins``) above which
#: :meth:`HistogramBuilder.build_grouped_arrays` switches from the single
#: composite-key ``np.bincount`` to a per-group build.  The composite key
#: accumulates into three dense float64 arrays of ``n_groups * n_bins``
#: cells; once those fall out of last-level cache the scattered updates
#: hit DRAM and the "one big bincount" loses badly to many small ones
#: (measured 8-14x slower at 16-31M cells on this container, crossover
#: between 4M and 8M cells at realistic 24-100 records/group).  Below the
#: threshold the composite key wins whenever groups are small -- the deep
#: level-wise case -- so the default stays on the grouped path there.
GROUPED_FALLBACK_CELLS = 1 << 22


@dataclass
class Histogram:
    """Per-bin count / G / H, flattened across fields."""

    count: np.ndarray  # float64 (so subtraction never wraps), shape (n_bins,)
    grad: np.ndarray  # G per bin
    hess: np.ndarray  # H per bin

    def __post_init__(self) -> None:
        if not (self.count.shape == self.grad.shape == self.hess.shape):
            raise ValueError("histogram arrays must share a shape")

    @property
    def n_bins(self) -> int:
        return int(self.count.shape[0])

    def subtract(self, child: "Histogram") -> "Histogram":
        """Parent minus explicitly-binned child = the other child."""
        if child.n_bins != self.n_bins:
            raise ValueError("cannot subtract histograms of different sizes")
        return Histogram(
            count=self.count - child.count,
            grad=self.grad - child.grad,
            hess=self.hess - child.hess,
        )

    def totals_for_field(self, lo: int, hi: int) -> tuple[float, float, float]:
        """(count, G, H) summed over one field's bin range [lo, hi)."""
        return (
            float(self.count[lo:hi].sum()),
            float(self.grad[lo:hi].sum()),
            float(self.hess[lo:hi].sum()),
        )


class HistogramBuilder:
    """Vectorized histogram construction for one dataset.

    The builder owns the global bin space (offsets per field) and the
    precomputed global-bin code matrix.  ``np.bincount`` with weights is the
    NumPy analogue of the accumulate-into-SRAM operation each Booster BU
    performs.
    """

    def __init__(
        self, data: BinnedDataset, grouped_fallback_cells: int | None = None
    ) -> None:
        self.data = data
        self.offsets = data.bin_offsets()
        self.n_bins = int(self.offsets[-1])
        #: Cell budget for the composite-key grouped path; see
        #: :data:`GROUPED_FALLBACK_CELLS`.  Overridable per instance so the
        #: cache-residency fallback can be forced (or disabled) in tests.
        self.grouped_fallback_cells = (
            GROUPED_FALLBACK_CELLS if grouped_fallback_cells is None else int(grouped_fallback_cells)
        )
        self._col_offsets = self.offsets[:-1].astype(np.int64)
        #: Global-bin codes (``codes + per-field offsets``), materialized once:
        #: every ``build``/``build_grouped`` call used to pay an astype + add
        #: over its slice; now binning is a pure gather + bincount.
        self._global_codes = data.codes.astype(np.int64) + self._col_offsets[None, :]

    def _accumulate(
        self, flat: np.ndarray, index: np.ndarray, g: np.ndarray, h: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared bincount core: ``flat`` composite keys, one per (record, field)."""
        n_fields = self.data.n_fields
        gw = np.repeat(g[index], n_fields)
        hw = np.repeat(h[index], n_fields)
        count = np.bincount(flat, minlength=length).astype(np.float64)
        grad = np.bincount(flat, weights=gw, minlength=length)
        hess = np.bincount(flat, weights=hw, minlength=length)
        return count, grad, hess

    def build(self, index: np.ndarray, g: np.ndarray, h: np.ndarray) -> Histogram:
        """Bin the records selected by ``index`` (positions into the dataset).

        Exactly ``len(index) * n_fields`` bin updates are performed -- the
        quantity the timing models charge for step 1.
        """
        if index.size == 0:
            z = np.zeros(self.n_bins, dtype=np.float64)
            return Histogram(count=z.copy(), grad=z.copy(), hess=z.copy())
        flat = self._global_codes[index].ravel()
        count, grad, hess = self._accumulate(flat, index, g, h, self.n_bins)
        return Histogram(count=count, grad=grad, hess=hess)

    def build_grouped(
        self,
        index: np.ndarray,
        group_of: np.ndarray,
        n_groups: int,
        g: np.ndarray,
        h: np.ndarray,
    ) -> list[Histogram]:
        """Bin many vertices' records in ONE pass (the level-wise step 1).

        ``index`` selects records (positions into the dataset) and
        ``group_of`` assigns each selected record to a group in
        ``[0, n_groups)``; the records of every group are binned through a
        single composite ``group x global-bin`` key ``np.bincount``, instead
        of one ``build`` call per group.  Returns one :class:`Histogram` per
        group (rows of one backing matrix).

        Each (group, bin) cell accumulates its records in ``index`` order, so
        the result is bit-identical to ``build(index[group_of == k], g, h)``
        for every ``k`` whenever ``index`` is grouped-stably ordered (e.g.
        ascending record order, as the trainers produce).
        """
        count, grad, hess = self.build_grouped_arrays(index, group_of, n_groups, g, h)
        return [
            Histogram(count=count[k], grad=grad[k], hess=hess[k]) for k in range(n_groups)
        ]

    def build_grouped_arrays(
        self,
        index: np.ndarray,
        group_of: np.ndarray,
        n_groups: int,
        g: np.ndarray,
        h: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`build_grouped` returning the raw ``(n_groups, n_bins)``
        count/grad/hess matrices (no per-group :class:`Histogram` objects) --
        the form the level-wise trainer consumes, where sibling histograms
        are derived with one whole-matrix subtraction."""
        if n_groups < 0:
            raise ValueError("n_groups must be non-negative")
        if index.shape != group_of.shape:
            raise ValueError("index and group_of must match in shape")
        if index.size and (group_of.min() < 0 or group_of.max() >= n_groups):
            raise ValueError("group ids must lie in [0, n_groups)")
        n_bins = self.n_bins
        if index.size == 0:
            zeros = np.zeros((3, n_groups, n_bins), dtype=np.float64)
            return zeros[0], zeros[1], zeros[2]
        if n_groups * n_bins > self.grouped_fallback_cells:
            return self._build_per_group_arrays(index, group_of, n_groups, g, h)
        base = (group_of.astype(np.int64) * n_bins)[:, None]
        flat = (self._global_codes[index] + base).ravel()
        count, grad, hess = self._accumulate(flat, index, g, h, n_groups * n_bins)
        return (
            count.reshape(n_groups, n_bins),
            grad.reshape(n_groups, n_bins),
            hess.reshape(n_groups, n_bins),
        )

    def _build_per_group_arrays(
        self,
        index: np.ndarray,
        group_of: np.ndarray,
        n_groups: int,
        g: np.ndarray,
        h: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cache-residency fallback for :meth:`build_grouped_arrays`.

        One small ``np.bincount`` per group instead of one composite-key
        bincount: each group's accumulation arrays are ``n_bins`` cells and
        stay cache-resident regardless of how many groups the level has.

        Bit-identical to the composite-key path: the stable argsort keeps
        each group's records in ``index`` order, which is the order the
        composite key's (group, bin) cells accumulate in.
        """
        n_bins = self.n_bins
        count = np.zeros((n_groups, n_bins), dtype=np.float64)
        grad = np.zeros((n_groups, n_bins), dtype=np.float64)
        hess = np.zeros((n_groups, n_bins), dtype=np.float64)
        order = np.argsort(group_of, kind="stable")
        sizes = np.bincount(group_of, minlength=n_groups)
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        for k in range(n_groups):
            sel = order[bounds[k] : bounds[k + 1]]
            if sel.size == 0:
                continue
            idx = index[sel]
            flat = self._global_codes[idx].ravel()
            count[k], grad[k], hess[k] = self._accumulate(flat, idx, g, h, n_bins)
        return count, grad, hess

    def build_brute_force(self, index: np.ndarray, g: np.ndarray, h: np.ndarray) -> Histogram:
        """Reference implementation (pure loops) used only by tests."""
        count = np.zeros(self.n_bins, dtype=np.float64)
        grad = np.zeros(self.n_bins, dtype=np.float64)
        hess = np.zeros(self.n_bins, dtype=np.float64)
        for i in index:
            for j in range(self.data.n_fields):
                b = int(self.offsets[j]) + int(self.data.codes[i, j])
                count[b] += 1.0
                grad[b] += g[i]
                hess[b] += h[i]
        return Histogram(count=count, grad=grad, hess=hess)

    def field_slice(self, field: int) -> slice:
        """Global-bin slice of one field (missing bin included)."""
        return slice(int(self.offsets[field]), int(self.offsets[field + 1]))
