"""Arrival-trace generation and replay for the serving simulator.

Two synthetic generators (homogeneous Poisson and diurnal-modulated
Poisson via thinning) plus a JSONL trace replay.  Generation is driven
entirely by a caller-seeded :func:`numpy.random.default_rng` stream, so the
same seed and parameters reproduce the identical trace in any process --
the determinism the content-keyed result store depends on.

Recorded traces are one JSON object per line::

    {"t": 0.0125}
    {"t": 0.0131, "priority": 2}

``t`` is the arrival time in seconds (any origin; the simulator works with
differences), ``priority`` is optional (default 0; lower is served first
under the ``priority`` queue discipline).  :func:`trace_digest` hashes the
file *content*, which is what scenario cache keys record -- moving a trace
file does not change the experiment, editing it does.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import NDArray

from .params import ServingParams

__all__ = [
    "build_arrivals",
    "diurnal_times",
    "load_trace",
    "poisson_times",
    "trace_digest",
]

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]


def poisson_times(qps: float, duration_s: float, rng: np.random.Generator) -> FloatArray:
    """Arrival times of a rate-``qps`` Poisson process on ``[0, duration_s)``.

    Exponential inter-arrival gaps, drawn in vectorized chunks sized to
    overshoot the expected count; the cumulative sum is truncated at the
    horizon.  Sorted, possibly empty (a thin load over a short horizon can
    legitimately draw zero arrivals).
    """
    if qps <= 0 or duration_s <= 0:
        raise ValueError("qps and duration_s must be positive")
    expected = qps * duration_s
    chunk = int(expected + 6.0 * math.sqrt(expected + 1.0)) + 16
    times = np.empty(0, dtype=np.float64)
    while times.size == 0 or times[-1] < duration_s:
        gaps = rng.exponential(1.0 / qps, size=chunk)
        start = float(times[-1]) if times.size else 0.0
        times = np.concatenate([times, start + np.cumsum(gaps)])
    return times[times < duration_s]


def diurnal_times(
    qps: float,
    duration_s: float,
    rng: np.random.Generator,
    amplitude: float = 0.5,
    periods: float = 1.0,
) -> FloatArray:
    """Inhomogeneous Poisson arrivals with a diurnal rate profile.

    The rate is ``qps * (1 - amplitude * cos(2*pi*periods*t/duration))``:
    mean ``qps`` over a whole number of cycles, trough at t=0, peak
    ``qps * (1 + amplitude)`` mid-cycle.  Sampled by thinning a
    homogeneous process at the peak rate, the textbook exact method for
    inhomogeneous Poisson streams.
    """
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must lie in [0, 1), got {amplitude!r}")
    peak = qps * (1.0 + amplitude)
    candidates = poisson_times(peak, duration_s, rng)
    if candidates.size == 0:
        return candidates
    rate = qps * (1.0 - amplitude * np.cos(2.0 * np.pi * periods * candidates / duration_s))
    keep = rng.random(candidates.size) < rate / peak
    return candidates[keep]


def trace_digest(path: str) -> str:
    """Content digest of a trace file (what scenario cache keys record)."""
    p = Path(path)
    if not p.is_file():
        raise ValueError(f"no such trace file: {path}")
    return hashlib.sha256(p.read_bytes()).hexdigest()[:20]


def load_trace(path: str) -> tuple[FloatArray, IntArray]:
    """Parse a JSONL arrival trace into ``(times, priorities)`` arrays.

    Lines must be JSON objects with a finite, non-negative ``t`` (seconds)
    and an optional integer ``priority``; blank lines are tolerated, any
    other malformation raises with the offending line number.  Arrivals
    are returned sorted by time (stable, so equal-time requests keep file
    order).
    """
    p = Path(path)
    if not p.is_file():
        raise ValueError(f"no such trace file: {path}")
    times: list[float] = []
    priorities: list[int] = []
    for lineno, line in enumerate(p.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            d: Any = json.loads(line)
        except Exception:
            raise ValueError(f"{path}:{lineno}: not valid JSON") from None
        if not isinstance(d, dict) or "t" not in d:
            raise ValueError(f'{path}:{lineno}: expected an object with a "t" field')
        t = d["t"]
        if not isinstance(t, (int, float)) or isinstance(t, bool) or not (
            math.isfinite(t) and t >= 0
        ):
            raise ValueError(
                f'{path}:{lineno}: "t" must be a finite, non-negative number, got {t!r}'
            )
        priority = d.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError(
                f'{path}:{lineno}: "priority" must be an integer, got {priority!r}'
            )
        times.append(float(t))
        priorities.append(priority)
    t_arr = np.asarray(times, dtype=np.float64)
    p_arr = np.asarray(priorities, dtype=np.int64)
    order = np.argsort(t_arr, kind="stable")
    return t_arr[order], p_arr[order]


def build_arrivals(params: ServingParams, seed: int) -> tuple[FloatArray, IntArray]:
    """The arrival trace for one scenario: ``(times, priorities)``.

    Generated arrivals carry priority 0 everywhere (the ``priority``
    discipline then degenerates to FIFO, documented behavior); recorded
    traces replay their own priorities.  When ``params.trace_sha`` is
    pinned, the file on disk must still match it -- a trace edited after
    the scenario was keyed is an error, not a silent different experiment.
    """
    if params.arrival == "trace":
        if params.trace_path is None:
            raise ValueError("arrival='trace' scenario has no trace_path to replay")
        if params.trace_sha is not None:
            actual = trace_digest(params.trace_path)
            if actual != params.trace_sha:
                raise ValueError(
                    f"trace {params.trace_path} content digest {actual} does not "
                    f"match the scenario's recorded trace_sha {params.trace_sha}; "
                    "the file changed since the scenario was keyed"
                )
        return load_trace(params.trace_path)
    rng = np.random.default_rng(seed)
    if params.arrival == "diurnal":
        times = diurnal_times(
            params.qps,
            params.duration_s,
            rng,
            amplitude=params.diurnal_amplitude,
            periods=params.diurnal_periods,
        )
    else:
        times = poisson_times(params.qps, params.duration_s, rng)
    return times, np.zeros(times.size, dtype=np.int64)
