"""Traffic-driven serving simulation on top of the timing models.

The paper's evaluation stops at one-batch inference numbers; this package
adds the arrival-trace layer the ROADMAP's "serving heavy traffic" north
star needs.  A :class:`ServingParams` describes an offered load (Poisson or
diurnal-modulated Poisson generators, or a recorded JSONL trace), a
batching policy (immediate, max-batch-N, timeout-T microbatching), and a
queue discipline (FIFO or priority); :func:`simulate` replays that load
through a single-server discrete-event loop whose batch costs come from
the same :class:`~repro.gbdt.workprofile.InferenceWork` scaling the batch
``repro inference`` path uses; :class:`ServingResult` carries the
per-system latency distribution (p50/p99/p999), sustained QPS, queue-depth
trajectory, and saturation verdict.

Everything here is deterministic: arrival generation uses only the
scenario-seeded :func:`numpy.random.default_rng` stream, the event loop is
a pure function of its inputs, and no wall-clock value ever reaches a
result -- the same seed and trace produce a bit-identical
:class:`ServingResult` in any process (the property the sweep layer's
content-keyed :class:`~repro.experiments.cache.ResultStore` relies on).

The package is dependency-free within ``repro`` (NumPy only), so the
experiments layer can attach :class:`ServingParams` to a
:class:`~repro.experiments.scenario.ScenarioSpec` and the executor can
drive :func:`simulate` without import cycles.
"""

from .arrivals import build_arrivals, diurnal_times, load_trace, poisson_times, trace_digest
from .params import ARRIVAL_KINDS, POLICIES, QUEUE_DISCIPLINES, ServingParams
from .result import ServingResult, ServingStats, summarize
from .simulator import QueueTrace, simulate
from .stats import percentile, percentile_label

__all__ = [
    "ARRIVAL_KINDS",
    "POLICIES",
    "QUEUE_DISCIPLINES",
    "QueueTrace",
    "ServingParams",
    "ServingResult",
    "ServingStats",
    "build_arrivals",
    "diurnal_times",
    "load_trace",
    "percentile",
    "percentile_label",
    "poisson_times",
    "simulate",
    "summarize",
    "trace_digest",
]
