"""Serving results: per-system latency/QPS statistics, JSON round-trip.

:class:`ServingResult` is the third result kind of the sweep layer (beside
the training :class:`~repro.sim.results.ComparisonResult` and the batch
:class:`~repro.sim.results.InferenceResult`): one dataset, one offered
load, a :class:`ServingStats` per simulated system.  It follows its
siblings' mold exactly -- ``to_dict``/``from_dict`` round-trip, a
``speedup`` over the shared baseline (on the p99 tail, the number the
ROADMAP's serving story cares about), and a human-readable ``table()``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dc_fields
from typing import Any

from .simulator import QueueTrace
from .stats import percentile, percentile_label

__all__ = ["ServingStats", "ServingResult", "summarize"]

#: Stored queue-depth trajectories are downsampled to at most this many
#: ``[time, depth]`` points: enough to see ramp/saturation shape, small
#: enough that a saturated million-request run does not bloat the store.
MAX_TRAJECTORY_POINTS = 128


@dataclass
class ServingStats:
    """Latency/throughput summary of one system under one offered load.

    Latencies are milliseconds; ``p99_label``/``p999_label`` state the
    statistic honestly (``p99~max(n=40)`` when the sample cannot support
    an interior tail estimate).  ``saturated`` is the capacity verdict:
    the offered arrival rate exceeds the best sustainable batch rate
    ``capacity_qps = max_k k / service_seconds(k)``, so the queue grows
    without bound and latency is ramp-shaped rather than stationary.
    """

    n_requests: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    p99_label: str
    p999_label: str
    sustained_qps: float
    offered_qps: float
    capacity_qps: float
    saturated: bool
    mean_batch: float
    max_queue_depth: int
    queue_depth: list[list[float]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ServingStats":
        kwargs: dict[str, Any] = {k: v for k, v in d.items() if k in _STAT_FIELDS}
        kwargs["queue_depth"] = [
            [float(t), float(depth)] for t, depth in kwargs.get("queue_depth", [])
        ]
        return cls(**kwargs)


_STAT_FIELDS = frozenset(f.name for f in dc_fields(ServingStats))


def _downsample(samples: list[tuple[float, int]], limit: int) -> list[list[float]]:
    """Evenly thin the dispatch-grid depth samples to at most ``limit``."""
    if len(samples) <= limit:
        return [[float(t), float(d)] for t, d in samples]
    step = (len(samples) - 1) / (limit - 1)
    picked = sorted({round(k * step) for k in range(limit)})
    return [[float(samples[j][0]), float(samples[j][1])] for j in picked]


def summarize(
    trace: QueueTrace, *, offered_qps: float, capacity_qps: float
) -> ServingStats:
    """Reduce one system's :class:`QueueTrace` to stored statistics."""
    n = int(trace.latencies_s.size)
    if n == 0:
        # A thin load over a short horizon can legitimately draw zero
        # arrivals; degenerate zeros (clearly labeled) beat NaN in JSON.
        return ServingStats(
            n_requests=0,
            mean_ms=0.0,
            p50_ms=0.0,
            p99_ms=0.0,
            p999_ms=0.0,
            max_ms=0.0,
            p99_label="p99 (n=0)",
            p999_label="p999 (n=0)",
            sustained_qps=0.0,
            offered_qps=float(offered_qps),
            capacity_qps=float(capacity_qps),
            saturated=False,
            mean_batch=0.0,
            max_queue_depth=0,
        )
    ms = [float(v) * 1e3 for v in trace.latencies_s]
    span = trace.last_finish_s - trace.first_arrival_s
    return ServingStats(
        n_requests=n,
        mean_ms=float(sum(ms) / n),
        p50_ms=percentile(ms, 50),
        p99_ms=percentile(ms, 99),
        p999_ms=percentile(ms, 99.9),
        max_ms=float(max(ms)),
        p99_label=percentile_label(99, n),
        p999_label=percentile_label(99.9, n),
        sustained_qps=float(n / span) if span > 0 else 0.0,
        offered_qps=float(offered_qps),
        capacity_qps=float(capacity_qps),
        saturated=bool(capacity_qps > 0 and offered_qps > capacity_qps),
        mean_batch=float(sum(trace.batch_sizes) / len(trace.batch_sizes))
        if trace.batch_sizes
        else 0.0,
        max_queue_depth=int(trace.max_queue_depth),
        queue_depth=_downsample(trace.queue_depth, MAX_TRAJECTORY_POINTS),
    )


@dataclass
class ServingResult:
    """Serving comparison on one dataset under one offered load."""

    dataset: str
    arrival: str
    policy: str
    offered_qps: float
    systems: dict[str, ServingStats]
    baseline: str = "ideal-32-core"
    params: dict[str, Any] = field(default_factory=dict)

    def stats(self, system: str) -> ServingStats:
        try:
            return self.systems[system]
        except KeyError:
            raise ValueError(
                f"system {system!r} is not part of this comparison "
                f"(have: {sorted(self.systems)})"
            ) from None

    def p99_ms(self, system: str) -> float:
        return self.stats(system).p99_ms

    def speedup(self, system: str, over: str | None = None) -> float:
        """p99-latency speedup of ``system`` over the baseline."""
        mine = self.stats(system).p99_ms
        if mine <= 0:
            raise ValueError(f"non-positive p99 latency for {system!r}")
        return self.stats(over or self.baseline).p99_ms / mine

    def to_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "arrival": self.arrival,
            "policy": self.policy,
            "offered_qps": self.offered_qps,
            "baseline": self.baseline,
            "systems": {name: st.to_dict() for name, st in self.systems.items()},
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ServingResult":
        return cls(
            dataset=d["dataset"],
            arrival=d.get("arrival", "poisson"),
            policy=d.get("policy", "batch"),
            offered_qps=float(d.get("offered_qps", 0.0)),
            systems={
                name: ServingStats.from_dict(st) for name, st in d["systems"].items()
            },
            baseline=d.get("baseline", "ideal-32-core"),
            params=dict(d.get("params", {})),
        )

    def table(self) -> str:
        """Human-readable serving table (p50/p99/QPS per system)."""
        from ..sim.report import render_table

        rows = []
        for name, st in self.systems.items():
            if self.baseline in self.systems and st.p99_ms > 0:
                speedup_cell = f"{self.speedup(name):.2f}x"
            else:
                speedup_cell = "-"
            rows.append(
                [
                    name,
                    f"{st.p50_ms:.4g}",
                    f"{st.p99_ms:.4g}",
                    f"{st.p999_ms:.4g}",
                    f"{st.sustained_qps:.4g}",
                    "yes" if st.saturated else "no",
                    speedup_cell,
                ]
            )
        label = next(
            (st.p99_label for st in self.systems.values() if st.n_requests), "p99"
        )
        title = (
            f"serving: {self.dataset}, {self.arrival} {self.offered_qps:g} qps, "
            f"policy={self.policy} ({label})"
        )
        return render_table(
            ["system", "p50 (ms)", "p99 (ms)", "p999 (ms)", "QPS", "saturated", "p99 speedup"],
            rows,
            title=title,
        )
