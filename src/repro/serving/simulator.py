"""Single-server discrete-event loop: arrivals x batching policy x queue.

The server is the accelerator (or baseline) running batch inference: at
any moment it is either idle or executing one batch whose cost comes from
the caller's ``service_seconds(n_records)`` function (in practice a
memoized :meth:`~repro.baselines.base.HardwareModel.inference_seconds`
over :meth:`~repro.gbdt.workprofile.InferenceWork.scaled` work).  Requests
queue while it is busy; the batching policy decides when the next batch
launches and how many queued requests it takes:

* ``immediate`` -- one request per batch, launched as soon as the server
  is free and a request is waiting;
* ``batch`` -- greedy max-batch-N: when the server frees, take up to
  ``max_batch`` of the requests already waiting;
* ``timeout`` -- microbatching: once the server is free and the
  next-to-be-served request is waiting, hold the batch open up to
  ``timeout_s`` for it to fill to ``max_batch``, then launch.

The queue discipline orders the pool: ``fifo`` by arrival, ``priority``
by the trace's priority value (lower first; ties by arrival).  Everything
is a pure function of its inputs -- no randomness, no wall clock -- so
identical inputs give bit-identical outputs in any process.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from .params import POLICIES, QUEUE_DISCIPLINES

__all__ = ["QueueTrace", "simulate"]

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]


@dataclass
class QueueTrace:
    """Raw outcome of one simulated system: per-request latencies plus the
    queue/batch telemetry the summary statistics are computed from.

    ``latencies_s`` is indexed in arrival-time order (stable-sorted);
    ``queue_depth`` samples ``(dispatch time, requests left waiting)`` at
    every batch launch, the natural event grid of a single-server queue.
    """

    latencies_s: FloatArray
    batch_sizes: list[int] = field(default_factory=list)
    queue_depth: list[tuple[float, int]] = field(default_factory=list)
    first_arrival_s: float = 0.0
    last_finish_s: float = 0.0
    max_queue_depth: int = 0


def simulate(
    times: FloatArray,
    priorities: IntArray,
    *,
    policy: str,
    max_batch: int,
    timeout_s: float,
    queue: str,
    records_per_request: int,
    service_seconds: Callable[[int], float],
) -> QueueTrace:
    """Replay one arrival trace through the single-server batch queue."""
    if policy not in POLICIES:
        raise ValueError(f"unknown batching policy {policy!r}; known: {list(POLICIES)}")
    if queue not in QUEUE_DISCIPLINES:
        raise ValueError(
            f"unknown queue discipline {queue!r}; known: {list(QUEUE_DISCIPLINES)}"
        )
    if max_batch < 1 or records_per_request < 1:
        raise ValueError("max_batch and records_per_request must be >= 1")
    if not math.isfinite(timeout_s) or timeout_s < 0:
        raise ValueError(f"timeout_s must be finite and >= 0, got {timeout_s!r}")
    order = np.argsort(times, kind="stable")
    ts = np.asarray(times, dtype=np.float64)[order]
    ranks = np.asarray(priorities, dtype=np.int64)[order]
    n = int(ts.size)
    latencies = np.zeros(n, dtype=np.float64)
    if n == 0:
        return QueueTrace(latencies_s=latencies)

    use_priority = queue == "priority"
    cap = 1 if policy == "immediate" else max_batch
    # Pool entries are (rank, arrival, index): heap order IS the service
    # order -- FIFO collapses rank to 0, priority serves lower values first.
    pool: list[tuple[int, float, int]] = []
    i = 0
    free_at = 0.0
    max_depth = 0
    batch_sizes: list[int] = []
    depth_samples: list[tuple[float, int]] = []

    def admit_until(t: float) -> int:
        """Move every arrival at or before ``t`` into the pool."""
        nonlocal i, max_depth
        admitted = 0
        while i < n and float(ts[i]) <= t:
            rank = int(ranks[i]) if use_priority else 0
            heapq.heappush(pool, (rank, float(ts[i]), i))
            i += 1
            admitted += 1
        max_depth = max(max_depth, len(pool))
        return admitted

    while i < n or pool:
        if not pool:
            admit_until(float(ts[i]))  # idle server: jump to the next arrival
            continue
        # The batch window opens when the server is free AND the request it
        # would serve first is waiting.
        open_t = max(free_at, pool[0][1])
        if admit_until(open_t):
            continue  # new arrivals may change the (priority) head; recompute
        dispatch_t = open_t
        if policy == "timeout" and timeout_s > 0 and len(pool) < cap:
            deadline = open_t + timeout_s
            while i < n and len(pool) < cap and float(ts[i]) <= deadline:
                t_next = float(ts[i])
                admit_until(t_next)
                dispatch_t = max(open_t, t_next)
            if len(pool) < cap:
                # The window expired unfilled; the server launches what it
                # has at the deadline (it could not know nothing more was
                # coming).
                dispatch_t = deadline
        k = min(cap, len(pool))
        members = [heapq.heappop(pool) for _ in range(k)]
        cost = float(service_seconds(k * records_per_request))
        if not math.isfinite(cost) or cost <= 0:
            raise ValueError(
                f"service_seconds({k * records_per_request}) must be finite "
                f"and positive, got {cost!r}"
            )
        done_t = dispatch_t + cost
        for _, arrival, idx in members:
            latencies[idx] = done_t - arrival
        free_at = done_t
        batch_sizes.append(k)
        depth_samples.append((dispatch_t, len(pool)))

    return QueueTrace(
        latencies_s=latencies,
        batch_sizes=batch_sizes,
        queue_depth=depth_samples,
        first_arrival_s=float(ts[0]),
        last_finish_s=free_at,
        max_queue_depth=max_depth,
    )
