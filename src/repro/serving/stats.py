"""Percentile estimation with honest small-sample labeling.

Shared by the serving latency statistics and ``repro bench``'s timing
cells.  The estimator is the classic linear-interpolation one (NumPy's
default ``method="linear"``): rank position ``(n - 1) * q / 100``,
interpolated between the two bracketing order statistics.  That is a
well-defined number for any ``n >= 1`` -- but for small samples a high
percentile is *not an interior estimate*: with fewer than
``ceil(100 / (100 - q))`` samples the rank position lands inside the top
inter-sample gap and the estimate collapses to (essentially) the sample
maximum.  ``repro bench --repeats 3`` reporting that value as "p99" was
the bug this module fixes: the number itself was fine, the label lied.
:func:`percentile_label` makes the collapse explicit (``p99~max(n=3)``)
so every consumer renders the statistic honestly.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["percentile", "percentile_label", "min_samples_for_percentile"]


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of ``values``.

    ``q`` is in percent (``50`` = median).  Raises on an empty sample --
    callers that may see one decide the degenerate rendering themselves.
    """
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must lie in [0, 100], got {q!r}")
    return float(np.percentile(vals, q, method="linear"))


def min_samples_for_percentile(q: float) -> int:
    """Smallest ``n`` for which the ``q``-th percentile is an interior
    estimate (the interpolation rank falls below the top order statistic's
    gap) rather than (essentially) the sample maximum."""
    if not 0 <= q < 100:
        raise ValueError(f"percentile q must lie in [0, 100), got {q!r}")
    # Round off float noise first: 100 / (100 - 99.9) computes to
    # 1000.0000000000568, and a naive ceil would demand 1001 samples.
    return max(1, math.ceil(round(100.0 / (100.0 - q), 9)))


def percentile_label(q: float, n: int) -> str:
    """Honest display label for the ``q``-th percentile of ``n`` samples.

    ``"p99"`` when the sample supports an interior estimate,
    ``"p99~max(n=3)"`` when it does not (the estimate is essentially the
    observed maximum) -- so tables never dress a max up as a tail
    percentile.
    """
    name = f"p{q:g}".replace(".", "")
    if n >= min_samples_for_percentile(q):
        return name
    return f"{name}~max(n={n})"
