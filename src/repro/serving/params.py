"""Declarative description of one offered serving load.

A :class:`ServingParams` is the serving-side half of a scenario: how
requests arrive (generator or recorded trace), how the server batches them,
and how the queue orders them.  It is frozen and JSON-round-trippable so it
can ride inside :class:`~repro.experiments.scenario.ScenarioSpec` and
participate in the content-derived cache keys -- with one deliberate
exception: ``trace_path`` is *where* a recorded trace lives on this host,
not *what* it contains, so scenario keys hash ``trace_sha`` (the trace
content digest) and drop the path (see ``ScenarioSpec.cache_key``).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields as dc_fields
from typing import Any

__all__ = ["ARRIVAL_KINDS", "POLICIES", "QUEUE_DISCIPLINES", "ServingParams"]

#: How requests arrive: a homogeneous Poisson process, a diurnal-modulated
#: (inhomogeneous) Poisson process, or a recorded JSONL trace replay.
ARRIVAL_KINDS = ("poisson", "diurnal", "trace")

#: How the server forms batches: one request per batch, greedy up to
#: ``max_batch`` whenever the server frees, or a timeout-T microbatch
#: window that waits up to ``timeout_ms`` for the batch to fill.
POLICIES = ("immediate", "batch", "timeout")

#: How queued requests are ordered: arrival order, or by the trace's
#: ``priority`` field (lower value served first; ties by arrival).
QUEUE_DISCIPLINES = ("fifo", "priority")


@dataclass(frozen=True)
class ServingParams:
    """One offered load: arrival process x batching policy x queue model.

    ``qps``/``duration_s`` parameterize the generators (``trace`` replays
    ignore them for arrival times but keep ``qps`` as the nominal offered
    rate where recorded); ``diurnal_amplitude`` in ``[0, 1)`` modulates the
    rate as ``qps * (1 - amplitude * cos(2*pi*periods*t/duration))`` --
    mean ``qps``, peak ``qps * (1 + amplitude)``; ``records_per_request``
    sets how much inference work one request carries.
    """

    arrival: str = "poisson"
    qps: float = 200.0
    duration_s: float = 5.0
    policy: str = "batch"
    max_batch: int = 32
    timeout_ms: float = 2.0
    queue: str = "fifo"
    records_per_request: int = 1
    diurnal_amplitude: float = 0.5
    diurnal_periods: float = 1.0
    trace_path: str | None = None
    trace_sha: str | None = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival!r}; known: {list(ARRIVAL_KINDS)}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown batching policy {self.policy!r}; known: {list(POLICIES)}"
            )
        if self.queue not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {self.queue!r}; "
                f"known: {list(QUEUE_DISCIPLINES)}"
            )
        for name in ("qps", "duration_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} needs a finite, positive value, got {value!r}")
        if not isinstance(self.timeout_ms, (int, float)) or not (
            math.isfinite(self.timeout_ms) and self.timeout_ms >= 0
        ):
            raise ValueError(
                f"timeout_ms needs a finite, non-negative value, got {self.timeout_ms!r}"
            )
        for name in ("max_batch", "records_per_request"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{name} needs a positive integer, got {value!r}")
        if not isinstance(self.diurnal_amplitude, (int, float)) or not (
            math.isfinite(self.diurnal_amplitude) and 0 <= self.diurnal_amplitude < 1
        ):
            raise ValueError(
                f"diurnal_amplitude must lie in [0, 1), got {self.diurnal_amplitude!r}"
            )
        if not isinstance(self.diurnal_periods, (int, float)) or not (
            math.isfinite(self.diurnal_periods) and self.diurnal_periods > 0
        ):
            raise ValueError(
                f"diurnal_periods needs a finite, positive value, "
                f"got {self.diurnal_periods!r}"
            )
        if self.arrival == "trace" and self.trace_path is None and self.trace_sha is None:
            raise ValueError(
                "arrival='trace' needs trace_path (and trace_sha for a "
                "content-stable scenario key)"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form; ``from_dict`` round-trips it exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ServingParams":
        # Missing keys fall back to the field defaults, so params written
        # by an older repro keep loading after new knobs are added.
        names = {f.name for f in dc_fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})
