"""Recorded performance benchmark: the ``repro bench`` trajectory.

Every PR that touches a hot path runs ``repro bench`` and commits the
emitted ``BENCH_<n>.json``, so the repository accumulates a *trajectory* of
measured speedups alongside the code.  One bench document records, for a
fixed scenario grid:

* **gbdt_fit** cells -- full ``train_level_wise`` fits, vectorized vs the
  scalar reference path, timed through the existing ``train_seconds_wall``
  plumbing.  These are the honest end-to-end numbers: the reference path's
  inner loops (binning, gain math) are already NumPy-vectorized and shared,
  so full-fit ratios hover near 1x.
* **gbdt_level_core** cells -- the level-wise hot core in isolation: the
  widest level state of a reference fit is captured (preferring a level
  that still bins children, so the cell exercises partition AND grouped
  binning), and :meth:`~repro.gbdt.levelwise.LevelWiseTrainer.
  _partition_level_reference` races :meth:`~repro.gbdt.levelwise.
  LevelWiseTrainer._partition_level_vectorized` on identical inputs.  This
  is where the per-vertex ``nonzero`` scans and per-vertex ``build`` calls
  were replaced, and where the order-of-magnitude speedup lives.
* **dram_trace** cells -- :meth:`~repro.memory.dram.ChannelSim.run` vs
  :meth:`~repro.memory.dram.ChannelSim.run_reference` through
  :class:`~repro.memory.dram.DRAMSimulator` on sequential and gather
  address traces.

Documents are schema-versioned (:data:`BENCH_SCHEMA_VERSION`) and
validated by :func:`validate_bench` before they are written; CI emits a
``--quick`` document per run and validates it the same way (no
absolute-time assertions -- wall times are host-specific, only the
document *shape* is checked).  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Callable

import numpy as np

from ..datasets import dataset_spec, generate
from ..gbdt import TrainParams, train_level_wise
from ..gbdt.levelwise import LevelWiseTrainer
from ..memory.dram import DRAMSimulator
from ..serving.stats import percentile, percentile_label
from .cache import sim_fingerprint

__all__ = ["BENCH_SCHEMA_VERSION", "run_bench", "validate_bench", "write_bench"]

#: Bump when the document layout changes incompatibly; readers of the
#: committed trajectory key off this.
BENCH_SCHEMA_VERSION = 1

_CELL_KINDS = ("gbdt_fit", "gbdt_level_core", "dram_trace")

#: (dataset, n_records, trees, depth) grid of the full bench.  The last
#: entry is the deep-trees x large-record-scale corner the acceptance
#: speedup is read from.
_FULL_GRID = (
    ("higgs", 24_000, 2, 6),
    ("allstate", 24_000, 2, 8),
    ("higgs", 96_000, 2, 10),
)
_QUICK_GRID = (("higgs", 4_000, 2, 5),)

#: Block counts of the DRAM trace cells.
_FULL_DRAM_N = 120_000
_QUICK_DRAM_N = 8_000


def _timing(durations: list[float]) -> dict:
    """Percentile summary of one timing side, honestly labeled.

    Shares the serving layer's linearly-interpolated percentile helper.
    With the bench's usual handful of repeats an interior p99 estimate is
    unsupportable (that needs ~100 samples), so ``p99_s`` is effectively
    the sample max; ``p99_label`` says so (``p99~max(n=3)``) instead of
    letting readers of committed trajectories over-trust the tail.
    """
    return {
        "durations_s": durations,
        "p50_s": percentile(durations, 50),
        "p99_s": percentile(durations, 99),
        "p99_label": percentile_label(99, len(durations)),
    }


def _cell(cell_id: str, kind: str, params: dict, vec: list[float], ref: list[float]) -> dict:
    cell = {
        "id": cell_id,
        "kind": kind,
        "params": params,
        "repeats": len(vec),
        "vectorized": _timing(vec),
        "reference": _timing(ref),
    }
    vec_p50 = cell["vectorized"]["p50_s"]
    cell["speedup_p50"] = cell["reference"]["p50_s"] / vec_p50 if vec_p50 > 0 else 0.0
    return cell


def _host_fingerprint() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except Exception:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


# -- GBDT cells -------------------------------------------------------------------


def _gbdt_fit_cell(
    dataset: str, n_records: int, trees: int, depth: int, repeats: int, seed: int
) -> dict:
    spec = dataset_spec(dataset, n_records=n_records, seed=seed)
    data = generate(spec)
    params = TrainParams(n_trees=trees, max_depth=depth)
    vec_durations, ref_durations = [], []
    vec_result = ref_result = None
    for _ in range(repeats):
        vec_result = train_level_wise(data, params, vectorized=True)
        vec_durations.append(float(vec_result.profile.train_seconds_wall))
        ref_result = train_level_wise(data, params, vectorized=False)
        ref_durations.append(float(ref_result.profile.train_seconds_wall))
    assert vec_result is not None and ref_result is not None
    cell = _cell(
        f"gbdt_fit/{dataset}/n{n_records}/t{trees}/d{depth}",
        "gbdt_fit",
        {"dataset": dataset, "n_records": n_records, "trees": trees, "depth": depth},
        vec_durations,
        ref_durations,
    )
    cell["identical_losses"] = bool(np.array_equal(vec_result.losses, ref_result.losses))
    return cell


def _capture_widest_level(trainer: LevelWiseTrainer) -> dict:
    """Run one reference fit, capturing the inputs of its widest level.

    The widest level (most splitting vertices) is where the reference
    path spends the most time -- each splitting vertex costs it one
    ``np.nonzero`` scan over ALL records, so the deepest split level
    dominates; that is exactly the per-vertex schedule the vectorized
    partition replaces.  Ties prefer a level that still bins children
    (``depth + 1 < max_depth``), so grouped binning is exercised when the
    widest level is not the last.  The reference partition never mutates
    its inputs, so keeping references plus defensive copies of the
    arrays is enough for replayable timing.
    """
    captured: dict = {}
    orig = trainer._partition_level_reference

    def hook(
        live: dict,
        splits: dict,
        vertex_of_record: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        depth: int,
    ) -> tuple:
        key = (len(splits), depth + 1 < trainer.params.max_depth)
        if key > (captured.get("k", -1), captured.get("bins_children", False)):
            captured.update(
                bins_children=key[1],
                k=len(splits),
                live=dict(live),
                splits=dict(splits),
                vertex_of_record=vertex_of_record.copy(),
                g=g.copy(),
                h=h.copy(),
                depth=depth,
            )
        return orig(live, splits, vertex_of_record, g, h, depth)

    trainer._partition_level_reference = hook  # type: ignore[method-assign]
    try:
        trainer.fit()
    finally:
        trainer._partition_level_reference = orig  # type: ignore[method-assign]
    if not captured:
        raise RuntimeError("reference fit never partitioned a level; deepen the scenario")
    return captured


def _gbdt_level_core_cell(
    dataset: str, n_records: int, depth: int, repeats: int, seed: int
) -> dict:
    """Time the captured widest level: reference vs vectorized hot core."""
    spec = dataset_spec(dataset, n_records=n_records, seed=seed)
    data = generate(spec)
    trainer = LevelWiseTrainer(data, TrainParams(n_trees=1, max_depth=depth), vectorized=False)
    cap = _capture_widest_level(trainer)

    live, splits = cap["live"], cap["splits"]
    vor, g, h, lvl_depth = cap["vertex_of_record"], cap["g"], cap["h"], cap["depth"]
    n_live = len(live)
    split_vids = sorted(splits)
    decisions = [splits[v] for v in split_vids]
    n_bins = trainer.builder.n_bins
    hist_c = np.zeros((n_live, n_bins))
    hist_g = np.zeros((n_live, n_bins))
    hist_h = np.zeros((n_live, n_bins))
    for vid, node in live.items():
        if node.hist is not None:
            hist_c[vid] = node.hist.count
            hist_g[vid] = node.hist.grad
            hist_h[vid] = node.hist.hess

    ref_durations, vec_durations = [], []
    ref_out = vec_out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ref_out = trainer._partition_level_reference(live, splits, vor, g, h, lvl_depth)
        ref_durations.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        vec_out = trainer._partition_level_vectorized(
            n_live, split_vids, decisions, vor, hist_c, hist_g, hist_h, g, h, lvl_depth
        )
        vec_durations.append(time.perf_counter() - t0)
    assert ref_out is not None and vec_out is not None
    cell = _cell(
        f"gbdt_level_core/{dataset}/n{n_records}/d{depth}",
        "gbdt_level_core",
        {
            "dataset": dataset,
            "n_records": n_records,
            "depth": depth,
            "level_depth": int(lvl_depth),
            "n_splitting": int(cap["k"]),
            "bins_children": bool(cap["bins_children"]),
        },
        vec_durations,
        ref_durations,
    )
    # ref returns (next_live, parent_of, new_assignment, fracs); vec returns
    # new_assignment first.  One identity check rides along for honesty.
    cell["identical_partition"] = bool(np.array_equal(ref_out[2], vec_out[0]))
    return cell


# -- DRAM cells -------------------------------------------------------------------


def _dram_trace(pattern: str, n_blocks: int, seed: int) -> np.ndarray:
    if pattern == "sequential":
        return np.arange(n_blocks, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 24, size=n_blocks, dtype=np.int64)


def _dram_cell(pattern: str, n_blocks: int, repeats: int, seed: int) -> dict:
    addrs = _dram_trace(pattern, n_blocks, seed)
    vec_durations, ref_durations = [], []
    vec_stats = ref_stats = None
    for _ in range(repeats):
        sim = DRAMSimulator(vectorized=True)
        t0 = time.perf_counter()
        vec_stats = sim.run(addrs)
        vec_durations.append(time.perf_counter() - t0)
        sim = DRAMSimulator(vectorized=False)
        t0 = time.perf_counter()
        ref_stats = sim.run(addrs)
        ref_durations.append(time.perf_counter() - t0)
    assert vec_stats is not None and ref_stats is not None
    cell = _cell(
        f"dram_trace/{pattern}/n{n_blocks}",
        "dram_trace",
        {"pattern": pattern, "n_blocks": n_blocks},
        vec_durations,
        ref_durations,
    )
    cell["identical_schedule"] = bool(
        vec_stats.total_cycles == ref_stats.total_cycles
        and vec_stats.row_hits == ref_stats.row_hits
        and vec_stats.latency_sum == ref_stats.latency_sum
    )
    return cell


# -- document ---------------------------------------------------------------------


def run_bench(
    *,
    quick: bool = False,
    repeats: int | None = None,
    seed: int = 7,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the fixed scenario grid and return the bench document.

    ``quick`` shrinks the grid and repeats to CI-smoke size; ``repeats``
    overrides the per-cell fit repeats (level-core cells run 10x as many
    repeats since one call is milliseconds).
    """
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    core_repeats = repeats * 10
    grid = _QUICK_GRID if quick else _FULL_GRID
    dram_n = _QUICK_DRAM_N if quick else _FULL_DRAM_N
    say = progress or (lambda _msg: None)

    cells: list[dict] = []
    for dataset, n_records, trees, depth in grid:
        cell = _gbdt_fit_cell(dataset, n_records, trees, depth, repeats, seed)
        cells.append(cell)
        say(f"{cell['id']}: {cell['speedup_p50']:.2f}x")
        cell = _gbdt_level_core_cell(dataset, n_records, depth, core_repeats, seed)
        cells.append(cell)
        say(f"{cell['id']}: {cell['speedup_p50']:.2f}x")
    for pattern in ("sequential", "gather"):
        cell = _dram_cell(pattern, dram_n, repeats, seed)
        cells.append(cell)
        say(f"{cell['id']}: {cell['speedup_p50']:.2f}x")

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "host": _host_fingerprint(),
        "git_rev": _git_rev(),
        "sim_code": sim_fingerprint(),
        "quick": quick,
        "seed": seed,
        "cells": cells,
    }


def _fail(message: str) -> None:
    raise ValueError(f"invalid bench document: {message}")


def _check_timing(cell_id: str, side: str, timing: object, repeats: int) -> None:
    if not isinstance(timing, dict):
        _fail(f"cell {cell_id}: {side} must be an object")
    durations = timing.get("durations_s")
    if not isinstance(durations, list) or len(durations) != repeats:
        _fail(f"cell {cell_id}: {side}.durations_s must list {repeats} samples")
    if not all(isinstance(d, float) and d >= 0 for d in durations):
        _fail(f"cell {cell_id}: {side}.durations_s must be non-negative floats")
    for key in ("p50_s", "p99_s"):
        value = timing.get(key)
        if not isinstance(value, float) or value < 0:
            _fail(f"cell {cell_id}: {side}.{key} must be a non-negative float")
    # Optional (absent from documents committed before the label existed).
    label = timing.get("p99_label")
    if label is not None and not isinstance(label, str):
        _fail(f"cell {cell_id}: {side}.p99_label must be a string when present")


def validate_bench(doc: object) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a well-formed bench document.

    Checks shape only -- never absolute times -- so the validation is
    host-independent (CI runs it on every ``--quick`` document).
    """
    if not isinstance(doc, dict):
        _fail("not an object")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        _fail(f"schema_version must be {BENCH_SCHEMA_VERSION}, got {doc.get('schema_version')!r}")
    host = doc.get("host")
    if not isinstance(host, dict):
        _fail("host must be an object")
    for key in ("platform", "python", "numpy"):
        if not isinstance(host.get(key), str):
            _fail(f"host.{key} must be a string")
    if not isinstance(doc.get("git_rev"), str):
        _fail("git_rev must be a string")
    if not isinstance(doc.get("sim_code"), str):
        _fail("sim_code must be a string")
    if not isinstance(doc.get("created_unix"), (int, float)):
        _fail("created_unix must be a number")
    if not isinstance(doc.get("quick"), bool):
        _fail("quick must be a boolean")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        _fail("cells must be a non-empty list")
    seen: set[str] = set()
    for cell in cells:
        if not isinstance(cell, dict):
            _fail("every cell must be an object")
        cell_id = cell.get("id")
        if not isinstance(cell_id, str) or not cell_id:
            _fail("every cell needs a string id")
        if cell_id in seen:
            _fail(f"duplicate cell id {cell_id!r}")
        seen.add(cell_id)
        if cell.get("kind") not in _CELL_KINDS:
            _fail(f"cell {cell_id}: kind must be one of {_CELL_KINDS}")
        if not isinstance(cell.get("params"), dict):
            _fail(f"cell {cell_id}: params must be an object")
        repeats = cell.get("repeats")
        if not isinstance(repeats, int) or repeats < 1:
            _fail(f"cell {cell_id}: repeats must be a positive integer")
        _check_timing(cell_id, "vectorized", cell.get("vectorized"), repeats)
        _check_timing(cell_id, "reference", cell.get("reference"), repeats)
        speedup = cell.get("speedup_p50")
        if not isinstance(speedup, float) or speedup < 0:
            _fail(f"cell {cell_id}: speedup_p50 must be a non-negative float")


def write_bench(doc: dict, path: str) -> None:
    """Validate ``doc`` and write it as indented JSON (trailing newline)."""
    validate_bench(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
