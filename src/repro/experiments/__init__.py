"""Declarative experiment orchestration: scenarios, sweeps, persistent cache.

This layer makes one experiment -- a (dataset x training params x hardware
design point x scale x systems) tuple -- a first-class object:

* :class:`ScenarioSpec` -- frozen, hashable, JSON-serializable description of
  one experiment with a content-derived cache key;
* :class:`ProfileCache` -- persistent on-disk store (``results/cache/`` by
  default) for trained :class:`~repro.gbdt.trainer.TrainResult` artifacts,
  keyed by the scenario's training hash, so no configuration is ever
  functionally retrained across sessions;
* :class:`ResultStore` -- its sibling store (same directory) for completed
  timing results, keyed by the scenario's full cache key, so finished
  experiments are replayed instead of re-simulated;
* :class:`SweepRunner` -- cartesian-product sweep expansion over scenario
  axes, executed across a :mod:`concurrent.futures` process pool with
  results (including per-scenario failures) streamed as they complete;
* :mod:`~repro.experiments.schedule` -- cost-balanced multi-host shard
  scheduling: an analytic per-scenario cost estimator calibrated by the
  wall times recorded in the result store, and a deterministic LPT
  partitioner behind ``repro sweep --balance cost`` / ``repro plan``;
* :mod:`~repro.experiments.steal` -- dynamic work stealing over a shared
  lease store (``repro sweep --coordinate DIR-or-URL``): workers claim
  scenarios at runtime through atomic lease entries, renew leases while
  running, and reclaim stale leases from crashed peers, turning the
  static shard layer into an elastic pool;
* :mod:`~repro.experiments.backend` -- the pluggable storage layer
  beneath all of the above: :class:`StoreBackend` is the atomic
  create-exclusive / read / write / conditional-delete / list contract,
  :class:`LocalBackend` the shared-directory implementation, and
  :class:`HTTPBackend` a stdlib client for ``repro store-serve``
  (:mod:`~repro.experiments.store_server`), so caches, result stores, and
  lease pools work across hosts that share nothing but a URL.

The classic :class:`repro.sim.Executor` is a thin facade over this layer;
see ``docs/experiments.md`` for the full tour.
"""

from .backend import (
    Entry,
    HTTPBackend,
    LocalBackend,
    StoreBackend,
    StoreBackendError,
    etag_of,
    is_store_url,
    open_backend,
)
from .cache import (
    CACHE_VERSION,
    KeyedStore,
    ProfileCache,
    ResultStore,
    copy_entries,
    default_cache,
    default_cache_dir,
    export_entries,
    import_entries,
    sim_fingerprint,
)
from .pipeline import (
    benchmark_dataset,
    clear_memory_caches,
    is_trained,
    train_scenario,
    train_scenario_tracked,
)
from .scenario import DEFAULT_SYSTEMS, ScenarioSpec, ServingParams, cost_overrides_from
from .schedule import (
    BALANCE_MODES,
    ShardPlan,
    cost_order,
    cost_partition,
    estimate_cost,
    lpt_assign,
    observed_durations,
    partition_scenarios,
    plan_shards,
    scenario_costs,
)
from .steal import (
    DEFAULT_LEASE_TTL,
    Coordinator,
    Lease,
    LeaseLost,
    lease_name,
    steal_status,
)
from .runner import (
    AXIS_NAMES,
    CANONICAL_AXES,
    SERVING_AXIS_NAMES,
    SWEEP_MODES,
    SweepResult,
    SweepRunner,
    apply_axis,
    expand_axes,
    parse_axis_specs,
    parse_shard_spec,
    read_axis,
    result_store_key,
    run_scenario,
    scenario_key,
    shard_of,
    shard_scenarios,
)

__all__ = [
    "AXIS_NAMES",
    "BALANCE_MODES",
    "CACHE_VERSION",
    "CANONICAL_AXES",
    "Coordinator",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SYSTEMS",
    "Entry",
    "HTTPBackend",
    "KeyedStore",
    "Lease",
    "LeaseLost",
    "LocalBackend",
    "ProfileCache",
    "ResultStore",
    "SERVING_AXIS_NAMES",
    "SWEEP_MODES",
    "ScenarioSpec",
    "ServingParams",
    "ShardPlan",
    "StoreBackend",
    "StoreBackendError",
    "SweepResult",
    "SweepRunner",
    "apply_axis",
    "benchmark_dataset",
    "clear_memory_caches",
    "copy_entries",
    "cost_order",
    "cost_overrides_from",
    "cost_partition",
    "default_cache",
    "default_cache_dir",
    "etag_of",
    "estimate_cost",
    "expand_axes",
    "export_entries",
    "import_entries",
    "is_store_url",
    "is_trained",
    "lease_name",
    "lpt_assign",
    "observed_durations",
    "open_backend",
    "parse_axis_specs",
    "parse_shard_spec",
    "partition_scenarios",
    "plan_shards",
    "read_axis",
    "result_store_key",
    "run_scenario",
    "scenario_costs",
    "scenario_key",
    "shard_of",
    "shard_scenarios",
    "sim_fingerprint",
    "steal_status",
    "train_scenario",
    "train_scenario_tracked",
]
