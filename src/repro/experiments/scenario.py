"""Declarative experiment descriptions with content-derived cache keys.

A :class:`ScenarioSpec` pins down everything that determines an experiment's
result: the benchmark dataset and its simulated scale, every training
hyper-parameter (:class:`~repro.gbdt.trainer.TrainParams`, including the
split regularization knobs), the Booster design point
(:class:`~repro.core.config.BoosterConfig` plus cost-model overrides), the
record/tree extrapolation mode, and the hardware systems to compare.

Two content hashes are derived from the canonical JSON form:

* :meth:`ScenarioSpec.train_key` covers only the fields that influence
  functional training (dataset, resolved record count, seed, all
  ``TrainParams`` fields) -- the key under which trained artifacts are
  cached and shared between scenarios that differ only in hardware knobs;
* :meth:`ScenarioSpec.cache_key` covers the whole scenario and identifies
  the experiment itself -- sweep bookkeeping, JSONL manifests, and the key
  under which the persistent :class:`~repro.experiments.cache.ResultStore`
  replays completed timing results.  Code fingerprints are deliberately
  *not* part of this key; the result store records the simulation-source
  fingerprint inside each payload and validates it on load instead, so the
  key stays stable for resume bookkeeping while stale timings still miss.

Hashes are SHA-256 over a canonical JSON encoding, so they are stable
across processes, sessions, and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields as dc_fields, replace

from ..core.config import BoosterConfig
from ..gbdt.split import SplitParams
from ..gbdt.trainer import TrainParams
from ..serving.params import ServingParams
from ..sim.calibrate import DEFAULT_COSTS, CostModel

__all__ = ["DEFAULT_SYSTEMS", "ScenarioSpec", "ServingParams", "cost_overrides_from"]

#: Systems compared when a scenario does not name its own subset (the Fig. 7
#: headline set, matching ``Executor.compare``'s default).
DEFAULT_SYSTEMS = (
    "sequential",
    "ideal-32-core",
    "ideal-gpu",
    "inter-record",
    "booster",
)

#: Boosting rounds a scenario trains by default (matches the executor).
DEFAULT_SCENARIO_TREES = 20

_COST_FIELD_NAMES = frozenset(f.name for f in dc_fields(CostModel))


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: dict, prefix: str) -> str:
    return prefix + hashlib.sha256(_canonical(payload).encode()).hexdigest()[:20]


def cost_overrides_from(costs: CostModel) -> tuple[tuple[str, float], ...]:
    """Overrides that rebuild ``costs`` from :data:`DEFAULT_COSTS` (diff form)."""
    out = []
    for f in dc_fields(CostModel):
        value = getattr(costs, f.name)
        if value != getattr(DEFAULT_COSTS, f.name):
            out.append((f.name, value))
    return tuple(sorted(out))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: dataset x training x design point x scale.

    ``sim_records=None`` means the registry's simulation-scale default;
    ``cost_overrides`` are (field name, value) pairs applied on top of
    :data:`~repro.sim.calibrate.DEFAULT_COSTS`; an empty ``systems`` tuple
    is normalized to :data:`DEFAULT_SYSTEMS`.
    """

    dataset: str = "higgs"
    sim_records: int | None = None
    seed: int = 7
    train: TrainParams = field(
        default_factory=lambda: TrainParams(n_trees=DEFAULT_SCENARIO_TREES)
    )
    booster: BoosterConfig = field(default_factory=BoosterConfig)
    cost_overrides: tuple[tuple[str, float], ...] = ()
    extra_scale: float = 1.0
    scale_to_paper: bool = True
    systems: tuple[str, ...] = DEFAULT_SYSTEMS
    serving: ServingParams | None = None

    def __post_init__(self) -> None:
        # Normalize list inputs (e.g. straight from JSON) to hashable tuples.
        if isinstance(self.serving, dict):
            object.__setattr__(self, "serving", ServingParams.from_dict(self.serving))
        object.__setattr__(
            self,
            "cost_overrides",
            tuple(sorted((str(k), v) for k, v in self.cost_overrides)),
        )
        object.__setattr__(self, "systems", tuple(self.systems) or DEFAULT_SYSTEMS)
        for name, value in self.cost_overrides:
            if name not in _COST_FIELD_NAMES:
                raise ValueError(f"unknown cost-model field {name!r}")
            # Every cost constant is a finite, positive energy/latency/
            # clock/size; NaN or a negative value would poison the content
            # hashes (and every comparison built on them), so reject at
            # construction -- the same rule ``apply_axis`` enforces.
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"cost override {name!r} needs a finite, positive value, "
                    f"got {value!r}"
                )
        if self.extra_scale <= 0:
            raise ValueError("extra_scale must be positive")
        if self.sim_records is not None and self.sim_records < 1:
            raise ValueError("sim_records must be positive when given")

    # -- derived configuration -------------------------------------------------

    def costs(self) -> CostModel:
        """The scenario's cost model (defaults plus overrides)."""
        if not self.cost_overrides:
            return DEFAULT_COSTS
        return replace(DEFAULT_COSTS, **dict(self.cost_overrides))

    def resolved_records(self) -> int:
        """Simulated record count with the registry default resolved."""
        from ..datasets import dataset_spec

        return dataset_spec(
            self.dataset, n_records=self.sim_records, seed=self.seed
        ).n_records

    #: Record count assumed by :meth:`approx_records` when the dataset is
    #: unknown (matches the registry benchmarks' simulation scale).
    FALLBACK_RECORDS = 1000

    def approx_records(self) -> int:
        """:meth:`resolved_records`, with a finite fallback when resolving
        raises (unknown dataset name).

        Cost estimation (:mod:`repro.experiments.schedule`) must price
        *every* scenario -- an unkeyable one still needs a well-defined
        shard owner, where it fails fast as a structured error result --
        so an unresolvable record count degrades to ``sim_records`` (or
        the registry sim scale) instead of propagating.
        """
        try:
            return self.resolved_records()
        except Exception:
            return self.sim_records or self.FALLBACK_RECORDS

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form; ``from_dict`` round-trips it exactly.

        The nested configs are rendered with :func:`dataclasses.asdict`, so
        a field added to ``TrainParams``/``SplitParams``/``BoosterConfig``
        automatically enters the serialization -- and therefore the cache
        keys.  Hand-enumerating fields here would reintroduce the silent
        stale-key bug this layer exists to fix.

        ``serving`` is OMITTED entirely when unset (the training/compare
        default): every pre-serving scenario keeps its exact serialized
        form, and therefore its exact cache key -- adding the serving layer
        must not orphan a single stored result or manifest line.
        """
        d = {
            "dataset": self.dataset,
            "sim_records": self.sim_records,
            "seed": self.seed,
            "train": asdict(self.train),  # nested split included
            "booster": asdict(self.booster),
            "cost_overrides": [list(pair) for pair in self.cost_overrides],
            "extra_scale": self.extra_scale,
            "scale_to_paper": self.scale_to_paper,
            "systems": list(self.systems),
        }
        if self.serving is not None:
            d["serving"] = self.serving.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        # Missing keys fall back to the owning dataclasses' own defaults
        # (only the scenario-level tree count differs from TrainParams').
        t = dict(d.get("train", {}))
        split = SplitParams(**t.pop("split", {}))
        train = TrainParams(**{"n_trees": DEFAULT_SCENARIO_TREES, **t}, split=split)
        kwargs = {
            k: d[k]
            for k in ("dataset", "sim_records", "seed", "extra_scale", "scale_to_paper")
            if k in d
        }
        if "systems" in d:
            kwargs["systems"] = tuple(d["systems"])
        if "cost_overrides" in d:
            kwargs["cost_overrides"] = tuple((k, v) for k, v in d["cost_overrides"])
        if d.get("serving") is not None:
            kwargs["serving"] = ServingParams.from_dict(d["serving"])
        return cls(train=train, booster=BoosterConfig(**d.get("booster", {})), **kwargs)

    def to_json(self) -> str:
        return _canonical(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- content keys ------------------------------------------------------------

    def train_key(self) -> str:
        """Cache key of the training artifact this scenario needs.

        Covers *every* field that changes what ``train()`` produces -- the
        dataset identity (name, resolved record count, seed) and all
        ``TrainParams`` fields including ``max_depth`` and the split knobs.
        Hardware-only fields (booster config, costs, systems, scales) are
        deliberately excluded so scenarios that differ only in hardware
        share one trained artifact.  A digest of the functional-training
        source code also participates, so trainer/generator edits
        invalidate persisted artifacts automatically.
        """
        from . import cache as _cache

        payload = {
            "version": _cache.CACHE_VERSION,
            "code": _cache.code_fingerprint(),
            "dataset": self.dataset,
            "n_records": self.resolved_records(),
            "seed": self.seed,
            "train": self.to_dict()["train"],
        }
        return _digest(payload, "t")

    def cache_key(self) -> str:
        """Content hash identifying the full scenario (stable across runs).

        For trace-replay serving scenarios, ``trace_path`` is dropped from
        the hashed payload: the experiment's identity is the trace
        *content* (``trace_sha``), so the same trace at a different path --
        or on a different host -- keys identically, while an edited trace
        misses.
        """
        from .cache import CACHE_VERSION

        payload = {"version": CACHE_VERSION, "scenario": self.to_dict()}
        payload["scenario"]["sim_records"] = self.resolved_records()
        serving = payload["scenario"].get("serving")
        if isinstance(serving, dict):
            serving.pop("trace_path", None)
        return _digest(payload, "s")
