"""Scenario-level training pipeline: dataset memoization + cached training.

The functional half of every experiment is ``generate(spec)`` followed by
``train(data, params)``.  Both are memoized here:

* :func:`benchmark_dataset` keeps one generated
  :class:`~repro.datasets.encoding.BinnedDataset` per (name, records, seed)
  for the life of the process, so training and inference (and repeated
  scenarios over the same data) share a single generation pass;
* :func:`train_scenario` serves :class:`~repro.gbdt.trainer.TrainResult`
  artifacts through a :class:`~repro.experiments.cache.ProfileCache`,
  keyed by :meth:`ScenarioSpec.train_key` -- which covers *all*
  ``TrainParams`` fields, fixing the old executor cache's silent staleness
  when only ``max_depth`` or split knobs changed.
"""

from __future__ import annotations

from ..datasets import dataset_spec, generate
from ..datasets.encoding import BinnedDataset
from ..gbdt import TrainResult, train
from .cache import ProfileCache, default_cache
from .scenario import ScenarioSpec

__all__ = [
    "benchmark_dataset",
    "clear_memory_caches",
    "is_trained",
    "train_scenario",
    "train_scenario_tracked",
]

_DATASET_MEMO: dict[tuple[str, int, int], BinnedDataset] = {}  # repro: noqa RPR005 -- content-keyed deterministic memo: a forked copy regenerates identical datasets, so sharing or not sharing is indistinguishable
#: Benchmarks at the default sim scale are all small; one suite touches at
#: most the five registry datasets plus a handful of swept variants, so a
#: small LRU bounds memory on long records/seed sweeps.
_DATASET_MEMO_MAX = 8


def benchmark_dataset(
    name: str, n_records: int | None = None, seed: int = 7
) -> BinnedDataset:
    """Generate (LRU-memoized per process) a registry benchmark at sim scale."""
    spec = dataset_spec(name, n_records=n_records, seed=seed)
    key = (spec.name, spec.n_records, spec.seed)
    data = _DATASET_MEMO.pop(key, None)
    if data is None:
        data = generate(spec)
    _DATASET_MEMO[key] = data  # re-insert: most recently used is last
    while len(_DATASET_MEMO) > _DATASET_MEMO_MAX:
        _DATASET_MEMO.pop(next(iter(_DATASET_MEMO)))
    return data


def is_trained(scenario: ScenarioSpec, cache: ProfileCache | None = None) -> bool:
    """True when the scenario's training artifact is already cached."""
    return scenario.train_key() in (cache or default_cache())


def train_scenario_tracked(
    scenario: ScenarioSpec, cache: ProfileCache | None = None
) -> tuple[TrainResult, bool]:
    """Like :func:`train_scenario`, but also reports cache provenance.

    The second element is True when the artifact came out of the cache and
    False when this call actually trained.  It is derived from the lookup
    itself -- not from a separate ``is_trained`` snapshot, which under
    concurrent sweep workers could observe a sibling's publication between
    the check and the act and mislabel the provenance.
    """
    cache = cache or default_cache()
    key = scenario.train_key()
    cached = cache.get(key)
    if cached is not None:
        return cached, True
    data = benchmark_dataset(scenario.dataset, scenario.sim_records, scenario.seed)
    result = train(data, scenario.train)
    cache.put(key, result)
    return result, False


def train_scenario(
    scenario: ScenarioSpec, cache: ProfileCache | None = None
) -> TrainResult:
    """The scenario's trained artifact, functionally training at most once.

    Lookup order: the cache's memory layer (identity-preserving), then its
    disk layer (persisted across sessions and shared between sweep
    workers), then an actual ``train()`` run whose result is stored back.
    """
    return train_scenario_tracked(scenario, cache)[0]


def clear_memory_caches() -> None:
    """Drop process-local memoized datasets (test isolation helper)."""
    _DATASET_MEMO.clear()
