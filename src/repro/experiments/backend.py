"""Pluggable storage backends: the contract every store and lease speaks.

PRs 2-5 grew three consumers of one implicit protocol -- the
:class:`~repro.experiments.cache.KeyedStore` family (trained profiles,
timing results), the work-stealing lease :class:`~repro.experiments.steal.Coordinator`,
and the ``cache export/import`` archive path -- and all three assumed the
protocol's *implementation*: a shared POSIX directory.  This module makes
the protocol explicit so the implementation is pluggable:

* :class:`StoreBackend` -- the abstract contract: atomic full-content
  ``put``, exclusive full-content ``create`` (the lease-claim primitive),
  ``get``/``get_entry`` (content plus a strong content tag and mtime),
  ``delete`` and tag-conditional ``delete_if`` (the two-phase lease-break
  primitive), sorted ``list``, and ``sweep_tmp`` for abandoned temp files;
* :class:`LocalBackend` -- the filesystem implementation, byte-identical
  to the pre-backend on-disk layout (flat files under one directory,
  temp-file + rename atomic writes, ``os.link`` exclusive creates);
* :class:`HTTPBackend` -- a stdlib HTTP object-store client speaking to
  ``repro store-serve`` (:mod:`repro.experiments.store_server`):
  conditional ``PUT If-None-Match: *`` is create-exclusive, ``DELETE
  If-Match: <etag>`` is the guarded unlink, so an elastic sweep pool can
  coordinate through hosts that share nothing but a URL.

Entry identity is a *content* tag everywhere: ``etag_of`` is sha256 over
the bytes, computed identically client-side and server-side, so a
conditional delete means "remove it only if it still holds exactly what I
read" on every backend.

The atomic-write primitives (:func:`validate_flat_name`,
:func:`atomic_write_bytes`, :func:`sweep_stale_tmp`) moved here from
``experiments/cache.py`` (which re-exports them): they are the protocol's
building blocks, not a cache detail.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import tempfile
import time
import urllib.parse
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "TMP_SWEEP_AGE_SECONDS",
    "Entry",
    "HTTPBackend",
    "LocalBackend",
    "StoreBackend",
    "StoreBackendError",
    "atomic_write_bytes",
    "etag_of",
    "is_store_url",
    "open_backend",
    "sweep_stale_tmp",
    "validate_flat_name",
]

#: ``sweep_tmp`` only removes ``*.tmp`` files at least this old: a fresh
#: temp file may be a concurrent worker's in-flight atomic write in the
#: shared directory, and unlinking it would turn that worker's success
#: into an error.  Orphans from killed workers are, by definition, not
#: fresh.
TMP_SWEEP_AGE_SECONDS = 60.0

#: Default socket timeout for one HTTP store operation, in seconds.  Store
#: entries are small (lease stamps, JSON payloads, pickles of tiny test
#: models); a transfer that takes longer than this is a dead server, and
#: hanging a sweep worker on it would look exactly like a crashed worker
#: to its peers.
HTTP_TIMEOUT_SECONDS = 30.0


def validate_flat_name(name: str, what: str = "archive member") -> None:
    """Reject ``name`` unless it is a plain flat filename.

    Everything that enters a store directory from outside -- tar members on
    import, lease filenames in a shared work-stealing directory, entry
    names arriving over HTTP -- must be a bare basename: a name carrying
    any path structure (``sub/x.pkl``, ``../x.pkl``, an absolute path,
    ``.``/``..``) could reach outside the directory it is written into.
    One shared gate keeps the import path, the lease code, and the store
    server from drifting apart on what "safe" means.
    """
    if os.path.basename(name) != name or not name or name in (".", ".."):
        raise ValueError(
            f"refusing {what} {name!r}: store entries are flat filenames, "
            "and a path component could escape the store directory"
        )


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The single write protocol shared by every store mutation that must be
    safe under concurrent readers and writers: :meth:`KeyedStore.put`,
    archive import, lease renewal in a shared coordination directory, and
    the store server's PUT handler.  A reader never observes a partial
    file; a crash leaves only a ``*.tmp`` orphan, which
    :func:`sweep_stale_tmp` reclaims once it is provably abandoned.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def sweep_stale_tmp(root: str | Path, max_age: float | None = None) -> int:
    """Remove abandoned ``*.tmp`` files under ``root``; returns the count.

    Only temp files at least ``max_age`` seconds old (default
    :data:`TMP_SWEEP_AGE_SECONDS`) are removed: a fresh temp file may be a
    concurrent worker's :func:`atomic_write_bytes` in flight, and unlinking
    it would turn that worker's success into an error.  Orphans from killed
    workers are, by definition, not fresh.
    """
    root = Path(root)
    if max_age is None:
        max_age = TMP_SWEEP_AGE_SECONDS
    cutoff = time.time() - max_age
    removed = 0
    if root.is_dir():
        for p in root.glob("*.tmp"):
            try:
                if p.stat().st_mtime <= cutoff:
                    p.unlink()
                    removed += 1
            except FileNotFoundError:
                pass  # another sweep/worker already removed it
    return removed


def etag_of(data: bytes) -> str:
    """The strong content tag of one entry: sha256 hex over the bytes.

    Computed identically by :class:`LocalBackend` (client-side, from the
    bytes it read) and the store server (for ``ETag`` headers and
    ``If-Match`` checks), so "delete this entry only if it still holds
    exactly what I read" means the same thing on every backend.
    """
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Entry:
    """One store entry's content plus the metadata conditions attach to."""

    name: str  # flat entry filename
    data: bytes  # full content (entries are small; no streaming)
    etag: str  # strong content tag (:func:`etag_of` of ``data``)
    mtime: float  # last-modified epoch seconds (the *store's* clock)

    @property
    def size(self) -> int:
        return len(self.data)


class StoreBackendError(OSError):
    """A store operation failed for a non-protocol reason (I/O, HTTP 5xx).

    Subclasses :class:`OSError` deliberately: every existing consumer of
    the filesystem store handles unreadable entries with ``except
    OSError``, and a remote backend's transport failures must degrade the
    same way (an unreadable lease is an unreadable lease, whether the
    filesystem or a socket said so).
    """


class StoreBackend(abc.ABC):
    """Abstract contract for a flat keyed byte store.

    The operations are exactly what the :class:`KeyedStore` family and the
    lease protocol need -- nothing more, so implementations stay small:

    * ``get``/``get_entry`` -- read one entry (``None`` when absent);
    * ``put`` -- atomic full-content write (replace semantics: concurrent
      readers see the old or the new content, never a mix);
    * ``create`` -- *exclusive* atomic full-content write: exactly one of
      any number of racing creators wins (the lease-claim primitive);
    * ``delete`` / ``delete_if`` -- unlink, unconditionally or only while
      the entry still carries a given content tag (the lease-break
      primitive: a holder that re-stamped in the meantime survives);
    * ``list`` -- sorted entry names, optionally suffix-filtered;
    * ``sweep_tmp`` -- reclaim abandoned atomic-write temp files.

    Every name is validated through :func:`validate_flat_name` before it
    touches storage; hostile names raise instead of escaping the store.
    """

    #: Printable, serializable locator (a directory path or a URL); passing
    #: it to :func:`open_backend` reconstructs an equivalent backend (this
    #: is how sweep pool workers inherit the parent's store).
    location: str

    @abc.abstractmethod
    def get_entry(self, name: str) -> Entry | None:
        """The entry's content + metadata, or ``None`` when absent."""

    @abc.abstractmethod
    def put(self, name: str, data: bytes) -> None:
        """Atomically write ``data`` as the entry's full content."""

    @abc.abstractmethod
    def create(self, name: str, data: bytes) -> bool:
        """Exclusively create the entry; ``False`` when it already exists.

        However many callers race, exactly one wins, and the winner's
        content is visible in full to every reader (no partial stamps).
        """

    @abc.abstractmethod
    def delete(self, name: str) -> bool:
        """Remove the entry; ``False`` when it did not exist."""

    @abc.abstractmethod
    def delete_if(self, name: str, etag: str) -> bool:
        """Remove the entry only while its content tag is still ``etag``.

        ``False`` when the entry is gone or was rewritten since the caller
        read it -- the two-phase lease break's "did the holder re-stamp
        under me?" guard.  Best-effort on the local filesystem (see
        :meth:`LocalBackend.delete_if`), exact on the HTTP store.
        """

    @abc.abstractmethod
    def list(self, suffix: str = "") -> list[str]:
        """Sorted entry names (``suffix``-filtered; temp files excluded)."""

    @abc.abstractmethod
    def sweep_tmp(self, max_age: float | None = None) -> int:
        """Reclaim abandoned atomic-write temp files; returns the count."""

    # -- conveniences shared by every implementation ---------------------------

    def get(self, name: str) -> bytes | None:
        """The entry's bytes, or ``None`` when absent."""
        entry = self.get_entry(name)
        return None if entry is None else entry.data

    def contains(self, name: str) -> bool:
        return self.get_entry(name) is not None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.location!r})"


class LocalBackend(StoreBackend):
    """The filesystem implementation: flat files under one directory.

    Byte-identical to the pre-backend layout -- every ``put`` is
    :func:`atomic_write_bytes` (temp + rename), every ``create`` is an
    exclusive ``os.link`` publish of a fully-written private temp file, so
    directories written through this class are indistinguishable from ones
    written by the PR-2..5 code (and remain shareable with it over NFS).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def location(self) -> str:
        return str(self.root)

    def _path(self, name: str) -> Path:
        validate_flat_name(name, what="store entry name")
        return self.root / name

    def get_entry(self, name: str) -> Entry | None:
        path = self._path(name)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = time.time()  # unlinked between read and stat; data is real
        return Entry(name=name, data=data, etag=etag_of(data), mtime=mtime)

    def contains(self, name: str) -> bool:
        return self._path(name).is_file()

    def put(self, name: str, data: bytes) -> None:
        atomic_write_bytes(self._path(name), data)

    def create(self, name: str, data: bytes) -> bool:
        """Exclusive create via a hard-link publish.

        The content is written to a private temp file first and linked
        into place: ``os.link`` fails with ``FileExistsError`` if the name
        is taken (the exclusivity arbiter, same discipline as ``O_EXCL``),
        and because the source is fully written before the link, a racing
        reader can never observe a partial entry -- which a plain
        ``O_CREAT | O_EXCL`` open-then-write could expose.
        """
        path = self._path(name)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False
            return True
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def delete(self, name: str) -> bool:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            return False
        return True

    def delete_if(self, name: str, etag: str) -> bool:
        """Conditional unlink: re-read, compare content tags, unlink.

        The compare and the unlink are not one atomic step on a plain
        filesystem, so a writer can theoretically slip between them; every
        caller in this codebase additionally holds an exclusive break
        marker (see :meth:`Coordinator._break`), which excludes every
        *breaker* -- the residual window against the lease *holder* is the
        same one the pre-backend code had, and the TTL discipline bounds
        it.  The HTTP implementation is exact (the server checks and
        unlinks under one lock).
        """
        entry = self.get_entry(name)
        if entry is None or entry.etag != etag:
            return False
        return self.delete(name)

    def list(self, suffix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_file() and p.name.endswith(suffix) and not p.name.endswith(".tmp")
        )

    def sweep_tmp(self, max_age: float | None = None) -> int:
        return sweep_stale_tmp(self.root, max_age)


class HTTPBackend(StoreBackend):
    """Client for the ``repro store-serve`` HTTP object store (pure stdlib).

    One entry maps to one URL path under the base URL; the HTTP verbs map
    onto the contract:

    ========================  =================================================
    operation                 request
    ========================  =================================================
    ``get_entry``             ``GET /<name>`` (``ETag`` + ``X-Repro-Mtime``)
    ``contains``              ``HEAD /<name>``
    ``put``                   ``PUT /<name>``
    ``create``                ``PUT /<name>`` + ``If-None-Match: *`` (412: lost)
    ``delete``                ``DELETE /<name>``
    ``delete_if``             ``DELETE /<name>`` + ``If-Match: "<etag>"``
    ``list``                  ``GET /?suffix=...`` (JSON entry listing)
    ``sweep_tmp``             ``POST /?op=sweep-tmp&max_age=...``
    ========================  =================================================

    Conditional semantics live server-side under one mutation lock, so
    create-exclusive and the tag-guarded delete are *exact* over HTTP --
    the server is the single arbiter the shared filesystem used to be.
    Connection failures surface as :class:`urllib.error.URLError` (an
    ``OSError``), which every store consumer already treats as "entry
    unreadable"; unexpected HTTP statuses raise :class:`StoreBackendError`.
    """

    def __init__(self, base_url: str, timeout: float = HTTP_TIMEOUT_SECONDS) -> None:
        if not is_store_url(base_url):
            raise ValueError(f"not an http(s) store URL: {base_url!r}")
        self.base_url = base_url.rstrip("/") + "/"
        self.timeout = timeout

    @property
    def location(self) -> str:
        return self.base_url

    def _url(self, name: str) -> str:
        validate_flat_name(name, what="store entry name")
        return self.base_url + urllib.parse.quote(name)

    def _request(
        self,
        method: str,
        url: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
        ok: tuple[int, ...] = (200, 201, 204),
        reject: tuple[int, ...] = (),
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP round trip; statuses outside ``ok``/``reject`` raise."""
        import urllib.error
        import urllib.request

        req = urllib.request.Request(url, data=data, method=method, headers=headers or {})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                status = int(resp.status)
                resp_headers = {k.lower(): v for k, v in resp.headers.items()}
                body = resp.read()
        except urllib.error.HTTPError as exc:
            status = int(exc.code)
            resp_headers = {k.lower(): v for k, v in exc.headers.items()}
            body = exc.read()
        if status not in ok and status not in reject:
            detail = body[:200].decode("utf-8", "replace").strip()
            raise StoreBackendError(
                f"{method} {url} -> HTTP {status}{': ' + detail if detail else ''}"
            )
        return status, resp_headers, body

    @staticmethod
    def _header_etag(headers: dict[str, str]) -> str:
        return headers.get("etag", "").strip('"')

    def get_entry(self, name: str) -> Entry | None:
        status, headers, body = self._request("GET", self._url(name), reject=(404,))
        if status == 404:
            return None
        try:
            mtime = float(headers.get("x-repro-mtime", ""))
        except ValueError:
            mtime = time.time()  # a non-repro server: degrade to "fresh"
        etag = self._header_etag(headers) or etag_of(body)
        return Entry(name=name, data=body, etag=etag, mtime=mtime)

    def contains(self, name: str) -> bool:
        status, _, _ = self._request("HEAD", self._url(name), reject=(404,))
        return status != 404

    def put(self, name: str, data: bytes) -> None:
        self._request("PUT", self._url(name), data=data)

    def create(self, name: str, data: bytes) -> bool:
        status, _, _ = self._request(
            "PUT",
            self._url(name),
            data=data,
            headers={"If-None-Match": "*"},
            reject=(412,),
        )
        return status != 412

    def delete(self, name: str) -> bool:
        status, _, _ = self._request("DELETE", self._url(name), reject=(404,))
        return status != 404

    def delete_if(self, name: str, etag: str) -> bool:
        status, _, _ = self._request(
            "DELETE",
            self._url(name),
            headers={"If-Match": f'"{etag}"'},
            reject=(404, 412),
        )
        return status not in (404, 412)

    def list(self, suffix: str = "") -> list[str]:
        query = "?" + urllib.parse.urlencode({"suffix": suffix}) if suffix else ""
        _, _, body = self._request("GET", self.base_url + query)
        try:
            listing = json.loads(body)
            names = [str(e["name"]) for e in listing["entries"]]
        except Exception as exc:
            raise StoreBackendError(
                f"malformed store listing from {self.base_url}: {exc}"
            ) from exc
        return sorted(names)

    def sweep_tmp(self, max_age: float | None = None) -> int:
        params: dict[str, str] = {"op": "sweep-tmp"}
        if max_age is not None:
            params["max_age"] = repr(float(max_age))
        _, _, body = self._request(
            "POST", self.base_url + "?" + urllib.parse.urlencode(params)
        )
        try:
            return int(json.loads(body)["removed"])
        except Exception:
            return 0


def is_store_url(spec: object) -> bool:
    """Whether ``spec`` is an HTTP(S) store URL rather than a directory path."""
    return isinstance(spec, str) and spec.lower().startswith(("http://", "https://"))


def open_backend(spec: str | Path | StoreBackend) -> StoreBackend:
    """Dispatch a store locator to its backend.

    A :class:`StoreBackend` passes through; an ``http(s)://`` URL string
    opens an :class:`HTTPBackend`; anything else is a directory path and
    opens a :class:`LocalBackend`.  This single dispatch point is what
    makes every DIR-shaped CLI surface (``--coordinate``, lease-status
    targets, ``$REPRO_CACHE_DIR``, cache push/pull) uniformly accept URLs.
    """
    if isinstance(spec, StoreBackend):
        return spec
    if is_store_url(spec):
        return HTTPBackend(str(spec))
    return LocalBackend(Path(spec))
