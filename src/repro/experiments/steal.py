"""Work-stealing sweep coordination over a shared lease store.

The static multi-host layer (``--shard K/N``, PRs 3-4) fixes each
scenario's owner up front -- balanced in count or in *predicted* cost.
Either way the partition is a bet: when one shard's estimate is wrong, or
one host is simply slower, its peers finish and idle while it grinds on.
This module replaces the bet with a runtime market.  Workers pointed at
one shared ``--coordinate`` store *claim* scenarios as they go:

* a claim is one atomic create-exclusive of ``<scenario_key>.lease``
  through the store backend -- the store is the arbiter, so exactly one
  worker wins no matter how many race (on a directory that is an
  ``os.link`` publish; against ``repro store-serve`` it is a conditional
  ``PUT If-None-Match: *`` -- see :mod:`repro.experiments.backend`); the
  lease filename goes through the same
  :func:`~repro.experiments.backend.validate_flat_name` gate as every
  store entry;
* the lease is stamped with holder host/pid and start time, and re-stamped
  (atomically, via the backend's ``put``) by a renewal thread while the
  scenario runs;
* a lease that stops being renewed for longer than the TTL -- or whose
  holder is a dead process on this host -- is *stale*: any worker may
  break it and steal the scenario, so a crashed host's work is re-run
  rather than lost;
* a finished scenario's lease is rewritten as ``done`` (with the error
  string, if it failed), which is both the "don't re-run this" signal to
  peers and the progress ledger ``repro steal-status`` renders.

Because every primitive routes through the backend, ``--coordinate``
accepts a directory (shared-filesystem pools, NFS included) *or* an
``http://`` URL (a ``repro store-serve`` process), and the protocol is
identical either way: hosts in a URL-coordinated pool share nothing but
the server's address.

Workers claim in cost-descending order (LPT dynamically --
:func:`~repro.experiments.schedule.cost_order`), each streams its own
JSONL manifest, and ``repro merge`` unions the per-worker manifests
exactly as it unions shard manifests.  Adding a worker mid-sweep just
makes the sweep finish sooner; killing one delays its in-flight scenario
by at most the TTL.

The one unavoidable caveat of leases: staleness is a *timeout*.  If
the TTL is shorter than a single scenario's wall time (renewals stop only
when the holder dies, so this takes a paused/SIGSTOPped worker or a
clock far off), a live scenario can be stolen and run twice.  Both
results are valid measurements of the same scenario; manifests carry
both lines and ``repro merge`` dedupes them.  Choose the TTL well above
the longest scenario (see ``docs/experiments.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

from .backend import LocalBackend, StoreBackend, open_backend, validate_flat_name

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_SUFFIX",
    "SWEEP_FILE",
    "Coordinator",
    "Lease",
    "LeaseLost",
    "lease_name",
    "steal_status",
]

#: Seconds after which an unrenewed lease counts as abandoned.  Renewal
#: happens every quarter-TTL while a scenario runs, so only a dead (or
#: thoroughly wedged) worker ever lets a lease age this far.
DEFAULT_LEASE_TTL = 300.0

#: Filename suffix of lease files in a coordination store.
LEASE_SUFFIX = ".lease"

#: The sweep descriptor the first worker publishes in the store, so
#: later workers can verify they are all draining the same sweep.
SWEEP_FILE = "sweep.json"

#: Scenario keys that may serve as lease filename stems directly.  Content
#: keys (``s<hex>``) always match; the canonical-JSON fallback key of an
#: unkeyable scenario never does and is hashed instead.
_SAFE_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class LeaseLost(RuntimeError):
    """This worker's lease vanished or now belongs to another worker."""


def lease_name(key: str) -> str:
    """The lease filename stem for one scenario key.

    Content keys are already flat, short, and filesystem-safe and pass
    through unchanged (the lease store stays greppable by key).  Any
    other key -- notably the ``!``-prefixed canonical-JSON fallback of an
    unkeyable scenario -- is content-hashed into a safe stem, so even a
    hostile ``dataset`` name cannot place a lease outside the store.
    The result is re-checked by the same path-validation gate the store
    import path uses.
    """
    if _SAFE_KEY.match(key) and len(key) <= 100:
        name = key
    else:
        name = "x" + hashlib.sha256(key.encode()).hexdigest()[:20]
    validate_flat_name(name + LEASE_SUFFIX, what="lease filename")
    return name


@dataclass(frozen=True)
class Lease:
    """One scenario's claim record, as stamped into its lease file."""

    key: str  # the scenario key this lease covers
    host: str  # holder hostname
    pid: int  # holder process id (0: unknown, e.g. a corrupt lease)
    started: float  # epoch seconds the scenario was claimed
    renewed: float  # epoch seconds of the freshest (re-)stamp
    done: bool = False  # the scenario completed (successfully or not)
    error: str | None = None  # failure description when it completed failed

    @property
    def holder(self) -> str:
        return f"{self.host}:{self.pid}"

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "host": self.host,
            "pid": self.pid,
            "started": self.started,
            "renewed": self.renewed,
            "done": self.done,
            "error": self.error,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "Lease":
        return cls(
            key=str(d["key"]),
            host=str(d["host"]),
            pid=int(d["pid"]),
            started=float(d["started"]),
            renewed=float(d["renewed"]),
            done=bool(d.get("done", False)),
            error=d.get("error"),
        )


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a local pid (signal 0 probe).

    ``PermissionError`` means the pid exists but belongs to another user:
    alive.  Anything else unexpected also counts as alive -- the safe
    direction, since "dead holder" grants an immediate steal.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


class Coordinator:
    """One worker's handle on a shared work-stealing lease store.

    All coordination state lives in the store itself -- lease entries
    plus one sweep descriptor -- so "the pool" is nothing but however many
    processes currently point a :class:`Coordinator` at the same locator:
    a shared directory (NFS-style filesystems included) or the URL of a
    ``repro store-serve`` process.  Every primitive is a single atomic
    create-exclusive, replace, or (conditional) delete on the backend.
    Instances are cheap and carry only identity (host/pid, for lease
    stamps) and the staleness TTL.
    """

    def __init__(
        self,
        root: str | Path | StoreBackend,
        ttl: float = DEFAULT_LEASE_TTL,
        host: str | None = None,
        pid: int | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease TTL must be positive, got {ttl!r}")
        self.backend = open_backend(root)
        self.ttl = float(ttl)
        self.host = host or socket.gethostname()
        self.pid = int(pid) if pid is not None else os.getpid()
        if isinstance(self.backend, LocalBackend):
            self.backend.root.mkdir(parents=True, exist_ok=True)
        self.claimed = 0  # leases this coordinator won
        self.stolen = 0  # of which were reclaimed stale leases

    # -- lease entries ---------------------------------------------------------

    @property
    def root(self) -> Path | str:
        """The store locator (directory path or URL) this pool coordinates on."""
        backend = self.backend
        return backend.root if isinstance(backend, LocalBackend) else backend.location

    def _lease_entry(self, key: str) -> str:
        return lease_name(key) + LEASE_SUFFIX

    def lease_path(self, key: str) -> Path:
        """The on-disk path of one lease -- local backends only.

        A convenience for tests and local tooling that inspect or corrupt
        lease files directly; a URL-coordinated pool has no such path, so
        this raises rather than inventing one.
        """
        backend = self.backend
        if not isinstance(backend, LocalBackend):
            raise TypeError(
                f"lease_path() needs a local lease directory, not {backend.location}"
            )
        return backend.root / self._lease_entry(key)

    def read(self, key: str) -> Lease | None:
        """The scenario's current lease, or ``None`` when unclaimed.

        A lease entry that cannot be parsed (a claim crashed inside the
        create-then-stamp window, pre-backend layouts only) degrades to a
        placeholder lease aged by the entry's store mtime: it still blocks
        claims until the TTL passes, then goes stale and is broken like
        any other abandoned lease.
        """
        entry = self.backend.get_entry(self._lease_entry(key))
        if entry is None:
            return None
        return self._parse(entry.data, entry.mtime, key)

    @staticmethod
    def _parse(raw: bytes, mtime: float, key: str) -> Lease:
        try:
            return Lease.from_dict(json.loads(raw))
        except Exception:
            return Lease(key=key, host="?", pid=0, started=mtime, renewed=mtime)

    def held(self, lease: Lease | None) -> bool:
        """Whether ``lease`` is this worker's own stamp."""
        return lease is not None and lease.host == self.host and lease.pid == self.pid

    def is_stale(self, lease: Lease, now: float | None = None) -> bool:
        """Whether ``lease`` may be broken and its scenario stolen.

        Done leases never go stale (completion is permanent).  A holder
        that is a dead process on *this* host is stale immediately -- no
        reason to wait out the TTL when the kernel already knows -- which
        is what lets a same-machine worker fleet recover from a SIGKILL
        in seconds.  Everything else ages out on the renewal TTL.
        """
        if lease.done:
            return False
        if lease.host == self.host and lease.pid and lease.pid != self.pid:
            if not _pid_alive(lease.pid):
                return True
        if now is None:
            now = time.time()
        return now - lease.renewed > self.ttl

    # -- claim / renew / complete ---------------------------------------------

    def claim(self, key: str) -> bool:
        """Try to take the scenario's lease; ``True`` iff this worker holds it.

        The whole race is one create-exclusive on the backend: however
        many workers collide, the store admits exactly one.  On collision
        the existing lease is inspected -- live or done means lose; stale
        means break it (:meth:`_break`, an exclusive two-phase remove) and
        retry the create once, where the winner among the breakers is
        again decided by the exclusive create.
        """
        if self._create(key):
            self.claimed += 1
            return True
        lease = self.read(key)
        broke = False
        if lease is None:
            pass  # vanished between create and read: just retry the create
        elif self.is_stale(lease):
            broke = self._break(key)
        else:
            return False
        if self._create(key):
            self.claimed += 1
            # Count a reclaim only when this worker itself removed a stale
            # lease: winning the create after a clean release() (or after a
            # peer's break) is an ordinary claim, not crash recovery.
            if broke:
                self.stolen += 1
            return True
        return False

    def _break(self, key: str) -> bool:
        """Remove ``key``'s lease iff it is *currently* stale; one breaker
        at a time.

        Breaking is two-phase: win an exclusive ``.break`` marker entry
        (create-exclusive again), re-verify staleness *under the marker*,
        and only then remove -- with a delete conditional on the content
        tag read during re-verification.  The naive read-then-unlink would
        let a slow breaker -- one that judged the lease stale a moment ago
        -- delete the fresh lease a faster breaker had already stolen and
        re-stamped, silently handing one scenario to two workers.  The
        marker excludes every other *breaker*; the conditional delete
        additionally refuses if the *holder* re-stamped between the
        re-verify and the remove (exact on the HTTP store, best-effort on
        a plain directory -- see
        :meth:`~repro.experiments.backend.LocalBackend.delete_if`).  A
        marker abandoned by a crashed breaker ages out on the TTL like any
        lease.  Returns whether the lease was removed; either way the
        caller's next exclusive create decides ownership.
        """
        name = self._lease_entry(key)
        marker = name + ".break"
        if not self.backend.create(marker, b""):
            # Another breaker is mid-break; clean its marker up only if it
            # provably crashed (aged past the TTL), then let a later claim
            # round retry.
            try:
                entry = self.backend.get_entry(marker)
                if entry is not None and time.time() - entry.mtime > self.ttl:
                    self.backend.delete(marker)
            except OSError:
                pass
            return False
        try:
            entry = self.backend.get_entry(name)
            if entry is None:
                return False  # already broken by someone faster
            lease = self._parse(entry.data, entry.mtime, key)
            if not self.is_stale(lease):
                return False  # re-claimed/renewed by someone faster
            return self.backend.delete_if(name, entry.etag)
        finally:
            try:
                self.backend.delete(marker)
            except OSError:
                pass  # a later breaker's TTL sweep reclaims the marker

    def _create(self, key: str) -> bool:
        now = time.time()
        stamp = Lease(key=key, host=self.host, pid=self.pid, started=now, renewed=now)
        return self.backend.create(self._lease_entry(key), stamp.to_json().encode())

    def renew(self, key: str) -> Lease:
        """Re-stamp this worker's lease so it does not age into staleness.

        Raises :class:`LeaseLost` when the lease is gone or carries another
        worker's stamp -- the scenario was stolen (the TTL elapsed, so this
        worker stopped renewing for too long) and the thief owns it now.
        """
        lease = self.read(key)
        if not self.held(lease):
            what = "gone" if lease is None else f"held by {lease.holder}"
            raise LeaseLost(f"lease for {key!r} is {what} (holder {self.host}:{self.pid})")
        assert lease is not None  # held() guarantees it
        fresh = replace(lease, renewed=time.time())
        self.backend.put(self._lease_entry(key), fresh.to_json().encode())
        return fresh

    def renewing(self, key: str, interval: float | None = None) -> "_LeaseRenewer":
        """Context manager renewing the lease in the background during a run."""
        return _LeaseRenewer(self, key, interval)

    def mark_done(self, key: str, error: str | None = None) -> None:
        """Record the scenario as completed (with ``error`` if it failed).

        Deliberately unconditional (atomic replace, last writer wins): the
        scenario DID run to completion here, and if the lease was stolen
        mid-run the thief's duplicate execution produces a second manifest
        line for ``repro merge`` to dedupe -- completion information must
        not be lost to a timestamp squabble.
        """
        lease = self.read(key)
        started = lease.started if lease is not None else time.time()
        now = time.time()
        stamp = Lease(
            key=key,
            host=self.host,
            pid=self.pid,
            started=started,
            renewed=now,
            done=True,
            error=error,
        )
        self.backend.put(self._lease_entry(key), stamp.to_json().encode())

    def release(self, key: str) -> None:
        """Drop this worker's claim without completing (the interrupt path).

        Removes the lease so a peer can claim the scenario immediately
        instead of waiting out the TTL.  A lease this worker does not hold
        is left untouched.
        """
        if self.held(self.read(key)):
            self.backend.delete(self._lease_entry(key))

    # -- sweep descriptor ------------------------------------------------------

    def ensure_sweep(self, keys: Iterable[str], mode: str = "compare") -> dict:
        """Publish -- or validate against -- the store's sweep descriptor.

        The first worker to arrive writes ``sweep.json`` through the
        backend's create-exclusive (atomic full-content publish: a racing
        reader never sees a partial file); every later worker must present
        the same scenario-key digest, sweep mode, and simulation-source
        fingerprint.  Two hosts accidentally pointing one store at
        different sweeps -- or at the same sweep under different simulator
        code -- fail loudly here instead of silently splitting scenarios
        that only one of them expands.
        """
        from .cache import sim_fingerprint

        distinct = sorted(set(keys))
        mine = {
            "version": 1,
            "mode": mode,
            "sim_code": sim_fingerprint(),
            "n_scenarios": len(distinct),
            "keys_digest": hashlib.sha256("\n".join(distinct).encode()).hexdigest()[:20],
        }
        existing = self._read_sweep(self.backend)
        if existing is None:
            # Losing the create race is fine: validate against the winner's.
            self.backend.create(SWEEP_FILE, json.dumps(mine, sort_keys=True).encode())
            existing = self._read_sweep(self.backend)
        if existing is None:
            raise ValueError(f"unreadable sweep descriptor in {self.root}")
        for field in ("mode", "sim_code", "n_scenarios", "keys_digest"):
            if existing.get(field) != mine[field]:
                raise ValueError(
                    f"lease store {self.root} is coordinating a different "
                    f"sweep ({field}: {existing.get(field)!r} there vs "
                    f"{mine[field]!r} here); every worker must run the same "
                    "sweep under the same code -- use a fresh --coordinate "
                    "store per sweep"
                )
        return existing

    @staticmethod
    def _read_sweep(backend: StoreBackend) -> dict | None:
        raw = backend.get(SWEEP_FILE)
        if raw is None:
            return None
        try:
            d = json.loads(raw)
        except Exception:
            return None
        return d if isinstance(d, dict) else None

    # -- inspection ------------------------------------------------------------

    def leases(self) -> list[Lease]:
        """Every lease currently in the store, sorted by entry name."""
        out = []
        for name in self.backend.list(LEASE_SUFFIX):
            entry = self.backend.get_entry(name)
            if entry is None:
                continue  # removed between list and read
            out.append(self._parse(entry.data, entry.mtime, name[: -len(LEASE_SUFFIX)]))
        return out


class _LeaseRenewer:
    """Background daemon thread re-stamping one held lease during a run.

    The renewal cadence is a quarter of the TTL (floored at 50 ms, capped
    at 30 s): several renewals must fail before the lease can go stale, so
    one slow filesystem or network hiccup never forfeits a running
    scenario.  If the lease IS lost (stolen after a genuine stall),
    ``lost`` flips true and the thread stops -- the run itself continues;
    its result is still a valid measurement, and the duplicate line is
    merge-deduped.
    """

    def __init__(
        self, coordinator: Coordinator, key: str, interval: float | None = None
    ) -> None:
        self.coordinator = coordinator
        self.key = key
        if interval is None:
            interval = min(max(coordinator.ttl / 4.0, 0.05), 30.0)
        self.interval = interval
        self.lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_LeaseRenewer":
        self._thread = threading.Thread(
            target=self._run, name=f"lease-renew-{lease_name(self.key)}", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.coordinator.renew(self.key)
            except LeaseLost:
                self.lost = True
                return
            except Exception:  # repro: noqa RPR006 -- transient I/O: next tick retries, and the lease TTL is the bounded backstop
                pass


def steal_status(root: str | Path, ttl: float = DEFAULT_LEASE_TTL) -> dict | None:
    """Inspect a coordination store without claiming anything.

    ``root`` is a lease directory or a ``repro store-serve`` URL.  Returns
    ``None`` when the store does not exist (a missing directory, or a URL
    that cannot be reached); otherwise a dict: ``sweep`` (the descriptor,
    or ``None``), ``rows`` (``(Lease, state)`` pairs, state one of
    ``done``/``failed``/``running``/``stale``), ``counts`` per state, and
    ``unclaimed`` (descriptor scenario count minus leases, when the
    descriptor exists).  Staleness is judged against ``ttl`` exactly as a
    stealing worker would judge it.
    """
    backend = open_backend(root)
    if isinstance(backend, LocalBackend) and not backend.root.is_dir():
        return None
    coordinator = Coordinator(backend, ttl=ttl)
    try:
        all_leases = coordinator.leases()
        sweep = Coordinator._read_sweep(backend)
    except OSError:
        return None  # unreachable store server: same answer as a missing dir
    now = time.time()
    rows: list[tuple[Lease, str]] = []
    counts = {"done": 0, "failed": 0, "running": 0, "stale": 0}
    for lease in all_leases:
        if lease.done:
            state = "failed" if lease.error is not None else "done"
        elif coordinator.is_stale(lease, now):
            state = "stale"
        else:
            state = "running"
        counts[state] += 1
        rows.append((lease, state))
    unclaimed = None
    if sweep is not None and isinstance(sweep.get("n_scenarios"), int):
        unclaimed = max(0, sweep["n_scenarios"] - len(rows))
    return {"sweep": sweep, "rows": rows, "counts": counts, "unclaimed": unclaimed}
