"""Work-stealing sweep coordination over a shared lease directory.

The static multi-host layer (``--shard K/N``, PRs 3-4) fixes each
scenario's owner up front -- balanced in count or in *predicted* cost.
Either way the partition is a bet: when one shard's estimate is wrong, or
one host is simply slower, its peers finish and idle while it grinds on.
This module replaces the bet with a runtime market.  Workers pointed at
one shared ``--coordinate`` directory *claim* scenarios as they go:

* a claim is one atomic ``O_CREAT | O_EXCL`` creation of
  ``<scenario_key>.lease`` -- the filesystem is the arbiter, so exactly
  one worker wins no matter how many race (same discipline as the
  :class:`~repro.experiments.cache.KeyedStore` atomic writes, and the
  lease filename goes through the same
  :func:`~repro.experiments.cache.validate_flat_name` gate);
* the lease is stamped with holder host/pid and start time, and re-stamped
  (atomically, via :func:`~repro.experiments.cache.atomic_write_bytes`)
  by a renewal thread while the scenario runs;
* a lease that stops being renewed for longer than the TTL -- or whose
  holder is a dead process on this host -- is *stale*: any worker may
  break it and steal the scenario, so a crashed host's work is re-run
  rather than lost;
* a finished scenario's lease is rewritten as ``done`` (with the error
  string, if it failed), which is both the "don't re-run this" signal to
  peers and the progress ledger ``repro steal-status`` renders.

Workers claim in cost-descending order (LPT dynamically --
:func:`~repro.experiments.schedule.cost_order`), each streams its own
JSONL manifest, and ``repro merge`` unions the per-worker manifests
exactly as it unions shard manifests.  Adding a worker mid-sweep just
makes the sweep finish sooner; killing one delays its in-flight scenario
by at most the TTL.

The one unavoidable caveat of lease files: staleness is a *timeout*.  If
the TTL is shorter than a single scenario's wall time (renewals stop only
when the holder dies, so this takes a paused/SIGSTOPped worker or a
clock far off), a live scenario can be stolen and run twice.  Both
results are valid measurements of the same scenario; manifests carry
both lines and ``repro merge`` dedupes them.  Choose the TTL well above
the longest scenario (see ``docs/experiments.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

from .cache import atomic_write_bytes, validate_flat_name

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_SUFFIX",
    "SWEEP_FILE",
    "Coordinator",
    "Lease",
    "LeaseLost",
    "lease_name",
    "steal_status",
]

#: Seconds after which an unrenewed lease counts as abandoned.  Renewal
#: happens every quarter-TTL while a scenario runs, so only a dead (or
#: thoroughly wedged) worker ever lets a lease age this far.
DEFAULT_LEASE_TTL = 300.0

#: Filename suffix of lease files in a coordination directory.
LEASE_SUFFIX = ".lease"

#: The sweep descriptor the first worker publishes in the directory, so
#: later workers can verify they are all draining the same sweep.
SWEEP_FILE = "sweep.json"

#: Scenario keys that may serve as lease filename stems directly.  Content
#: keys (``s<hex>``) always match; the canonical-JSON fallback key of an
#: unkeyable scenario never does and is hashed instead.
_SAFE_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class LeaseLost(RuntimeError):
    """This worker's lease vanished or now belongs to another worker."""


def lease_name(key: str) -> str:
    """The lease filename stem for one scenario key.

    Content keys are already flat, short, and filesystem-safe and pass
    through unchanged (the lease directory stays greppable by key).  Any
    other key -- notably the ``!``-prefixed canonical-JSON fallback of an
    unkeyable scenario -- is content-hashed into a safe stem, so even a
    hostile ``dataset`` name cannot place a lease outside the directory.
    The result is re-checked by the same path-validation gate the store
    import path uses.
    """
    if _SAFE_KEY.match(key) and len(key) <= 100:
        name = key
    else:
        name = "x" + hashlib.sha256(key.encode()).hexdigest()[:20]
    validate_flat_name(name + LEASE_SUFFIX, what="lease filename")
    return name


@dataclass(frozen=True)
class Lease:
    """One scenario's claim record, as stamped into its lease file."""

    key: str  # the scenario key this lease covers
    host: str  # holder hostname
    pid: int  # holder process id (0: unknown, e.g. a corrupt lease)
    started: float  # epoch seconds the scenario was claimed
    renewed: float  # epoch seconds of the freshest (re-)stamp
    done: bool = False  # the scenario completed (successfully or not)
    error: str | None = None  # failure description when it completed failed

    @property
    def holder(self) -> str:
        return f"{self.host}:{self.pid}"

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "host": self.host,
            "pid": self.pid,
            "started": self.started,
            "renewed": self.renewed,
            "done": self.done,
            "error": self.error,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "Lease":
        return cls(
            key=str(d["key"]),
            host=str(d["host"]),
            pid=int(d["pid"]),
            started=float(d["started"]),
            renewed=float(d["renewed"]),
            done=bool(d.get("done", False)),
            error=d.get("error"),
        )


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a local pid (signal 0 probe).

    ``PermissionError`` means the pid exists but belongs to another user:
    alive.  Anything else unexpected also counts as alive -- the safe
    direction, since "dead holder" grants an immediate steal.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


class Coordinator:
    """One worker's handle on a shared work-stealing lease directory.

    All coordination state lives in the directory itself -- lease files
    plus one sweep descriptor -- so "the pool" is nothing but however many
    processes currently point a :class:`Coordinator` at the same path
    (NFS-style shared filesystems included: every primitive is a single
    atomic create, rename, or unlink).  Instances are cheap and carry only
    identity (host/pid, for lease stamps) and the staleness TTL.
    """

    def __init__(
        self,
        root: str | Path,
        ttl: float = DEFAULT_LEASE_TTL,
        host: str | None = None,
        pid: int | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease TTL must be positive, got {ttl!r}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.host = host or socket.gethostname()
        self.pid = int(pid) if pid is not None else os.getpid()
        self.root.mkdir(parents=True, exist_ok=True)
        self.claimed = 0  # leases this coordinator won
        self.stolen = 0  # of which were reclaimed stale leases

    # -- lease files -----------------------------------------------------------

    def lease_path(self, key: str) -> Path:
        return self.root / (lease_name(key) + LEASE_SUFFIX)

    def read(self, key: str) -> Lease | None:
        """The scenario's current lease, or ``None`` when unclaimed.

        A lease file that cannot be parsed (a claim crashed inside the
        create-then-stamp window) degrades to a placeholder lease aged by
        file mtime: it still blocks claims until the TTL passes, then goes
        stale and is broken like any other abandoned lease.
        """
        return self._load(self.lease_path(key), key)

    def _load(self, path: Path, key: str) -> Lease | None:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            return Lease.from_dict(json.loads(raw))
        except Exception:
            try:
                mtime = path.stat().st_mtime
            except OSError:
                return None
            return Lease(key=key, host="?", pid=0, started=mtime, renewed=mtime)

    def held(self, lease: Lease | None) -> bool:
        """Whether ``lease`` is this worker's own stamp."""
        return lease is not None and lease.host == self.host and lease.pid == self.pid

    def is_stale(self, lease: Lease, now: float | None = None) -> bool:
        """Whether ``lease`` may be broken and its scenario stolen.

        Done leases never go stale (completion is permanent).  A holder
        that is a dead process on *this* host is stale immediately -- no
        reason to wait out the TTL when the kernel already knows -- which
        is what lets a same-machine worker fleet recover from a SIGKILL
        in seconds.  Everything else ages out on the renewal TTL.
        """
        if lease.done:
            return False
        if lease.host == self.host and lease.pid and lease.pid != self.pid:
            if not _pid_alive(lease.pid):
                return True
        if now is None:
            now = time.time()
        return now - lease.renewed > self.ttl

    # -- claim / renew / complete ---------------------------------------------

    def claim(self, key: str) -> bool:
        """Try to take the scenario's lease; ``True`` iff this worker holds it.

        The whole race is one ``O_CREAT | O_EXCL`` create: however many
        workers collide, the filesystem admits exactly one.  On collision
        the existing lease is inspected -- live or done means lose; stale
        means break it (:meth:`_break`, an exclusive two-phase remove) and
        retry the create once, where the winner among the breakers is
        again decided by ``O_EXCL``.
        """
        path = self.lease_path(key)
        if self._create(path, key):
            self.claimed += 1
            return True
        lease = self.read(key)
        broke = False
        if lease is None:
            pass  # vanished between create and read: just retry the create
        elif self.is_stale(lease):
            broke = self._break(path, key)
        else:
            return False
        if self._create(path, key):
            self.claimed += 1
            # Count a reclaim only when this worker itself removed a stale
            # lease: winning the create after a clean release() (or after a
            # peer's break) is an ordinary claim, not crash recovery.
            if broke:
                self.stolen += 1
            return True
        return False

    def _break(self, path: Path, key: str) -> bool:
        """Remove ``key``'s lease iff it is *currently* stale; one breaker
        at a time.

        Breaking is two-phase: win an exclusive ``.break`` marker
        (``O_EXCL`` again), re-verify staleness *under the marker*, and
        only then unlink.  The naive read-then-unlink would let a slow
        breaker -- one that judged the lease stale a moment ago -- delete
        the fresh lease a faster breaker had already stolen and
        re-stamped, silently handing one scenario to two workers.  Under
        the marker that cannot happen: nobody can re-create the lease
        while the stale file still occupies its path, and nobody else may
        unlink it.  A marker abandoned by a crashed breaker ages out on
        the TTL like any lease.  Returns whether the lease was removed;
        either way the caller's next ``O_EXCL`` create decides ownership.
        """
        marker = Path(str(path) + ".break")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Another breaker is mid-break; clean its marker up only if it
            # provably crashed (aged past the TTL), then let a later claim
            # round retry.
            try:
                if time.time() - marker.stat().st_mtime > self.ttl:
                    os.unlink(marker)
            except OSError:
                pass
            return False
        except FileNotFoundError:
            return False  # directory vanished; _create handles recreation
        os.close(fd)
        try:
            lease = self._load(path, key)
            if lease is None or not self.is_stale(lease):
                return False  # already broken/re-claimed by someone faster
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return True
        finally:
            try:
                os.unlink(marker)
            except FileNotFoundError:
                pass

    def _create(self, path: Path, key: str) -> bool:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except FileNotFoundError:
            # The directory itself is gone (e.g. swept between sweeps);
            # recreate and retry the exclusive create once.
            self.root.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
        now = time.time()
        stamp = Lease(key=key, host=self.host, pid=self.pid, started=now, renewed=now)
        with os.fdopen(fd, "wb") as fh:
            fh.write(stamp.to_json().encode())
        return True

    def renew(self, key: str) -> Lease:
        """Re-stamp this worker's lease so it does not age into staleness.

        Raises :class:`LeaseLost` when the lease is gone or carries another
        worker's stamp -- the scenario was stolen (the TTL elapsed, so this
        worker stopped renewing for too long) and the thief owns it now.
        """
        path = self.lease_path(key)
        lease = self.read(key)
        if not self.held(lease):
            what = "gone" if lease is None else f"held by {lease.holder}"
            raise LeaseLost(f"lease for {key!r} is {what} (holder {self.host}:{self.pid})")
        fresh = replace(lease, renewed=time.time())
        atomic_write_bytes(path, fresh.to_json().encode())
        return fresh

    def renewing(self, key: str, interval: float | None = None) -> "_LeaseRenewer":
        """Context manager renewing the lease in the background during a run."""
        return _LeaseRenewer(self, key, interval)

    def mark_done(self, key: str, error: str | None = None) -> None:
        """Record the scenario as completed (with ``error`` if it failed).

        Deliberately unconditional (atomic replace, last writer wins): the
        scenario DID run to completion here, and if the lease was stolen
        mid-run the thief's duplicate execution produces a second manifest
        line for ``repro merge`` to dedupe -- completion information must
        not be lost to a timestamp squabble.
        """
        lease = self.read(key)
        started = lease.started if lease is not None else time.time()
        now = time.time()
        stamp = Lease(
            key=key,
            host=self.host,
            pid=self.pid,
            started=started,
            renewed=now,
            done=True,
            error=error,
        )
        atomic_write_bytes(self.lease_path(key), stamp.to_json().encode())

    def release(self, key: str) -> None:
        """Drop this worker's claim without completing (the interrupt path).

        Unlinks the lease so a peer can claim the scenario immediately
        instead of waiting out the TTL.  A lease this worker does not hold
        is left untouched.
        """
        if self.held(self.read(key)):
            try:
                os.unlink(self.lease_path(key))
            except FileNotFoundError:
                pass

    # -- sweep descriptor ------------------------------------------------------

    def ensure_sweep(self, keys: Iterable[str], mode: str = "compare") -> dict:
        """Publish -- or validate against -- the directory's sweep descriptor.

        The first worker to arrive writes ``sweep.json`` (atomically and
        exclusively: full content lands via a hard link, so a racing
        reader never sees a partial file); every later worker must present
        the same scenario-key digest, sweep mode, and simulation-source
        fingerprint.  Two hosts accidentally pointing one directory at
        different sweeps -- or at the same sweep under different simulator
        code -- fail loudly here instead of silently splitting scenarios
        that only one of them expands.
        """
        from .cache import sim_fingerprint

        distinct = sorted(set(keys))
        mine = {
            "version": 1,
            "mode": mode,
            "sim_code": sim_fingerprint(),
            "n_scenarios": len(distinct),
            "keys_digest": hashlib.sha256("\n".join(distinct).encode()).hexdigest()[:20],
        }
        path = self.root / SWEEP_FILE
        existing = self._read_sweep(path)
        if existing is None:
            # The temp name embeds this worker's identity; a pathological
            # hostname must not be able to place it outside the directory.
            stem = f".sweep-{self.host}-{self.pid}.tmp"
            validate_flat_name(stem, what="sweep descriptor temp file")
            tmp = self.root / stem
            # Raw write, not atomic_write_bytes: publication is the os.link
            # below (exclusive, full-content), and the link needs a stable
            # source path this worker alone owns.
            tmp.write_bytes(json.dumps(mine, sort_keys=True).encode())  # repro: noqa RPR001,RPR105 -- private temp file; the atomic publish is the exclusive os.link below
            try:
                os.link(tmp, path)
            except FileExistsError:
                pass  # a peer published first; validate against theirs
            finally:
                tmp.unlink(missing_ok=True)
            existing = self._read_sweep(path)
        if existing is None:
            raise ValueError(f"unreadable sweep descriptor: {path}")
        for field in ("mode", "sim_code", "n_scenarios", "keys_digest"):
            if existing.get(field) != mine[field]:
                raise ValueError(
                    f"lease directory {self.root} is coordinating a different "
                    f"sweep ({field}: {existing.get(field)!r} there vs "
                    f"{mine[field]!r} here); every worker must run the same "
                    "sweep under the same code -- use a fresh --coordinate "
                    "directory per sweep"
                )
        return existing

    @staticmethod
    def _read_sweep(path: Path) -> dict | None:
        try:
            d = json.loads(path.read_bytes())
        except OSError:
            return None
        except Exception:
            return None
        return d if isinstance(d, dict) else None

    # -- inspection ------------------------------------------------------------

    def leases(self) -> list[Lease]:
        """Every lease currently in the directory, sorted by filename."""
        out = []
        for path in sorted(self.root.glob(f"*{LEASE_SUFFIX}")):
            lease = self._load(path, path.name[: -len(LEASE_SUFFIX)])
            if lease is not None:
                out.append(lease)
        return out


class _LeaseRenewer:
    """Background daemon thread re-stamping one held lease during a run.

    The renewal cadence is a quarter of the TTL (floored at 50 ms, capped
    at 30 s): several renewals must fail before the lease can go stale, so
    one slow filesystem hiccup never forfeits a running scenario.  If the
    lease IS lost (stolen after a genuine stall), ``lost`` flips true and
    the thread stops -- the run itself continues; its result is still a
    valid measurement, and the duplicate line is merge-deduped.
    """

    def __init__(
        self, coordinator: Coordinator, key: str, interval: float | None = None
    ) -> None:
        self.coordinator = coordinator
        self.key = key
        if interval is None:
            interval = min(max(coordinator.ttl / 4.0, 0.05), 30.0)
        self.interval = interval
        self.lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_LeaseRenewer":
        self._thread = threading.Thread(
            target=self._run, name=f"lease-renew-{lease_name(self.key)}", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.coordinator.renew(self.key)
            except LeaseLost:
                self.lost = True
                return
            except Exception:  # repro: noqa RPR006 -- transient I/O: next tick retries, and the lease TTL is the bounded backstop
                pass


def steal_status(root: str | Path, ttl: float = DEFAULT_LEASE_TTL) -> dict | None:
    """Inspect a coordination directory without claiming anything.

    Returns ``None`` when ``root`` is not a directory; otherwise a dict:
    ``sweep`` (the descriptor, or ``None``), ``rows`` (``(Lease, state)``
    pairs, state one of ``done``/``failed``/``running``/``stale``),
    ``counts`` per state, and ``unclaimed`` (descriptor scenario count
    minus leases, when the descriptor exists).  Staleness is judged
    against ``ttl`` exactly as a stealing worker would judge it.
    """
    root = Path(root)
    if not root.is_dir():
        return None
    coordinator = Coordinator(root, ttl=ttl)
    now = time.time()
    rows: list[tuple[Lease, str]] = []
    counts = {"done": 0, "failed": 0, "running": 0, "stale": 0}
    for lease in coordinator.leases():
        if lease.done:
            state = "failed" if lease.error is not None else "done"
        elif coordinator.is_stale(lease, now):
            state = "stale"
        else:
            state = "running"
        counts[state] += 1
        rows.append((lease, state))
    sweep = Coordinator._read_sweep(root / SWEEP_FILE)
    unclaimed = None
    if sweep is not None and isinstance(sweep.get("n_scenarios"), int):
        unclaimed = max(0, sweep["n_scenarios"] - len(rows))
    return {"sweep": sweep, "rows": rows, "counts": counts, "unclaimed": unclaimed}
