"""Cost-balanced shard scheduling: estimate, calibrate, LPT bin-pack.

PR 3's ``--shard K/N`` partitions the expanded scenario list by a stable
hash of scenario content -- balanced in *count* only, so one shard can
draw every expensive scenario (deep trees x large record scales) while
its peers idle.  This module balances by *expected cost* instead:

* :func:`estimate_cost` -- an analytic per-scenario estimate from the
  fields that dominate wall time (boosting rounds x tree depth x resolved
  records x record scale), directly overridable by an observed duration;
* :func:`observed_durations` -- harvests recorded ``duration_s`` wall
  times out of a :class:`~repro.experiments.cache.ResultStore`, turning
  the persistent store into a calibration corpus;
* :func:`scenario_costs` -- blends the two: observed scenarios cost their
  measured seconds, unobserved ones cost the analytic estimate rescaled
  by the corpus' median observed/analytic ratio;
* :func:`cost_partition` -- deterministic LPT (longest processing time)
  bin packing of scenarios into shards, the classic greedy whose max-shard
  cost is within 4/3 of optimal; ties are broken by
  :func:`~repro.experiments.runner.scenario_key`, so every host derives
  the identical assignment from the identical expanded list.

``repro sweep --shard K/N --balance cost`` partitions with the *analytic*
estimator only: hosts may hold different result stores, and folding
host-local observations into the partition would silently break the
disjoint-cover guarantee.  ``repro plan`` predicts that same partition --
stored durations refine only its *pricing* (and the plan says how many it
calibrated from), never the assignment, so the shard column always shows
what each host will actually run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from .cache import ResultStore
from .runner import result_store_key, scenario_key, shard_scenarios
from .scenario import ScenarioSpec

__all__ = [
    "BALANCE_MODES",
    "ShardPlan",
    "cost_order",
    "cost_partition",
    "estimate_cost",
    "lpt_assign",
    "observed_durations",
    "partition_scenarios",
    "plan_shards",
    "scenario_costs",
]

#: How ``--shard K/N`` picks each scenario's owner: ``hash`` (stable content
#: hash, the PR-3 default -- balanced in count) or ``cost`` (deterministic
#: LPT over estimated costs -- balanced in expected wall time).
BALANCE_MODES = ("hash", "cost")


def estimate_cost(
    scenario: ScenarioSpec,
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
) -> float:
    """Expected cost of running ``scenario`` once, in arbitrary units.

    The analytic estimate multiplies the knobs that dominate wall time:
    boosting rounds x maximum tree depth x resolved record count x
    ``extra_scale`` (the Fig. 12 record multiplier).  Only ratios between
    scenarios matter to the partitioner, so the units are arbitrary --
    unless ``observed`` (a ``scenario_key`` -> wall-seconds mapping, e.g.
    from :func:`observed_durations`) holds this scenario, in which case the
    measured duration overrides the estimate outright.

    ``mode`` participates for symmetry with the runner API; compare and
    inference sweeps share the analytic form (training the ensemble
    dominates both) but calibrate from their own observation namespaces.
    """
    if observed:
        duration = observed.get(scenario_key(scenario))
        if duration is not None:
            return float(duration)
    return (
        float(scenario.train.n_trees)
        * float(scenario.train.max_depth)
        * float(scenario.approx_records())
        * float(scenario.extra_scale)
    )


def observed_durations(
    results: ResultStore,
    scenarios: Sequence[ScenarioSpec],
    mode: str = "compare",
) -> dict[str, float]:
    """Recorded wall times for ``scenarios``, keyed by ``scenario_key``.

    Reads each scenario's stored payload (its own ``mode`` namespace) and
    collects the ``duration_s`` the original execution recorded.  This is a
    scheduling hint, not a correctness input, so payloads are read
    permissively: anything unreadable, durationless, or non-positive is
    simply not an observation.
    """
    out: dict[str, float] = {}
    for scenario in scenarios:
        try:
            payload = results.get(result_store_key(scenario, mode))
        except Exception:
            continue  # unkeyable scenario: nothing can be stored for it
        if not isinstance(payload, dict):
            continue
        result = payload.get("result")
        duration = result.get("duration_s") if isinstance(result, dict) else None
        if isinstance(duration, (int, float)) and duration > 0:
            out[scenario_key(scenario)] = float(duration)
    return out


def scenario_costs(
    scenarios: Sequence[ScenarioSpec],
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Per-scenario costs (keyed by ``scenario_key``), corpus-calibrated.

    Observed scenarios cost their measured wall seconds.  Unobserved ones
    cost the analytic estimate rescaled by the median observed/analytic
    ratio over the corpus, so the two kinds live on one comparable scale
    (mixing raw seconds with raw analytic units would let either side
    dwarf the other and unbalance the packing).  With no observations the
    analytic units pass through unscaled -- only ratios matter.
    """
    analytic = {scenario_key(s): estimate_cost(s, mode) for s in scenarios}
    observed = {k: v for k, v in (observed or {}).items() if k in analytic}
    if not observed:
        return analytic
    ratios = sorted(v / analytic[k] for k, v in observed.items() if analytic[k] > 0)
    factor = ratios[len(ratios) // 2] if ratios else 1.0
    return {
        key: observed[key] if key in observed else cost * factor
        for key, cost in analytic.items()
    }


def lpt_assign(items: Sequence[tuple[str, float]], n_shards: int) -> dict[str, int]:
    """LPT bin packing: assign keyed costs to the least-loaded shard.

    Items are processed in decreasing cost order (ties broken by key, so
    the schedule is a pure function of content) and each lands on the
    currently least-loaded shard (ties broken by shard index).  The
    classic Graham bound applies: the max shard load is at most
    ``4/3 - 1/(3N)`` times optimal.  Returns ``key -> shard index``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    assignment: dict[str, int] = {}
    loads = [(0.0, shard) for shard in range(n_shards)]
    heapq.heapify(loads)
    for key, cost in sorted(items, key=lambda kv: (-kv[1], kv[0])):
        if key in assignment:
            raise ValueError(f"duplicate item key {key!r}")
        load, shard = heapq.heappop(loads)
        assignment[key] = shard
        heapq.heappush(loads, (load + max(float(cost), 0.0), shard))
    return assignment


def _grouped(
    scenarios: Sequence[ScenarioSpec],
) -> dict[str, list[ScenarioSpec]]:
    """Scenarios grouped by content key, first-appearance order preserved."""
    groups: dict[str, list[ScenarioSpec]] = {}
    for scenario in scenarios:
        groups.setdefault(scenario_key(scenario), []).append(scenario)
    return groups


def cost_order(
    scenarios: Sequence[ScenarioSpec],
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
) -> list[ScenarioSpec]:
    """Distinct scenarios in claim order: cost-descending, keys tie-break.

    This is the LPT intuition behind :func:`cost_partition` applied
    *dynamically*: a work-stealing pool whose workers always claim the
    most expensive remaining scenario minimizes the tail where one worker
    finishes a giant scenario long after its peers drained everything
    else.  Duplicates collapse to their first occurrence (they share a
    key, hence a lease).  Unlike a static partition, the order MAY fold in
    host-local ``observed`` durations: ordering need not agree across
    hosts for correctness -- the lease files arbitrate ownership -- so
    each worker is free to use the best pricing its own result store can
    offer.
    """
    groups = _grouped(scenarios)
    costs = scenario_costs(scenarios, mode, observed)
    return [groups[key][0] for key in sorted(groups, key=lambda k: (-costs[k], k))]


def cost_partition(
    scenarios: Sequence[ScenarioSpec],
    n_shards: int,
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
) -> list[list[ScenarioSpec]]:
    """Partition ``scenarios`` into ``n_shards`` cost-balanced shards.

    Like :func:`~repro.experiments.runner.shard_scenarios`, the shards are
    a disjoint cover of the input (duplicates share a key, hence an owner
    -- their group costs its multiplicity) and each shard preserves the
    input's relative order.  Unlike it, ownership minimizes the max shard
    cost via deterministic LPT rather than spreading by hash.
    """
    groups = _grouped(scenarios)
    costs = scenario_costs(scenarios, mode, observed)
    assignment = lpt_assign(
        [(key, costs[key] * len(group)) for key, group in groups.items()],
        n_shards,
    )
    shards: list[list[ScenarioSpec]] = [[] for _ in range(n_shards)]
    for scenario in scenarios:
        shards[assignment[scenario_key(scenario)]].append(scenario)
    return shards


def partition_scenarios(
    scenarios: Sequence[ScenarioSpec],
    shard: int,
    n_shards: int,
    balance: str = "hash",
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
) -> list[ScenarioSpec]:
    """The sublist of ``scenarios`` owned by ``shard``, under either balance.

    ``balance="hash"`` defers to the PR-3 stable-hash partition (and
    ignores ``observed``); ``balance="cost"`` uses :func:`cost_partition`.
    Every host must call this with the same ``balance`` (and, for cost,
    the same ``observed`` corpus -- the CLI passes none) to keep the N
    shards a disjoint cover.
    """
    if balance not in BALANCE_MODES:
        raise ValueError(
            f"unknown balance mode {balance!r}; known: {list(BALANCE_MODES)}"
        )
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard index {shard} outside 0..{n_shards - 1}")
    if balance == "hash":
        return shard_scenarios(scenarios, shard, n_shards)
    return cost_partition(scenarios, n_shards, mode, observed)[shard]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's predicted slice of a sweep (the ``repro plan`` row)."""

    shard: int  # 0-based shard index
    scenarios: tuple[ScenarioSpec, ...] = ()
    cost: float = 0.0  # sum of per-occurrence predicted costs

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)


def plan_shards(
    scenarios: Sequence[ScenarioSpec],
    n_shards: int,
    balance: str = "cost",
    mode: str = "compare",
    observed: Mapping[str, float] | None = None,
    costs: Mapping[str, float] | None = None,
) -> list[ShardPlan]:
    """Predict the per-shard cost table for an N-way sweep partition.

    The *assignment* is exactly what ``repro sweep --shard K/N`` with the
    same ``balance`` would run -- in particular, cost balance partitions
    with the analytic estimator only, never with ``observed``, because the
    sweep does too (see :func:`partition_scenarios`): a plan whose shard
    column diverged from the real partition would have operators
    provisioning hosts for slices nobody runs.  The *pricing* does fold in
    ``observed`` wall times (pass a precomputed :func:`scenario_costs` map
    as ``costs`` to skip re-deriving it), so hash and cost balance are
    compared on identical per-scenario estimates and the only difference
    is the assignment.  Returns one :class:`ShardPlan` per shard (empty
    shards included), in shard order.
    """
    if balance not in BALANCE_MODES:
        raise ValueError(
            f"unknown balance mode {balance!r}; known: {list(BALANCE_MODES)}"
        )
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if balance == "cost":
        shards = cost_partition(scenarios, n_shards, mode)
    else:
        shards = [shard_scenarios(scenarios, i, n_shards) for i in range(n_shards)]
    if costs is None:
        costs = scenario_costs(scenarios, mode, observed)
    return [
        ShardPlan(
            shard=i,
            scenarios=tuple(members),
            cost=sum(costs[scenario_key(s)] for s in members),
        )
        for i, members in enumerate(shards)
    ]
