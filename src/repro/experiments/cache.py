"""Persistent keyed stores: trained profiles and timing results.

Two expensive things come out of an experiment and both are cached on disk
under content-derived keys:

* :class:`ProfileCache` -- trained :class:`~repro.gbdt.trainer.TrainResult`
  objects (the functional half), pickled under
  :meth:`ScenarioSpec.train_key`, so a configuration is functionally
  trained at most once *ever* -- across benchmark runs, CLI invocations,
  sweep workers, and sessions.
* :class:`ResultStore` -- timing-result payloads (the simulation half,
  JSON-serializable dicts), stored under :meth:`ScenarioSpec.cache_key`,
  so a completed scenario is never re-simulated either.

Both are :class:`KeyedStore` instances sharing one directory
(``results/cache/`` by default, overridable with ``$REPRO_CACHE_DIR``):
``<train_key>.pkl`` pickles next to ``<cache_key>.json`` result files.
Writes are atomic (temp file + rename) so concurrent sweep workers can
share the directory; unreadable entries are treated as misses.  A process
-local memory layer sits above the disk so repeated lookups return the
*same* object (the old module-level ``_TRAIN_CACHE`` identity contract).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from types import EllipsisType, ModuleType
from typing import Any, Iterable

__all__ = [
    "CACHE_VERSION",
    "KeyedStore",
    "ProfileCache",
    "ResultStore",
    "atomic_write_bytes",
    "code_fingerprint",
    "default_cache",
    "default_cache_dir",
    "export_entries",
    "import_entries",
    "sim_fingerprint",
    "sweep_stale_tmp",
    "validate_flat_name",
]

#: File suffixes that may enter/leave a cache directory through the tar
#: export/import path: trained-profile pickles and result-store JSON.
_ENTRY_SUFFIXES = (".pkl", ".json")

#: Bump to invalidate every on-disk artifact (serialization/trainer layout
#: changes); the version participates in the content hash.
CACHE_VERSION = 1

#: ``clear()`` only removes ``*.tmp`` files at least this old: a fresh temp
#: file may be a concurrent worker's in-flight atomic write in the shared
#: directory, and unlinking it would turn that worker's success into an
#: error.  Orphans from killed workers are, by definition, not fresh.
TMP_SWEEP_AGE_SECONDS = 60.0

_CODE_FINGERPRINT: str | None = None
_SIM_FINGERPRINT: str | None = None


def validate_flat_name(name: str, what: str = "archive member") -> None:
    """Reject ``name`` unless it is a plain flat filename.

    Everything that enters a store directory from outside -- tar members on
    import, lease filenames in a shared work-stealing directory -- must be a
    bare basename: a name carrying any path structure (``sub/x.pkl``,
    ``../x.pkl``, an absolute path, ``.``/``..``) could reach outside the
    directory it is written into.  One shared gate keeps the import path and
    the lease code from drifting apart on what "safe" means.
    """
    if os.path.basename(name) != name or not name or name in (".", ".."):
        raise ValueError(
            f"refusing {what} {name!r}: store entries are flat filenames, "
            "and a path component could escape the store directory"
        )


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The single write protocol shared by every store mutation that must be
    safe under concurrent readers and writers: :meth:`KeyedStore.put`,
    archive import, and lease renewal in a shared coordination directory.
    A reader never observes a partial file; a crash leaves only a ``*.tmp``
    orphan, which :func:`sweep_stale_tmp` reclaims once it is provably
    abandoned.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def sweep_stale_tmp(root: str | Path, max_age: float | None = None) -> int:
    """Remove abandoned ``*.tmp`` files under ``root``; returns the count.

    Only temp files at least ``max_age`` seconds old (default
    :data:`TMP_SWEEP_AGE_SECONDS`) are removed: a fresh temp file may be a
    concurrent worker's :func:`atomic_write_bytes` in flight, and unlinking
    it would turn that worker's success into an error.  Orphans from killed
    workers are, by definition, not fresh.
    """
    import time

    root = Path(root)
    if max_age is None:
        max_age = TMP_SWEEP_AGE_SECONDS
    cutoff = time.time() - max_age
    removed = 0
    if root.is_dir():
        for p in root.glob("*.tmp"):
            try:
                if p.stat().st_mtime <= cutoff:
                    p.unlink()
                    removed += 1
            except FileNotFoundError:
                pass  # another sweep/worker already removed it
    return removed


def _hash_packages(*packages: ModuleType) -> str:
    import hashlib

    h = hashlib.sha256()
    for pkg in packages:
        root = Path(pkg.__file__).parent
        for p in sorted(root.glob("*.py")):
            h.update(p.name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()[:16]


def code_fingerprint() -> str:
    """Digest of the functional-training source (``repro.gbdt`` +
    ``repro.datasets``), folded into every training cache key.

    Parameters alone cannot tell a pre-change artifact from a post-change
    one: editing the trainer or the synthetic generators would otherwise
    silently serve stale pickles to benchmarks, ``repro validate``, and the
    CLI.  Hashing the source files auto-invalidates on any such edit (a
    comment-only change also invalidates -- the safe direction).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        from .. import datasets, gbdt

        _CODE_FINGERPRINT = _hash_packages(gbdt, datasets)  # repro: noqa RPR104 -- per-process memo of a content hash; every process computes the identical value
    return _CODE_FINGERPRINT


def sim_fingerprint() -> str:
    """Digest of everything that influences a *timing* result.

    Stored timing results depend on the training source *and* the hardware
    models, cost calibration, mapping engine, and memory system.  The
    fingerprint is recorded inside every :class:`ResultStore` payload and
    checked on load, so editing any simulation source auto-invalidates
    persisted timings the same way :func:`code_fingerprint` invalidates
    trained artifacts.
    """
    global _SIM_FINGERPRINT
    if _SIM_FINGERPRINT is None:
        from .. import baselines, core, datasets, gbdt, memory, serving, sim

        _SIM_FINGERPRINT = _hash_packages(  # repro: noqa RPR104 -- per-process memo of a content hash; every process computes the identical value
            gbdt, datasets, baselines, core, memory, serving, sim
        )
    return _SIM_FINGERPRINT


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``results/cache`` under the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", os.path.join("results", "cache")))


class KeyedStore:
    """Two-level (memory over disk) keyed store; subclasses pick the codec.

    ``root=None`` disables the disk layer (memory-only, the behaviour of the
    old in-process dict).  Instances are cheap; every instance pointed at the
    same directory shares the persistent layer.  Writes are atomic (temp
    file + rename); a corrupt or truncated entry is a miss, not a crash.
    """

    #: Filename suffix for this store's entries (also what ``clear`` globs).
    suffix = ".bin"

    def __init__(
        self, root: str | Path | None | EllipsisType = ..., memory: bool = True
    ) -> None:
        if root is ...:
            root = default_cache_dir()
        self.root: Path | None = Path(root) if root is not None else None
        self._memory: dict[str, Any] | None = {} if memory else None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- codec (subclass responsibility) ---------------------------------------

    def _encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def _decode(self, raw: bytes) -> Any:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    def path(self, key: str) -> Path | None:
        return self.root / f"{key}{self.suffix}" if self.root is not None else None

    def contains(self, key: str) -> bool:
        if self._memory is not None and key in self._memory:
            return True
        p = self.path(key)
        return p is not None and p.is_file()

    __contains__ = contains

    # -- lookup / store ---------------------------------------------------------

    def get(self, key: str) -> Any | None:
        if self._memory is not None and key in self._memory:
            self.hits += 1
            return self._memory[key]
        p = self.path(key)
        if p is not None and p.is_file():
            try:
                value = self._decode(p.read_bytes())
            except Exception:
                # Truncated/incompatible entry: treat as a miss and recompute.
                self.misses += 1
                return None
            if self._memory is not None:
                self._memory[key] = value
            self.hits += 1
            return value
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        if self._memory is not None:
            self._memory[key] = value
        p = self.path(key)
        if p is not None:
            atomic_write_bytes(p, self._encode(value))
        self.stores += 1

    def invalidate(self, key: str) -> None:
        """Drop one entry from both layers (e.g. ``repro sweep --refresh``)."""
        if self._memory is not None:
            self._memory.pop(key, None)
        p = self.path(key)
        if p is not None and p.is_file():
            p.unlink()

    def clear(self) -> None:
        """Drop every entry, sweep orphaned temp files, reset the counters.

        A SIGKILL'd worker can leave ``*.tmp`` files behind (the atomic-write
        window); they are garbage and are removed here alongside the real
        entries -- but only once :data:`TMP_SWEEP_AGE_SECONDS` old, since a
        fresh temp file may be a live worker's write in flight.  The
        hit/miss/store counters describe the store's content history, so an
        emptied store starts them from zero again.
        """
        if self._memory is not None:
            self._memory.clear()
        if self.root is not None and self.root.is_dir():
            for p in self.root.glob(f"*{self.suffix}"):
                p.unlink()
            sweep_stale_tmp(self.root)
        self.hits = 0
        self.misses = 0
        self.stores = 0


class ProfileCache(KeyedStore):
    """Pickle store for trained artifacts, keyed by ``train_key()``."""

    suffix = ".pkl"

    def _encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, raw: bytes) -> Any:
        return pickle.loads(raw)


def _json_default(obj: Any) -> Any:
    # NumPy scalars leak into profile summaries; store their Python values.
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


class ResultStore(KeyedStore):
    """JSON store for timing-result payloads, keyed by ``cache_key()``.

    Values are plain dicts (see :func:`repro.experiments.runner.run_scenario`
    for the payload shape); JSON keeps the result files human-inspectable
    and independent of pickle compatibility.
    """

    suffix = ".json"

    def _encode(self, value: Any) -> bytes:
        return json.dumps(value, sort_keys=True, default=_json_default).encode()

    def _decode(self, raw: bytes) -> Any:
        return json.loads(raw)


def export_entries(
    root: str | Path, tar_path: str | Path, keys: Iterable[str] | None = None
) -> list[str]:
    """Tar up cache-directory entries so a warm host can seed cold shards.

    ``keys=None`` exports every store entry under ``root``; otherwise only
    entries whose key (filename stem) is in ``keys``.  Returns the archive
    member names (flat basenames -- the archive has no directory structure,
    so it can be imported into any cache root).  Temp files and anything
    that is not a store entry are never exported.
    """
    import tarfile

    root = Path(root)
    tar_path = Path(tar_path)
    wanted = None if keys is None else set(keys)
    members: list[str] = []
    tar_path.parent.mkdir(parents=True, exist_ok=True)
    with tarfile.open(tar_path, "w") as tar:
        if root.is_dir():
            for p in sorted(root.iterdir()):
                if not p.is_file() or p.suffix not in _ENTRY_SUFFIXES:
                    continue
                if wanted is not None and p.stem not in wanted:
                    continue
                tar.add(p, arcname=p.name)
                members.append(p.name)
    return members


def import_entries(root: str | Path, tar_path: str | Path) -> list[str]:
    """Unpack :func:`export_entries` archives into a cache directory.

    Only regular members whose name looks like a store entry are
    extracted.  :func:`export_entries` archives are flat basenames, so a
    member carrying any path structure (``sub/x.pkl``, ``../x.pkl``, an
    absolute path, a directory) is a crafted or corrupt archive trying to
    reach outside the store directory; the whole import is rejected up
    front -- before anything is extracted -- by :func:`validate_flat_name`
    rather than silently flattening or skipping it.  Flat non-entry members
    (wrong suffix, links) are tolerated and skipped, as everywhere else
    stores are read.  Entries land through :func:`atomic_write_bytes`, the
    same protocol concurrent sweep workers use, so importing into a live
    cache directory is safe.  Returns the imported entry names.
    """
    import tarfile

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    imported: list[str] = []
    with tarfile.open(tar_path, "r") as tar:
        members = tar.getmembers()
        for member in members:
            validate_flat_name(member.name, what="to import archive member")
        for member in members:
            name = member.name
            if not member.isreg() or Path(name).suffix not in _ENTRY_SUFFIXES:
                continue
            fh = tar.extractfile(member)
            if fh is None:
                continue
            atomic_write_bytes(root / name, fh.read())
            imported.append(name)
    return imported


_DEFAULT_CACHE: ProfileCache | None = None


def default_cache() -> ProfileCache:
    """The process-wide cache used when callers don't supply their own."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ProfileCache()  # repro: noqa RPR104 -- per-process singleton over a shared on-disk root; the store, not the handle, is the shared state
    return _DEFAULT_CACHE
