"""Persistent artifact cache for trained profiles.

Trained :class:`~repro.gbdt.trainer.TrainResult` objects (the expensive,
functional half of every experiment) are stored on disk under a
content-derived key (:meth:`ScenarioSpec.train_key`), so a configuration is
functionally trained at most once *ever* -- across benchmark runs, CLI
invocations, sweep workers, and sessions.

Layout: one ``<key>.pkl`` pickle per artifact under the cache root
(``results/cache/`` by default, overridable with ``$REPRO_CACHE_DIR``).
Writes are atomic (temp file + rename) so concurrent sweep workers can
share one directory; unreadable entries are treated as misses.  A process
-local memory layer sits above the disk so repeated lookups return the
*same* object (the old module-level ``_TRAIN_CACHE`` identity contract).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "CACHE_VERSION",
    "ProfileCache",
    "code_fingerprint",
    "default_cache",
    "default_cache_dir",
]

#: Bump to invalidate every on-disk artifact (serialization/trainer layout
#: changes); the version participates in the content hash.
CACHE_VERSION = 1

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of the functional-training source (``repro.gbdt`` +
    ``repro.datasets``), folded into every training cache key.

    Parameters alone cannot tell a pre-change artifact from a post-change
    one: editing the trainer or the synthetic generators would otherwise
    silently serve stale pickles to benchmarks, ``repro validate``, and the
    CLI.  Hashing the source files auto-invalidates on any such edit (a
    comment-only change also invalidates -- the safe direction).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import hashlib

        from .. import datasets, gbdt

        h = hashlib.sha256()
        for pkg in (gbdt, datasets):
            root = Path(pkg.__file__).parent
            for p in sorted(root.glob("*.py")):
                h.update(p.name.encode())
                h.update(p.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()[:16]
    return _CODE_FINGERPRINT


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``results/cache`` under the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", os.path.join("results", "cache")))


class ProfileCache:
    """Two-level (memory over disk) store for training artifacts.

    ``root=None`` disables the disk layer (memory-only, the behaviour of the
    old in-process dict).  Instances are cheap; every instance pointed at the
    same directory shares the persistent layer.
    """

    def __init__(self, root=..., memory: bool = True):
        if root is ...:
            root = default_cache_dir()
        self.root: Path | None = Path(root) if root is not None else None
        self._memory: dict[str, Any] | None = {} if memory else None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- helpers --------------------------------------------------------------

    def path(self, key: str) -> Path | None:
        return self.root / f"{key}.pkl" if self.root is not None else None

    def contains(self, key: str) -> bool:
        if self._memory is not None and key in self._memory:
            return True
        p = self.path(key)
        return p is not None and p.is_file()

    __contains__ = contains

    # -- lookup / store ---------------------------------------------------------

    def get(self, key: str) -> Any | None:
        if self._memory is not None and key in self._memory:
            self.hits += 1
            return self._memory[key]
        p = self.path(key)
        if p is not None and p.is_file():
            try:
                with open(p, "rb") as fh:
                    value = pickle.load(fh)
            except Exception:
                # Truncated/incompatible entry: treat as a miss and retrain.
                self.misses += 1
                return None
            if self._memory is not None:
                self._memory[key] = value
            self.hits += 1
            return value
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        if self._memory is not None:
            self._memory[key] = value
        p = self.path(key)
        if p is not None:
            p.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=p.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, p)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        self.stores += 1

    def invalidate(self, key: str) -> None:
        """Drop one entry from both layers (e.g. ``repro sweep --refresh``)."""
        if self._memory is not None:
            self._memory.pop(key, None)
        p = self.path(key)
        if p is not None and p.is_file():
            p.unlink()

    def clear(self) -> None:
        if self._memory is not None:
            self._memory.clear()
        if self.root is not None and self.root.is_dir():
            for p in self.root.glob("*.pkl"):
                p.unlink()


_DEFAULT_CACHE: ProfileCache | None = None


def default_cache() -> ProfileCache:
    """The process-wide cache used when callers don't supply their own."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ProfileCache()
    return _DEFAULT_CACHE
