"""Persistent keyed stores: trained profiles and timing results.

Two expensive things come out of an experiment and both are cached under
content-derived keys:

* :class:`ProfileCache` -- trained :class:`~repro.gbdt.trainer.TrainResult`
  objects (the functional half), pickled under
  :meth:`ScenarioSpec.train_key`, so a configuration is functionally
  trained at most once *ever* -- across benchmark runs, CLI invocations,
  sweep workers, and sessions.
* :class:`ResultStore` -- timing-result payloads (the simulation half,
  JSON-serializable dicts), stored under :meth:`ScenarioSpec.cache_key`,
  so a completed scenario is never re-simulated either.

Both are :class:`KeyedStore` instances sharing one store *location* --
``results/cache/`` by default, overridable with ``$REPRO_CACHE_DIR``,
which may now also be an ``http://`` URL served by ``repro store-serve``:
``<train_key>.pkl`` pickles next to ``<cache_key>.json`` result files.
Storage is pluggable (:mod:`repro.experiments.backend`): a directory
opens a :class:`~repro.experiments.backend.LocalBackend` (byte-identical
to the pre-backend layout), a URL opens an
:class:`~repro.experiments.backend.HTTPBackend`.  Writes are atomic on
every backend, so concurrent sweep workers can share a store; unreadable
entries are treated as misses.  A process-local memory layer sits above
the persistent layer so repeated lookups return the *same* object (the
old module-level ``_TRAIN_CACHE`` identity contract).
"""

from __future__ import annotations

import json
import pickle
import warnings
from pathlib import Path
from types import EllipsisType, ModuleType
from typing import Any, Iterable

from .backend import (
    TMP_SWEEP_AGE_SECONDS,
    LocalBackend,
    StoreBackend,
    atomic_write_bytes,
    is_store_url,
    open_backend,
    sweep_stale_tmp,
    validate_flat_name,
)

__all__ = [
    "CACHE_VERSION",
    "TMP_SWEEP_AGE_SECONDS",
    "KeyedStore",
    "ProfileCache",
    "ResultStore",
    "atomic_write_bytes",
    "code_fingerprint",
    "copy_entries",
    "default_cache",
    "default_cache_dir",
    "export_entries",
    "import_entries",
    "sim_fingerprint",
    "sweep_stale_tmp",
    "validate_flat_name",
]

#: File suffixes that may enter/leave a store through the tar
#: export/import and store-to-store copy paths: trained-profile pickles
#: and result-store JSON.
_ENTRY_SUFFIXES = (".pkl", ".json")

#: Store entry names that are coordination metadata, not cache entries --
#: one store may serve as a sweep's lease store *and* its cache (a single
#: ``repro store-serve`` URL doing both jobs), and the work-stealing sweep
#: descriptor (:data:`repro.experiments.steal.SWEEP_FILE`) matches the
#: ``.json`` entry suffix, so export/copy must skip it by name.
_RESERVED_NAMES = frozenset({"sweep.json"})

#: Bump to invalidate every on-disk artifact (serialization/trainer layout
#: changes); the version participates in the content hash.
CACHE_VERSION = 1

_CODE_FINGERPRINT: str | None = None
_SIM_FINGERPRINT: str | None = None


def _hash_packages(*packages: ModuleType) -> str:
    import hashlib

    h = hashlib.sha256()
    for pkg in packages:
        root = Path(pkg.__file__).parent
        for p in sorted(root.glob("*.py")):
            h.update(p.name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()[:16]


def code_fingerprint() -> str:
    """Digest of the functional-training source (``repro.gbdt`` +
    ``repro.datasets``), folded into every training cache key.

    Parameters alone cannot tell a pre-change artifact from a post-change
    one: editing the trainer or the synthetic generators would otherwise
    silently serve stale pickles to benchmarks, ``repro validate``, and the
    CLI.  Hashing the source files auto-invalidates on any such edit (a
    comment-only change also invalidates -- the safe direction).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        from .. import datasets, gbdt

        _CODE_FINGERPRINT = _hash_packages(gbdt, datasets)  # repro: noqa RPR104 -- per-process memo of a content hash; every process computes the identical value
    return _CODE_FINGERPRINT


def sim_fingerprint() -> str:
    """Digest of everything that influences a *timing* result.

    Stored timing results depend on the training source *and* the hardware
    models, cost calibration, mapping engine, and memory system.  The
    fingerprint is recorded inside every :class:`ResultStore` payload and
    checked on load, so editing any simulation source auto-invalidates
    persisted timings the same way :func:`code_fingerprint` invalidates
    trained artifacts.
    """
    global _SIM_FINGERPRINT
    if _SIM_FINGERPRINT is None:
        from .. import baselines, core, datasets, gbdt, memory, serving, sim

        _SIM_FINGERPRINT = _hash_packages(  # repro: noqa RPR104 -- per-process memo of a content hash; every process computes the identical value
            gbdt, datasets, baselines, core, memory, serving, sim
        )
    return _SIM_FINGERPRINT


def default_cache_dir() -> Path | str:
    """``$REPRO_CACHE_DIR`` if set, else ``results/cache`` under the cwd.

    An ``http(s)://`` value is returned as the raw URL string (the store
    locator for :func:`~repro.experiments.backend.open_backend`), so a
    worker whose environment points at a ``repro store-serve`` instance
    transparently trains and records against the remote store.
    """
    import os

    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw is None:
        return Path("results") / "cache"
    if is_store_url(raw):
        return raw
    return Path(raw)


class KeyedStore:
    """Two-level (memory over backend) keyed store; subclasses pick the codec.

    ``root`` is a store locator -- a directory path, an ``http(s)://``
    URL, or an already-open :class:`~repro.experiments.backend.StoreBackend`
    -- dispatched through :func:`~repro.experiments.backend.open_backend`.
    ``root=None`` disables the persistent layer (memory-only, the
    behaviour of the old in-process dict).  Instances are cheap; every
    instance pointed at the same location shares the persistent layer.
    Writes are atomic on every backend; a corrupt or truncated entry is a
    miss, not a crash.
    """

    #: Filename suffix for this store's entries (also what ``clear`` removes).
    suffix = ".bin"

    def __init__(
        self,
        root: str | Path | StoreBackend | None | EllipsisType = ...,
        memory: bool = True,
    ) -> None:
        if root is ...:
            root = default_cache_dir()
        self.backend: StoreBackend | None = open_backend(root) if root is not None else None
        self._memory: dict[str, Any] | None = {} if memory else None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- codec (subclass responsibility) ---------------------------------------

    def _encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def _decode(self, raw: bytes) -> Any:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    @property
    def root(self) -> Path | str | None:
        """The store locator: a directory :class:`Path`, a URL string, or
        ``None`` for a memory-only store.

        Feeding it back into another store (``ResultStore(root=cache.root)``)
        or into a worker process (``str(cache.root)``) reopens the same
        persistent layer whatever the backend is.
        """
        if self.backend is None:
            return None
        if isinstance(self.backend, LocalBackend):
            return self.backend.root
        return self.backend.location

    def _entry_name(self, key: str) -> str:
        return f"{key}{self.suffix}"

    def path(self, key: str) -> Path | None:
        """Deprecated: the on-disk path of one entry, or ``None``.

        This leaked the backend -- a remote store entry has no
        :class:`Path`.  Use :meth:`contains` for existence and
        :meth:`get_raw` for the raw bytes; direct mutation should go
        through :attr:`backend`.  Kept as a warning shim for one release;
        returns ``None`` for memory-only *and* remote stores.
        """
        warnings.warn(
            "KeyedStore.path() is deprecated (it assumes a local-filesystem "
            "backend); use contains()/get_raw() or the backend attribute",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(self.backend, LocalBackend):
            return self.backend.root / self._entry_name(key)
        return None

    def contains(self, key: str) -> bool:
        if self._memory is not None and key in self._memory:
            return True
        return self.backend is not None and self.backend.contains(self._entry_name(key))

    __contains__ = contains

    # -- lookup / store ---------------------------------------------------------

    def get_raw(self, key: str) -> bytes | None:
        """The entry's raw encoded bytes from the persistent layer, or ``None``.

        Bypasses both the memory layer and the codec: this is "what is
        actually stored", for callers that ship entries around (export,
        push/pull) or inspect them without trusting the decode.
        """
        if self.backend is None:
            return None
        return self.backend.get(self._entry_name(key))

    def get(self, key: str) -> Any | None:
        if self._memory is not None and key in self._memory:
            self.hits += 1
            return self._memory[key]
        raw = self.backend.get(self._entry_name(key)) if self.backend is not None else None
        if raw is not None:
            try:
                value = self._decode(raw)
            except Exception:
                # Truncated/incompatible entry: treat as a miss and recompute.
                self.misses += 1
                return None
            if self._memory is not None:
                self._memory[key] = value
            self.hits += 1
            return value
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        if self._memory is not None:
            self._memory[key] = value
        if self.backend is not None:
            self.backend.put(self._entry_name(key), self._encode(value))
        self.stores += 1

    def invalidate(self, key: str) -> None:
        """Drop one entry from both layers (e.g. ``repro sweep --refresh``)."""
        if self._memory is not None:
            self._memory.pop(key, None)
        if self.backend is not None:
            self.backend.delete(self._entry_name(key))

    def clear(self) -> None:
        """Drop every entry, sweep orphaned temp files, reset the counters.

        A SIGKILL'd worker can leave ``*.tmp`` files behind (the atomic-write
        window); they are garbage and are removed here alongside the real
        entries -- but only once :data:`TMP_SWEEP_AGE_SECONDS` old, since a
        fresh temp file may be a live worker's write in flight.  The
        hit/miss/store counters describe the store's content history, so an
        emptied store starts them from zero again.
        """
        if self._memory is not None:
            self._memory.clear()
        if self.backend is not None:
            for name in self.backend.list(self.suffix):
                self.backend.delete(name)
            self.backend.sweep_tmp()
        self.hits = 0
        self.misses = 0
        self.stores = 0


class ProfileCache(KeyedStore):
    """Pickle store for trained artifacts, keyed by ``train_key()``."""

    suffix = ".pkl"

    def _encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, raw: bytes) -> Any:
        return pickle.loads(raw)


def _json_default(obj: Any) -> Any:
    # NumPy scalars leak into profile summaries; store their Python values.
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


class ResultStore(KeyedStore):
    """JSON store for timing-result payloads, keyed by ``cache_key()``.

    Values are plain dicts (see :func:`repro.experiments.runner.run_scenario`
    for the payload shape); JSON keeps the result files human-inspectable
    and independent of pickle compatibility.
    """

    suffix = ".json"

    def _encode(self, value: Any) -> bytes:
        return json.dumps(value, sort_keys=True, default=_json_default).encode()

    def _decode(self, raw: bytes) -> Any:
        return json.loads(raw)


def _store_entry_names(
    backend: StoreBackend, keys: Iterable[str] | None
) -> list[str]:
    """The sorted store-entry names to export/copy: real entries only,
    optionally restricted to the given keys (filename stems)."""
    wanted = None if keys is None else set(keys)
    names: list[str] = []
    for name in backend.list():
        if name in _RESERVED_NAMES:
            continue
        stem, dot, suffix_part = name.rpartition(".")
        if dot != "." or "." + suffix_part not in _ENTRY_SUFFIXES:
            continue
        if wanted is not None and stem not in wanted:
            continue
        names.append(name)
    return names


def export_entries(
    root: str | Path | StoreBackend, tar_path: str | Path, keys: Iterable[str] | None = None
) -> list[str]:
    """Tar up store entries so a warm host can seed cold shards.

    ``root`` is any store locator (directory, URL, or open backend);
    ``keys=None`` exports every store entry, otherwise only entries whose
    key (filename stem) is in ``keys``.  Returns the archive member names
    (flat basenames -- the archive has no directory structure, so it can
    be imported into any store).  Temp files and anything that is not a
    store entry are never exported.
    """
    import io
    import tarfile

    backend = open_backend(root)
    tar_path = Path(tar_path)
    members: list[str] = []
    tar_path.parent.mkdir(parents=True, exist_ok=True)
    with tarfile.open(tar_path, "w") as tar:
        for name in _store_entry_names(backend, keys):
            entry = backend.get_entry(name)
            if entry is None:
                continue  # removed between list and read; it is simply gone
            info = tarfile.TarInfo(name=name)
            info.size = entry.size
            info.mtime = int(entry.mtime)
            tar.addfile(info, io.BytesIO(entry.data))
            members.append(name)
    return members


def import_entries(root: str | Path | StoreBackend, tar_path: str | Path) -> list[str]:
    """Unpack :func:`export_entries` archives into a store.

    Only regular members whose name looks like a store entry are
    extracted.  :func:`export_entries` archives are flat basenames, so a
    member carrying any path structure (``sub/x.pkl``, ``../x.pkl``, an
    absolute path, a directory) is a crafted or corrupt archive trying to
    reach outside the store directory; the whole import is rejected up
    front -- before anything is extracted -- by :func:`validate_flat_name`
    rather than silently flattening or skipping it.  Flat non-entry members
    (wrong suffix, links) are tolerated and skipped, as everywhere else
    stores are read.  Entries land through the backend's atomic ``put``,
    the same protocol concurrent sweep workers use, so importing into a
    live store is safe.  Returns the imported entry names.
    """
    import tarfile

    backend = open_backend(root)
    if isinstance(backend, LocalBackend):
        backend.root.mkdir(parents=True, exist_ok=True)
    imported: list[str] = []
    with tarfile.open(tar_path, "r") as tar:
        members = tar.getmembers()
        for member in members:
            validate_flat_name(member.name, what="to import archive member")
        for member in members:
            name = member.name
            if not member.isreg() or Path(name).suffix not in _ENTRY_SUFFIXES:
                continue
            if name in _RESERVED_NAMES:
                continue  # coordination metadata from a dual-role store
            fh = tar.extractfile(member)
            if fh is None:
                continue
            backend.put(name, fh.read())
            imported.append(name)
    return imported


def copy_entries(
    src: str | Path | StoreBackend,
    dst: str | Path | StoreBackend,
    keys: Iterable[str] | None = None,
) -> list[str]:
    """Copy store entries between two stores (any backend combination).

    The store-to-store transfer behind ``repro cache export URL`` (push)
    and ``repro cache import URL`` (pull): the same entry filter as the
    tar path, no intermediate archive.  Existing destination entries are
    overwritten (entries are content-keyed, so "overwrite" means
    "identical bytes" unless one side is corrupt).  Returns the copied
    entry names.
    """
    src_backend = open_backend(src)
    dst_backend = open_backend(dst)
    copied: list[str] = []
    for name in _store_entry_names(src_backend, keys):
        data = src_backend.get(name)
        if data is None:
            continue  # removed between list and read; it is simply gone
        dst_backend.put(name, data)
        copied.append(name)
    return copied


_DEFAULT_CACHE: ProfileCache | None = None


def default_cache() -> ProfileCache:
    """The process-wide cache used when callers don't supply their own."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ProfileCache()  # repro: noqa RPR104 -- per-process singleton over a shared on-disk root; the store, not the handle, is the shared state
    return _DEFAULT_CACHE
