"""The ``repro store-serve`` HTTP object store (pure stdlib).

Serves one flat store directory over the small HTTP protocol that
:class:`~repro.experiments.backend.HTTPBackend` speaks, so sweep workers
on machines with no shared mount coordinate through this process instead
of a networked filesystem:

* ``GET /<name>`` / ``HEAD /<name>`` -- one entry's bytes, with a strong
  content ``ETag`` (sha256, same derivation as the client's) and the
  store-side mtime in ``X-Repro-Mtime``;
* ``PUT /<name>`` -- atomic replace; with ``If-None-Match: *`` it is
  *create-exclusive*: exactly one of any number of racing PUTs gets 201,
  the rest get 412 (the lease-claim primitive);
* ``DELETE /<name>`` -- unlink; with ``If-Match: "<etag>"`` it succeeds
  only while the entry still carries that content tag (the two-phase
  lease-break guard: a holder that re-stamped survives);
* ``GET /?suffix=...`` -- JSON listing of entry names + etags + mtimes;
* ``POST /?op=sweep-tmp`` -- reclaim abandoned atomic-write temp files.

All conditional checks and their mutations run under one server-side
mutation lock, which is what makes the HTTP backend's create-exclusive
and tag-guarded delete *exact* -- the server is the single arbiter the
shared POSIX directory used to be.  Storage underneath is a plain
:class:`~repro.experiments.backend.LocalBackend` directory, so a served
store can be inspected, exported, or re-served with every existing tool.

The server is deliberately trust-the-network simple: no auth, no TLS --
run it on a private interface for a sweep pool you control, exactly like
the shared scratch directory it replaces (``docs/experiments.md``
"Remote stores" spells out the deployment model).
"""

from __future__ import annotations

import argparse
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .backend import LocalBackend, etag_of

__all__ = ["StoreHTTPServer", "main", "serve_store"]

#: Refuse absurd single-entry uploads: store entries are lease stamps,
#: JSON results, and small pickles.  This bounds memory per request, it is
#: not a quota.
MAX_ENTRY_BYTES = 256 * 1024 * 1024


class StoreHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store state the handlers need."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], root: str | Path) -> None:
        self.store = LocalBackend(root)
        #: Serializes every conditional check-and-mutate, making
        #: ``If-None-Match: *`` and ``If-Match`` exact even though the
        #: handler pool is threaded.
        self.mutation_lock = threading.Lock()
        super().__init__(address, _StoreRequestHandler)


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """One request against the flat store; names are single path segments."""

    server: StoreHTTPServer  # narrow the base class's annotation
    protocol_version = "HTTP/1.1"
    # Quieter than the BaseHTTPRequestHandler default (one line per request
    # on stderr drowns the sweep logs); error_message_format stays default.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------------

    def _entry_name(self) -> str | None:
        """The flat entry name from the request path, or ``None`` for the base.

        Rejects (via 400) any path that is not exactly one segment: the
        store is flat, and a multi-segment path is either a client bug or
        an escape attempt.
        """
        path = urllib.parse.urlsplit(self.path).path
        name = urllib.parse.unquote(path.lstrip("/"))
        if not name:
            return None
        if "/" in name or name in (".", ".."):
            raise _BadRequest(f"store entries are flat filenames, got {name!r}")
        return name

    def _query(self) -> dict[str, str]:
        raw = urllib.parse.urlsplit(self.path).query
        return {k: v[0] for k, v in urllib.parse.parse_qs(raw).items()}

    def _send(
        self,
        status: int,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        extra: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, (message + "\n").encode(), content_type="text/plain")

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length > MAX_ENTRY_BYTES:
            raise _BadRequest(f"entry too large ({length} bytes)")
        return self.rfile.read(length) if length else b""

    def _guard(self, fn: str) -> None:
        """Dispatch one verb handler, mapping protocol errors to statuses."""
        try:
            getattr(self, fn)()
        except _BadRequest as exc:
            self._send_error(400, str(exc))
        except BrokenPipeError:
            pass  # client went away mid-response; nothing left to tell it
        except OSError as exc:
            self._send_error(500, f"store I/O error: {exc}")

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:
        self._guard("_do_get")

    def do_HEAD(self) -> None:
        self._guard("_do_get")

    def do_PUT(self) -> None:
        self._guard("_do_put")

    def do_DELETE(self) -> None:
        self._guard("_do_delete")

    def do_POST(self) -> None:
        self._guard("_do_post")

    def _do_get(self) -> None:
        name = self._entry_name()
        if name is None:
            self._do_list()
            return
        entry = self.server.store.get_entry(name)
        if entry is None:
            self._send_error(404, f"no such entry: {name}")
            return
        self._send(
            200,
            entry.data,
            extra={"ETag": f'"{entry.etag}"', "X-Repro-Mtime": repr(entry.mtime)},
        )

    def _do_list(self) -> None:
        suffix = self._query().get("suffix", "")
        store = self.server.store
        entries = []
        for entry_name in store.list(suffix):
            entry = store.get_entry(entry_name)
            if entry is None:
                continue  # unlinked between list and read; it is simply gone
            entries.append(
                {"name": entry.name, "etag": entry.etag, "mtime": entry.mtime, "size": entry.size}
            )
        body = json.dumps({"entries": entries}).encode()
        self._send(200, body, content_type="application/json")

    def _do_put(self) -> None:
        name = self._entry_name()
        if name is None:
            raise _BadRequest("PUT needs an entry name")
        data = self._read_body()
        exclusive = self.headers.get("If-None-Match", "").strip() == "*"
        with self.server.mutation_lock:
            if exclusive:
                if not self.server.store.create(name, data):
                    self._send_error(412, f"entry exists: {name}")
                    return
            else:
                self.server.store.put(name, data)
        self._send(201, extra={"ETag": f'"{etag_of(data)}"'})

    def _do_delete(self) -> None:
        name = self._entry_name()
        if name is None:
            raise _BadRequest("DELETE needs an entry name")
        required = self.headers.get("If-Match", "").strip().strip('"')
        with self.server.mutation_lock:
            if required:
                entry = self.server.store.get_entry(name)
                if entry is None:
                    self._send_error(404, f"no such entry: {name}")
                    return
                if entry.etag != required:
                    self._send_error(412, f"etag mismatch for {name}")
                    return
            if not self.server.store.delete(name):
                self._send_error(404, f"no such entry: {name}")
                return
        self._send(204)

    def _do_post(self) -> None:
        query = self._query()
        if self._entry_name() is not None or query.get("op") != "sweep-tmp":
            raise _BadRequest("POST supports only ?op=sweep-tmp on the store base")
        max_age: float | None = None
        if "max_age" in query:
            try:
                max_age = float(query["max_age"])
            except ValueError as exc:
                raise _BadRequest(f"bad max_age: {query['max_age']!r}") from exc
        removed = self.server.store.sweep_tmp(max_age)
        self._send(200, json.dumps({"removed": removed}).encode(), "application/json")


class _BadRequest(Exception):
    """A malformed request; mapped to HTTP 400 by the dispatch guard."""


def serve_store(root: str | Path, host: str = "127.0.0.1", port: int = 0) -> StoreHTTPServer:
    """Bind a store server (``port=0`` picks a free port); caller runs it.

    Returns the bound server so tests and the CLI can read the actual
    address before calling ``serve_forever()``.
    """
    return StoreHTTPServer((host, port), root)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro store-serve`` (also ``python -m`` runnable)."""
    parser = argparse.ArgumentParser(
        prog="repro store-serve",
        description="Serve a store directory over HTTP for --coordinate URL sweeps.",
    )
    parser.add_argument("dir", help="store directory to serve (created if missing)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=8123, help="bind port; 0 picks a free port")
    args = parser.parse_args(argv)

    Path(args.dir).mkdir(parents=True, exist_ok=True)
    server = serve_store(args.dir, host=args.host, port=args.port)
    host, port = server.server_address[0], server.server_address[1]
    print(f"store-serve: serving {Path(args.dir).resolve()} at http://{host}:{port}/", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
