"""Cartesian sweep expansion and the fault-tolerant parallel sweep runner.

A sweep is a base :class:`ScenarioSpec` plus named *axes*, each a list of
values; :func:`expand_axes` produces the cartesian product as concrete
scenarios.  :class:`SweepRunner` executes them either serially or across a
:class:`concurrent.futures.ProcessPoolExecutor` -- functional training is
the hot path and is pure CPU-bound NumPy, so one process per scenario is
the right grain -- streaming :class:`SweepResult` objects as they complete.

Workers share two persistent stores (one directory):

* the :class:`~repro.experiments.cache.ProfileCache` of trained artifacts,
  so re-running an identical sweep performs zero functional-training calls;
* the :class:`~repro.experiments.cache.ResultStore` of timing results, so a
  scenario that already completed -- in this run, an earlier run, or an
  interrupted run -- is served back without re-simulating anything
  (``SweepResult.stored`` marks that provenance).

Failures are data, not aborts: a raising worker produces a
``SweepResult(error=...)`` that streams like any other result, and
scenarios queued behind a failed representative are re-dispatched rather
than dropped, so one bad point never loses the rest of the sweep.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, fields as dc_fields, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # annotation-only: keep the lease machinery a lazy import
    from .steal import Coordinator

from ..serving.result import ServingResult
from ..sim.calibrate import CostModel
from ..sim.results import ComparisonResult, InferenceResult
from .cache import CACHE_VERSION, ProfileCache, ResultStore, default_cache, sim_fingerprint
from .pipeline import is_trained
from .scenario import _COST_FIELD_NAMES, ScenarioSpec, ServingParams

__all__ = [
    "AXIS_NAMES",
    "CANONICAL_AXES",
    "SWEEP_MODES",
    "SweepResult",
    "SweepRunner",
    "apply_axis",
    "expand_axes",
    "parse_axis_specs",
    "parse_shard_spec",
    "read_axis",
    "result_store_key",
    "run_scenario",
    "scenario_key",
    "shard_of",
    "shard_scenarios",
]

#: What a sweep measures per scenario: the training-time comparison (the
#: Fig. 7 workhorse), the batch-inference comparison (Fig. 13), or the
#: traffic-driven serving simulation (arrival trace -> latency tail).  Each
#: mode stores its payload under its own :func:`result_store_key` namespace
#: (``s``/``i``/``v``), so all kinds of results coexist in one
#: ``ResultStore`` directory.
SWEEP_MODES = ("compare", "inference", "serving")

_SCENARIO_AXES = {
    "dataset": "dataset",
    "sim_records": "sim_records",
    "records": "sim_records",
    "seed": "seed",
    "extra_scale": "extra_scale",
    "scale": "extra_scale",
}
_TRAIN_AXES = {
    "n_trees": "n_trees",
    "trees": "n_trees",
    "max_depth": "max_depth",
    "learning_rate": "learning_rate",
    "conflict_sample": "conflict_sample",
}
_SPLIT_AXES = {
    "lambda_": "lambda_",
    "gamma": "gamma",
    "min_child_weight": "min_child_weight",
    "min_child_records": "min_child_records",
}
_BOOSTER_AXES = {
    "n_clusters": "n_clusters",
    "bus_per_cluster": "bus_per_cluster",
    "sram_bytes": "sram_bytes",
    "clock_ghz": "clock_ghz",
}
_SERVING_AXES = {
    "arrival_qps": "qps",
    "qps": "qps",
    "arrival": "arrival",
    "policy": "policy",
    "max_batch": "max_batch",
    "batch_timeout_ms": "timeout_ms",
    "queue": "queue",
    "serve_duration": "duration_s",
    "records_per_request": "records_per_request",
}

#: Alternate CLI spellings, canonicalized for duplicate detection.
_AXIS_ALIASES = {
    "trees": "n_trees",
    "records": "sim_records",
    "scale": "extra_scale",
    "qps": "arrival_qps",
}

#: Axes (and int-typed cost fields) that must receive integral values.
_INT_AXES = {
    "seed",
    "sim_records",
    "records",
    "n_trees",
    "trees",
    "max_depth",
    "conflict_sample",
    "min_child_records",
    "n_clusters",
    "bus_per_cluster",
    "sram_bytes",
    "n_bus",
    "max_batch",
    "records_per_request",
}
_INT_AXES |= {f.name for f in dc_fields(CostModel) if f.type == "int"}

#: Axes whose values are names rather than numbers (every other axis
#: rejects strings early, before they reach validation/cost math).
_STRING_AXES = {"dataset", "arrival", "policy", "queue"}

#: Axis name -> target field, derived from the routing tables above so the
#: two can never drift.  Any :class:`CostModel` field name is also a valid
#: axis (applied through ``cost_overrides``).
AXIS_NAMES = {
    **{k: f"scenario.{v}" for k, v in _SCENARIO_AXES.items()},
    **{k: f"train.{v}" for k, v in _TRAIN_AXES.items()},
    **{k: f"train.split.{v}" for k, v in _SPLIT_AXES.items()},
    **{k: f"booster.{v}" for k, v in _BOOSTER_AXES.items()},
    **{k: f"serving.{v}" for k, v in _SERVING_AXES.items()},
    "n_bus": "booster.n_clusters (derived: n_bus / bus_per_cluster)",
}

#: Axes that route into :class:`ServingParams` (the CLI refuses them on a
#: sweep that is not ``--serve``: varying a serving knob changes scenario
#: keys without changing a training/inference measurement).
SERVING_AXIS_NAMES = frozenset(_SERVING_AXES)

#: Canonical axis names in declaration order (aliases removed) -- what
#: ``parse_axis_specs`` produces and what consumers that enumerate axes
#: (e.g. ``repro report``'s axis inference) should iterate, so a new axis
#: added to the routing tables above automatically reaches them.
CANONICAL_AXES = tuple(k for k in AXIS_NAMES if k not in _AXIS_ALIASES)


def apply_axis(scenario: ScenarioSpec, name: str, value: object) -> ScenarioSpec:
    """Return ``scenario`` with one axis set to ``value``."""
    if name not in _STRING_AXES and isinstance(value, str):
        # Every axis but the handful of name-valued ones is numeric; reject
        # early with a clean message instead of a TypeError deep in
        # validation/cost math.
        raise ValueError(f"axis {name!r} needs a numeric value, got {value!r}")
    if name in _INT_AXES:
        if not math.isfinite(value) or float(value) != int(value):
            raise ValueError(f"axis {name!r} needs an integer value, got {value!r}")
        value = int(value)
    if name in _SCENARIO_AXES:
        return replace(scenario, **{_SCENARIO_AXES[name]: value})
    if name in _TRAIN_AXES:
        return replace(scenario, train=replace(scenario.train, **{_TRAIN_AXES[name]: value}))
    if name in _SPLIT_AXES:
        split = replace(scenario.train.split, **{_SPLIT_AXES[name]: value})
        return replace(scenario, train=replace(scenario.train, split=split))
    if name in _BOOSTER_AXES:
        return replace(scenario, booster=replace(scenario.booster, **{_BOOSTER_AXES[name]: value}))
    if name in _SERVING_AXES:
        # A serving axis on a compare/inference-shaped scenario implies the
        # serving defaults for the rest of the knobs.
        serving = scenario.serving or ServingParams()
        return replace(
            scenario, serving=replace(serving, **{_SERVING_AXES[name]: value})
        )
    if name == "n_bus":
        per = scenario.booster.bus_per_cluster
        if value % per:
            raise ValueError(
                f"n_bus={value} is not a multiple of bus_per_cluster={per}"
            )
        return replace(
            scenario, booster=replace(scenario.booster, n_clusters=int(value // per))
        )
    if name in _COST_FIELD_NAMES:
        # Cost constants are energies, latencies, clocks, and sizes: every
        # one is a finite, positive number.  NaN would additionally poison
        # cache keys (NaN != NaN breaks manifest dedupe and store lookups),
        # so reject bad values here with a clear message instead of letting
        # them flow into keys and comparisons.
        if not math.isfinite(value) or value <= 0:
            raise ValueError(
                f"cost override {name!r} needs a finite, positive value, "
                f"got {value!r}"
            )
        overrides = dict(scenario.cost_overrides)
        overrides[name] = value
        return replace(scenario, cost_overrides=tuple(sorted(overrides.items())))
    known = sorted(set(AXIS_NAMES) | _COST_FIELD_NAMES)
    raise ValueError(f"unknown sweep axis {name!r}; known axes: {known}")


def read_axis(scenario: ScenarioSpec, name: str) -> object:
    """The scenario's current value for one axis (``apply_axis``'s inverse).

    ``records``/``sim_records`` reads back resolved (the registry default
    substituted), matching what the experiment actually runs with.
    """
    if name in ("records", "sim_records"):
        return scenario.resolved_records()
    if name in _SCENARIO_AXES:
        return getattr(scenario, _SCENARIO_AXES[name])
    if name in _TRAIN_AXES:
        return getattr(scenario.train, _TRAIN_AXES[name])
    if name in _SPLIT_AXES:
        return getattr(scenario.train.split, _SPLIT_AXES[name])
    if name in _BOOSTER_AXES:
        return getattr(scenario.booster, _BOOSTER_AXES[name])
    if name in _SERVING_AXES:
        return getattr(scenario.serving or ServingParams(), _SERVING_AXES[name])
    if name == "n_bus":
        return scenario.booster.n_bus
    if name in _COST_FIELD_NAMES:
        return getattr(scenario.costs(), name)
    known = sorted(set(AXIS_NAMES) | _COST_FIELD_NAMES)
    raise ValueError(f"unknown sweep axis {name!r}; known axes: {known}")


def expand_axes(
    base: ScenarioSpec, axes: dict[str, Sequence]
) -> list[ScenarioSpec]:
    """Cartesian product of the axes applied to ``base``, in axis order.

    Within each combination the derived ``n_bus`` axis is applied last, so
    sweeping it together with ``bus_per_cluster`` resolves against the
    combination's cluster width rather than axis declaration order.
    """
    if not axes:
        return [base]
    names = list(axes)
    out = []
    for combo in itertools.product(*(axes[n] for n in names)):
        scenario = base
        for name, value in sorted(
            zip(names, combo), key=lambda pair: pair[0] == "n_bus"
        ):
            scenario = apply_axis(scenario, name, value)
        out.append(scenario)
    return out


def _parse_value(text: str) -> int | float | str:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_axis_specs(specs: Iterable[str]) -> dict[str, list]:
    """Parse CLI ``NAME=V1,V2,...`` axis strings into an axes mapping.

    Aliases are canonicalized at parse time (``trees`` -> ``n_trees``,
    ``records`` -> ``sim_records``, ``scale`` -> ``extra_scale``): the axes
    dict -- and everything derived from it, like sweep-table headers and
    shard partitions -- is identical no matter which spelling the caller
    used, so two hosts spelling the same sweep differently still agree.
    """
    axes: dict[str, list] = {}
    for spec in specs:
        name, sep, values = spec.partition("=")
        name = name.strip()
        parsed = [_parse_value(v.strip()) for v in values.split(",") if v.strip()]
        if not sep or not name or not parsed:
            raise ValueError(f"bad axis spec {spec!r}; expected NAME=V1,V2,...")
        canonical = _AXIS_ALIASES.get(name, name)
        if canonical in axes:
            raise ValueError(
                f"duplicate axis {name!r}; give each axis once (aliases like "
                "trees/n_trees count as the same axis)"
            )
        axes[canonical] = parsed
    return axes


@dataclass
class SweepResult:
    """Outcome of one scenario: a measurement plus provenance, or an error.

    ``kind`` says what was measured: a ``"compare"`` result carries a
    ``comparison`` (training times), an ``"inference"`` result carries an
    ``inference`` payload (batch-inference times), a ``"serving"`` result
    carries a ``serving`` payload (latency-tail statistics under a
    traffic trace); exactly one of the payload/``error`` fields is set.  A failed scenario is a first-class
    result (streamed, serialized into manifests) rather than an exception
    that aborts the sweep; ``stored=True`` marks a result served from the
    persistent :class:`ResultStore` (zero training *and* zero simulation in
    this run).

    ``duration_s`` is the wall-clock the *original* execution took (train +
    simulate, as measured by :func:`run_scenario`); a replayed result keeps
    the duration it recorded when it actually ran, so manifests and the
    result store double as the calibration corpus for cost-balanced shard
    scheduling (:mod:`repro.experiments.schedule`).  Error results -- and
    lines from manifests written before durations existed -- carry ``None``.
    """

    scenario: ScenarioSpec
    comparison: ComparisonResult | None
    cache_hit: bool  # training artifact was served from the cache
    worker_pid: int  # process that executed (or originally executed) it
    error: str | None = None  # failure description when the scenario raised
    stored: bool = False  # result replayed from the result store
    inference: InferenceResult | None = None  # set in "inference" mode
    kind: str = "compare"  # which SWEEP_MODES measurement this is
    duration_s: float | None = None  # wall seconds of the original execution
    serving: ServingResult | None = None  # set in "serving" mode

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def payload(self) -> ComparisonResult | InferenceResult | ServingResult | None:
        """The mode's measurement (``comparison``/``inference``/``serving``)."""
        if self.kind == "inference":
            return self.inference
        if self.kind == "serving":
            return self.serving
        return self.comparison

    @property
    def booster_speedup(self) -> float:
        if self.payload is None:
            raise ValueError(f"scenario failed, no timing result: {self.error}")
        return self.payload.speedup("booster")

    def to_dict(self) -> dict:
        """Manifest/JSONL form; ``from_dict`` round-trips it.

        ``cache_key`` and ``sim_code`` are provenance for manifest consumers
        (resume/merge bookkeeping and staleness checks); ``from_dict``
        ignores them.
        """
        return {
            "cache_key": scenario_key(self.scenario),
            "sim_code": sim_fingerprint(),
            "kind": self.kind,
            "scenario": self.scenario.to_dict(),
            "comparison": None if self.comparison is None else self.comparison.to_dict(),
            "inference": None if self.inference is None else self.inference.to_dict(),
            "serving": None if self.serving is None else self.serving.to_dict(),
            "cache_hit": self.cache_hit,
            "stored": self.stored,
            "worker_pid": self.worker_pid,
            "error": self.error,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepResult":
        comparison = d.get("comparison")
        inference = d.get("inference")
        serving = d.get("serving")
        duration = d.get("duration_s")  # absent in pre-duration manifests
        return cls(
            scenario=ScenarioSpec.from_dict(d["scenario"]),
            comparison=None if comparison is None else ComparisonResult.from_dict(comparison),
            cache_hit=bool(d.get("cache_hit", False)),
            worker_pid=int(d.get("worker_pid", 0)),
            error=d.get("error"),
            stored=bool(d.get("stored", False)),
            inference=None if inference is None else InferenceResult.from_dict(inference),
            kind=d.get("kind", "compare"),
            duration_s=None if duration is None else float(duration),
            serving=None if serving is None else ServingResult.from_dict(serving),
        )


@functools.lru_cache(maxsize=4096)
def scenario_key(scenario: ScenarioSpec) -> str:
    """``cache_key()`` with a stable fallback for unkeyable scenarios.

    A scenario whose key cannot be derived (e.g. an unknown dataset name,
    where resolving the record count raises) must still flow through the
    runner -- and the shard partitioner -- as a well-defined unit, so
    bookkeeping falls back to the canonical JSON form instead of
    propagating the exception.  The fallback is content-derived too: every
    host computes the same owner shard for an unkeyable scenario, which is
    then reported there as a structured ``SweepResult(error=...)`` line
    rather than crashing the partitioner before any manifest is written.

    Memoized: the key is a pure function of the (frozen, hashable)
    scenario's content, and sweep bookkeeping, sharding, and cost
    scheduling all ask for the same keys repeatedly.
    """
    try:
        return scenario.cache_key()
    except Exception:
        return "!" + scenario.to_json()


#: Backwards-compatible private alias (pre-sharding internal name).
_scenario_key = scenario_key


def result_store_key(scenario: ScenarioSpec, mode: str = "compare") -> str:
    """The :class:`ResultStore` key for one scenario in one sweep mode.

    Compare results live directly under ``cache_key()`` (``s...``, the PR-2
    layout); inference results get their own ``i...`` namespace and serving
    results a ``v...`` namespace, so every measurement of the same scenario
    coexists in one store directory.
    """
    if mode not in SWEEP_MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; known: {list(SWEEP_MODES)}")
    key = scenario.cache_key()
    if mode == "compare":
        return key
    return ("i" if mode == "inference" else "v") + key[1:]


def parse_shard_spec(text: str) -> tuple[int, int]:
    """Parse a CLI ``K/N`` shard spec into a 0-based ``(index, count)``.

    ``K`` is 1-based on the command line (``--shard 1/2``, ``--shard 2/2``)
    because that is how operators number hosts; internally shards are
    0-based.
    """
    k_text, sep, n_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(
            f"bad shard spec {text!r}; expected K/N with integer "
            "1 <= K <= N (e.g. --shard 2/4)"
        ) from None
    if n < 1 or not 1 <= k <= n:
        raise ValueError(
            f"bad shard spec {text!r}; expected K/N with integer 1 <= K <= N"
        )
    return k - 1, n


def shard_of(scenario: ScenarioSpec, n_shards: int) -> int:
    """The 0-based shard that owns ``scenario`` in an ``n_shards``-way split.

    Ownership is a stable hash of :func:`scenario_key`, so every host
    derives the identical partition from the identical scenario list --
    regardless of axis spelling (aliases canonicalize before expansion and
    the key hashes scenario *content*), host platform, or
    ``PYTHONHASHSEED``.  Unkeyable scenarios partition by their canonical
    JSON fallback key and surface as error results in their owning shard.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(scenario_key(scenario).encode()).hexdigest()
    return int(digest, 16) % n_shards


def shard_scenarios(
    scenarios: Sequence[ScenarioSpec], shard: int, n_shards: int
) -> list[ScenarioSpec]:
    """The sublist of ``scenarios`` owned by ``shard`` (0-based) of ``n_shards``.

    The N shards of a scenario list are a disjoint cover: every scenario
    (duplicates included -- they share a key, hence an owner) lands in
    exactly one shard, so running every shard and merging the manifests
    reproduces the unsharded sweep.
    """
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard index {shard} outside 0..{n_shards - 1}")
    return [s for s in scenarios if shard_of(s, n_shards) == shard]


def _error_result(
    scenario: ScenarioSpec, exc: BaseException, mode: str = "compare"
) -> SweepResult:
    return SweepResult(
        scenario=scenario,
        comparison=None,
        cache_hit=False,
        worker_pid=os.getpid(),
        error=f"{type(exc).__name__}: {exc}",
        kind=mode,
    )


def _stored_result(
    scenario: ScenarioSpec, results: ResultStore, mode: str = "compare"
) -> SweepResult | None:
    """Replay the scenario's result from the store, if servable.

    The payload's cache version, simulation-source fingerprint, and kind
    must match the running code and requested mode; anything else (stale,
    corrupt, wrong shape, wrong measurement) is a miss and the scenario
    re-simulates.
    """
    payload = results.get(result_store_key(scenario, mode))
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CACHE_VERSION or payload.get("code") != sim_fingerprint():
        return None
    if payload.get("kind", "compare") != mode:
        return None
    try:
        result = SweepResult.from_dict(payload["result"])
    except Exception:
        return None
    if result.error is not None or result.kind != mode or result.payload is None:
        return None
    # Served without training or simulating: that is this run's provenance.
    return replace(result, cache_hit=True, stored=True)


def run_scenario(
    scenario: ScenarioSpec,
    cache: ProfileCache | None = None,
    results: ResultStore | None = None,
    mode: str = "compare",
) -> SweepResult:
    """Execute one scenario end to end (train -> profile -> all systems).

    ``mode`` selects the measurement: ``"compare"`` times training on every
    scenario system (the Fig. 7 table), ``"inference"`` times the batch
    inference pass (Fig. 13), ``"serving"`` replays a traffic trace through
    the batching queue and reports the latency tail.  Completed scenarios
    are served from
    ``results`` (a :class:`ResultStore` sharing the profile cache's
    directory by default) without retraining or re-simulating; fresh
    executions are stored back for the next run, each mode under its own
    key namespace.
    """
    from ..sim.executor import Executor  # lazy: sim.executor is a facade over us

    if mode not in SWEEP_MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; known: {list(SWEEP_MODES)}")
    cache = cache or default_cache()
    if results is None:
        results = ResultStore(root=cache.root)
    stored = _stored_result(scenario, results, mode)
    if stored is not None:
        return stored
    start = time.perf_counter()
    executor = Executor.from_scenario(scenario, cache=cache)
    comparison = inference = serving = None
    if mode == "inference":
        inference = executor.inference(
            scenario.dataset,
            systems=list(scenario.systems),
            extra_scale=scenario.extra_scale,
        )
    elif mode == "serving":
        serving = executor.serve(
            scenario.dataset,
            serving=scenario.serving,
            systems=list(scenario.systems),
            extra_scale=scenario.extra_scale,
            seed=scenario.seed,
        )
    else:
        comparison = executor.compare(
            scenario.dataset,
            systems=list(scenario.systems),
            extra_scale=scenario.extra_scale,
        )
    result = SweepResult(
        scenario=scenario,
        comparison=comparison,
        cache_hit=bool(executor.last_train_hit),
        worker_pid=os.getpid(),
        inference=inference,
        kind=mode,
        duration_s=time.perf_counter() - start,
        serving=serving,
    )
    results.put(
        result_store_key(scenario, mode),
        {
            "version": CACHE_VERSION,
            "code": sim_fingerprint(),
            "kind": mode,
            "result": result.to_dict(),
        },
    )
    return result


#: Worker-process store instances, one per root: pool workers execute many
#: scenarios, and reusing the memory layers avoids re-unpickling a shared
#: training artifact (or re-reading a result file) once per sibling.
_WORKER_CACHES: dict[str | None, ProfileCache] = {}  # repro: noqa RPR005 -- per-worker-process memo, only populated inside pool workers after fork; parent never writes it
_WORKER_RESULT_STORES: dict[str | None, ResultStore] = {}  # repro: noqa RPR005 -- per-worker-process memo, only populated inside pool workers after fork; parent never writes it


def _run_payload(payload: tuple[dict, str | None, str | None, str]) -> SweepResult:
    """Process-pool entry point (module-level so it pickles).

    Exceptions are captured into error results here, in the worker: the
    pool stays healthy and the parent never sees a raising future for an
    ordinary scenario failure.
    """
    scenario_dict, cache_root, results_root, mode = payload
    scenario = ScenarioSpec.from_dict(scenario_dict)
    cache = _WORKER_CACHES.get(cache_root)
    if cache is None:
        cache = _WORKER_CACHES[cache_root] = ProfileCache(root=cache_root)
    results = _WORKER_RESULT_STORES.get(results_root)
    if results is None:
        results = _WORKER_RESULT_STORES[results_root] = ResultStore(root=results_root)
    try:
        return run_scenario(scenario, cache, results, mode)
    except Exception as exc:
        return _error_result(scenario, exc, mode)


class SweepRunner:
    """Expands and executes scenario sweeps, streaming results.

    ``max_workers=None`` sizes the pool to ``min(len(scenarios),
    max(cpu_count, 2))`` -- at least two workers, so sweeps exercise the
    multi-process path even on single-core machines.  ``parallel=False``
    (or a single scenario) runs everything in-process, which is also the
    mode where monkeypatched counters can observe training calls.
    ``mode`` selects the per-scenario measurement (see :data:`SWEEP_MODES`).
    """

    def __init__(
        self,
        cache: ProfileCache | None = None,
        max_workers: int | None = None,
        parallel: bool = True,
        results: ResultStore | None = None,
        mode: str = "compare",
    ) -> None:
        if mode not in SWEEP_MODES:
            raise ValueError(f"unknown sweep mode {mode!r}; known: {list(SWEEP_MODES)}")
        self.cache = cache or default_cache()
        self.max_workers = max_workers
        self.parallel = parallel
        self.mode = mode
        # The result store shares the profile cache's directory by default
        # (the "sibling store" layout), so tests and CLI runs pointing the
        # cache somewhere isolated get an equally isolated result store.
        self.results = results if results is not None else ResultStore(root=self.cache.root)

    def _pool_size(self, n_scenarios: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, n_scenarios))
        return max(1, min(n_scenarios, max(os.cpu_count() or 1, 2)))

    def _guarded(self, scenario: ScenarioSpec) -> SweepResult:
        """Run one scenario in-process, capturing failures as results."""
        try:
            return run_scenario(scenario, self.cache, self.results, self.mode)
        except Exception as exc:
            return _error_result(scenario, exc, self.mode)

    def run(self, scenarios: Sequence[ScenarioSpec]) -> Iterator[SweepResult]:
        """Yield results as scenarios complete (completion order).

        Scenarios sharing an untrained training artifact are phased: one
        representative per train key runs first and publishes the artifact,
        then its siblings fan out as cache hits -- hardware-only sweeps
        (e.g. an ``n_bus`` axis) train each configuration once, not once
        per worker.

        A failing scenario never aborts the sweep: its exception becomes a
        ``SweepResult(error=...)``, and any siblings queued behind a failed
        representative are re-dispatched (the first sibling is promoted to
        representative) so every input scenario produces exactly one result.
        """
        scenarios = list(scenarios)
        if not scenarios:
            return
        workers = self._pool_size(len(scenarios))
        # A diskless cache cannot be shared with workers: a parallel run
        # would retrain per process.  Serial keeps the train-once guarantee.
        if not self.parallel or workers == 1 or self.cache.root is None:
            for scenario in scenarios:
                yield self._guarded(scenario)
            return
        root = str(self.cache.root)
        results_root = str(self.results.root) if self.results.root is not None else None

        def submit(
            pool: ProcessPoolExecutor, scenario: ScenarioSpec
        ) -> "Future":
            return pool.submit(
                _run_payload, (scenario.to_dict(), root, results_root, self.mode)
            )

        pool = ProcessPoolExecutor(max_workers=workers)
        pending: dict = {}
        try:
            representative: dict[str, object] = {}  # train_key -> its future
            for scenario in scenarios:
                try:
                    key = scenario.train_key()
                except Exception as exc:
                    # Unkeyable (e.g. unknown dataset): report, keep sweeping.
                    yield _error_result(scenario, exc, self.mode)
                    continue
                rep = representative.get(key)
                if rep is not None and not is_trained(scenario, self.cache):
                    # Queue behind the in-flight representative for this key.
                    pending[rep].append(scenario)
                else:
                    try:
                        future = submit(pool, scenario)
                    except Exception as exc:  # pool unusable (e.g. broken)
                        yield _error_result(scenario, exc, self.mode)
                        continue
                    pending[future] = [scenario]
                    representative.setdefault(key, future)
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    group = pending.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        # The worker died outright (SIGKILL / broken pool):
                        # the scenario still gets a structured error result.
                        result = _error_result(group[0], exc, self.mode)
                    siblings = group[1:]
                    if siblings:
                        if result.error is None or is_trained(siblings[0], self.cache):
                            # The artifact exists on disk (the representative
                            # either succeeded, or failed *after* training
                            # published it): fan the siblings out in parallel.
                            dispatch = [[sib] for sib in siblings]
                        else:
                            # Representative failed before publishing; promote
                            # the first sibling, keep the rest queued behind
                            # it -- nothing is silently dropped.
                            dispatch = [list(siblings)]
                        for group_ in dispatch:
                            try:
                                pending[submit(pool, group_[0])] = group_
                            except Exception as exc:
                                for sib in group_:
                                    yield _error_result(sib, exc, self.mode)
                    yield result
        finally:
            # On abandonment (GeneratorExit) or interrupt, drop the
            # not-yet-started work instead of blocking on the whole sweep;
            # scenarios queued behind a representative are never submitted.
            for future in pending:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)

    def run_stealing(
        self,
        scenarios: Sequence[ScenarioSpec],
        coordinator: "Coordinator",
        completed: Iterable[str] = (),
        poll_interval: float | None = None,
    ) -> Iterator[SweepResult]:
        """Yield results for the scenarios this worker claims from a shared
        lease directory (work-stealing mode).

        Every worker pointed at ``coordinator``'s directory drains the
        *same* sweep: instead of running a fixed partition, each claims
        scenarios at runtime -- most expensive first
        (:func:`~repro.experiments.schedule.cost_order`, priced with the
        local result store's recorded wall times) -- runs each claimed
        scenario in-process under a background-renewed lease, marks the
        lease done, and moves to the next unclaimed scenario.  Scenarios a
        live peer holds are left alone; stale leases (renewal TTL expired,
        or the holder is a dead process on this host) are broken and their
        scenarios stolen, so a crashed worker delays its in-flight
        scenario by at most the TTL instead of losing it.

        The generator finishes only when every distinct scenario is done
        *somewhere*: a worker that exhausted the claimable work polls its
        peers' leases, stealing anything that goes stale -- which is what
        makes the pool elastic (a worker added mid-sweep shortens the
        sweep; the last worker standing finishes it alone).

        ``completed`` keys (e.g. scenarios resumed from this worker's own
        manifest) are marked done for the pool without re-running and
        yield no result.  Duplicate scenarios share a key, hence a lease:
        one run and one yielded result per distinct scenario, exactly the
        granularity ``repro merge`` dedupes at.  A failed scenario's lease
        is marked done too (with its error recorded): its structured error
        line is this worker's manifest entry, and retrying is ``--resume``'s
        job, not the pool's -- peers immediately re-claiming a
        deterministic failure would spin forever.
        """
        from .schedule import cost_order, observed_durations  # lazy: avoids an import cycle

        scenarios = list(scenarios)
        if not scenarios:
            return
        ordered = cost_order(
            scenarios, self.mode, observed_durations(self.results, scenarios, self.mode)
        )
        keys = [scenario_key(s) for s in ordered]
        coordinator.ensure_sweep(keys, self.mode)
        completed = set(completed)
        pending: dict[str, ScenarioSpec] = {}
        for key, scenario in zip(keys, ordered):
            if key in completed:
                # Already in this worker's manifest: publish the completion
                # so peers skip it, but never re-run or re-yield it.
                if coordinator.claim(key):
                    coordinator.mark_done(key)
            else:
                pending[key] = scenario
        if poll_interval is None:
            poll_interval = min(max(coordinator.ttl / 4.0, 0.05), 1.0)
        while pending:
            progressed = False
            for key in list(pending):
                lease = coordinator.read(key)
                if lease is not None and lease.done:
                    del pending[key]  # a peer completed it; not our result
                    progressed = True
                    continue
                if not coordinator.claim(key):
                    continue  # a live peer is on it; try the next scenario
                scenario = pending.pop(key)
                progressed = True
                try:
                    with coordinator.renewing(key):
                        result = self._guarded(scenario)
                except BaseException:
                    # Interrupted mid-run (KeyboardInterrupt, GeneratorExit):
                    # hand the scenario straight back instead of making the
                    # peers wait out the TTL.
                    coordinator.release(key)
                    raise
                # The lease is marked done only AFTER the consumer resumes
                # the generator -- i.e. after it durably recorded the
                # yielded result (the CLI writes and flushes the manifest
                # line between iterations).  Marking done first would open
                # a window where a crash leaves the scenario completed in
                # the ledger but present in nobody's manifest, silently
                # shrinking the merged sweep.  The swapped order fails the
                # other way: a crash inside the window leaves the lease
                # claimed, it goes stale, and a peer re-runs the scenario
                # (served from the result store) into a duplicate manifest
                # line that `repro merge` dedupes -- at-least-once, which
                # merge semantics already absorb.
                consumed = False
                try:
                    yield result
                    consumed = True
                finally:
                    if consumed:
                        coordinator.mark_done(key, error=result.error)
                    else:
                        # Abandoned at the yield (consumer closed us):
                        # whether the result was recorded is unknowable
                        # here, so hand the scenario back for a peer.
                        coordinator.release(key)
            if pending and not progressed:
                time.sleep(poll_interval)

    def run_indexed(
        self, scenarios: Sequence[ScenarioSpec]
    ) -> Iterator[tuple[int, SweepResult]]:
        """Like :meth:`run`, but each result carries its input index.

        Duplicate scenarios are allowed; each occurrence is matched to one
        result (earliest free index for that scenario first).
        """
        scenarios = list(scenarios)
        slots: dict[str, list[int]] = {}
        for i, scenario in enumerate(scenarios):
            slots.setdefault(_scenario_key(scenario), []).append(i)
        for result in self.run(scenarios):
            yield slots[_scenario_key(result.scenario)].pop(0), result

    def run_all(self, scenarios: Sequence[ScenarioSpec]) -> list[SweepResult]:
        """All results, reordered to match the input scenario order."""
        scenarios = list(scenarios)
        out: list[SweepResult | None] = [None] * len(scenarios)
        for i, result in self.run_indexed(scenarios):
            out[i] = result
        return [r for r in out if r is not None]

    def sweep(
        self, base: ScenarioSpec, axes: dict[str, Sequence]
    ) -> Iterator[SweepResult]:
        """Expand ``axes`` over ``base`` and run the product."""
        return self.run(expand_axes(base, axes))
