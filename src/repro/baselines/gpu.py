"""Ideal and Real GPU models.

The paper's *Ideal GPU* is "constrained only by 64-way parallelism without
any implementation artifacts ... perfect, convergent SIMT behavior" (Sec. IV)
-- deliberately abstract, because Sec. II-D argues a real GPU cannot reach
even that: read-modify-write histogram updates either serialize behind
atomics (intra-warp same-bin conflicts) or force privatization that exceeds
Shared Memory.  The ideal model therefore mirrors the ideal multicore with 64
lanes; Fig. 7's modest 1.6-1.9x GPU speedups follow from Amdahl on the
host-side step 2.

The *Real GPU* layers the measured irregularity penalties on top:

* atomic serialization proportional to the measured warp bin-conflict factor,
  weighted by shared-memory pressure (a histogram that fits comfortably in
  96 KB can be privatized cheaply; one that does not cannot);
* per-vertex kernel-launch/sync overhead (three kernels per vertex);
* SIMT divergence in traversal proportional to the measured path-length CV.

These reproduce Fig. 11's crossover: the real GPU loses to the real multicore
exactly on the irregular/small-work benchmarks (Allstate, Mq2008).
"""

from __future__ import annotations

from ..gbdt.workprofile import InferenceWork, WorkProfile
from .base import StepTimes
from .multicore import IdealMulticore

__all__ = ["IdealGPU", "RealGPU"]


class IdealGPU(IdealMulticore):
    """64-way ideal machine at the CPU clock (Table V), same host step 2."""

    name = "ideal-gpu"
    threads = 64
    reduce_copies = 64  # one privatized histogram per lane group


class RealGPU(IdealGPU):
    """Irregularity-derated GPU for Fig. 11."""

    name = "real-gpu"

    def _conflict_penalty(self, profile: WorkProfile) -> float:
        """Atomic-serialization factor for histogram updates (step 1)."""
        c = self.costs
        hist_bytes = profile.n_total_bins * c.host_bin_bytes
        pressure = min(1.0, hist_bytes / c.gpu_shared_bytes)
        extra = c.real_gpu_conflict_weight * (profile.warp_conflict_factor - 1.0)
        return c.real_gpu_base_factor * (1.0 + extra * pressure)

    def _divergence_penalty(self, profile_cv: float) -> float:
        c = self.costs
        return c.real_gpu_base_factor * (1.0 + c.real_gpu_divergence_weight * profile_cv)

    def training_times(self, profile: WorkProfile) -> StepTimes:
        ideal = super().training_times(profile)
        c = self.costs
        launch = (
            3.0 * profile.step2_evaluations() * c.gpu_launch_overhead_s
        )  # bin + choose + partition kernels per vertex
        return StepTimes(
            step1=ideal.step1 * self._conflict_penalty(profile),
            step2=ideal.step2,
            step3=ideal.step3 * c.real_gpu_base_factor,
            step5=ideal.step5 * self._divergence_penalty(profile.path_len_cv),
            other=ideal.other + launch,
        )

    def inference_seconds(self, work: InferenceWork) -> float:
        ideal = super().inference_seconds(work)
        return ideal * self._divergence_penalty(work.path_len_cv)
