"""Common interfaces for the hardware timing models.

Every system (sequential CPU, Ideal/Real 32-core, Ideal/Real GPU, IR, Booster)
implements :class:`HardwareModel`: it converts a :class:`WorkProfile` into
per-step times (Table I steps), and an :class:`InferenceWork` into a batch-
inference time.  All systems share the same DRAM (Table IV) through a
:class:`BandwidthProfile` and the same cost constants, so comparisons isolate
architecture, exactly as in the paper's methodology (Sec. IV).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..datasets.layout import RecordLayout
from ..gbdt.workprofile import InferenceWork, WorkProfile
from ..memory.profile import BandwidthProfile, bandwidth_profile
from ..sim.calibrate import DEFAULT_COSTS, CostModel

__all__ = ["StepTimes", "HardwareModel", "host_step2_seconds"]


@dataclass
class StepTimes:
    """Seconds spent in each training step (the Fig. 8 decomposition).

    ``other`` covers non-step work: host<->accelerator transfers, per-vertex
    dispatch overheads, on-chip reductions.
    """

    step1: float = 0.0
    step2: float = 0.0
    step3: float = 0.0
    step5: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.step1 + self.step2 + self.step3 + self.step5 + self.other

    def as_dict(self) -> dict[str, float]:
        return {
            "step1": self.step1,
            "step2": self.step2,
            "step3": self.step3,
            "step5": self.step5,
            "other": self.other,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StepTimes":
        """Inverse of :meth:`as_dict` (the derived ``total`` is ignored)."""
        return cls(
            **{
                k: float(d.get(k, 0.0))
                for k in ("step1", "step2", "step3", "step5", "other")
            }
        )

    def scaled(self, k: float) -> "StepTimes":
        return StepTimes(
            step1=self.step1 * k,
            step2=self.step2 * k,
            step3=self.step3 * k,
            step5=self.step5 * k,
            other=self.other * k,
        )


class HardwareModel(ABC):
    """Converts work profiles into time on one simulated system."""

    name: str = "hardware"

    def __init__(
        self,
        costs: CostModel | None = None,
        bandwidth: BandwidthProfile | None = None,
    ) -> None:
        self.costs = costs or DEFAULT_COSTS
        self.bandwidth = bandwidth or bandwidth_profile()

    # -- helpers shared by all models ------------------------------------------------

    def layout(self, profile: WorkProfile) -> RecordLayout:
        return RecordLayout(profile.spec)

    def mem_seconds(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` at the measured sustained bandwidth."""
        return self.bandwidth.seconds_for_bytes(nbytes)

    # -- interface ----------------------------------------------------------------------

    @abstractmethod
    def training_times(self, profile: WorkProfile) -> StepTimes:
        """Per-step training time for the given work."""

    @abstractmethod
    def inference_seconds(self, work: InferenceWork) -> float:
        """Batch-inference time for the given work."""

    def training_seconds(self, profile: WorkProfile) -> float:
        return self.training_times(profile).total


def host_step2_seconds(
    profile: WorkProfile,
    costs: CostModel,
    reduce_copies: int,
    parallel: bool = True,
) -> float:
    """Step 2 on the host: histogram reduction + split scan.

    The scan cost is proportional to total bins per evaluated vertex (Fig. 3's
    left-to-right cumulative walk with the gain formula); the reduction cost
    covers merging ``reduce_copies`` replicated histograms (32 thread-private
    copies on the multicore, 64 on the Ideal GPU, cluster replicas reduced
    on-chip for Booster so its ``reduce_copies == 0``).
    """
    evals = profile.step2_evaluations()
    bins = profile.n_total_bins
    cycles = evals * bins * (
        costs.step2_scan_cycles_per_bin
        + reduce_copies * costs.step2_reduce_cycles_per_bin
    )
    seconds = cycles / (costs.cpu_clock_ghz * 1e9)
    if parallel:
        seconds /= costs.step2_parallel
    return seconds
