"""Baseline hardware models: CPU (sequential/ideal/real), GPU, Inter-record."""

from .base import HardwareModel, StepTimes, host_step2_seconds
from .gpu import IdealGPU, RealGPU
from .interrecord import InterRecordAccelerator
from .multicore import IdealMulticore, RealMulticore, SequentialCPU

__all__ = [
    "HardwareModel",
    "IdealGPU",
    "IdealMulticore",
    "InterRecordAccelerator",
    "RealGPU",
    "RealMulticore",
    "SequentialCPU",
    "StepTimes",
    "host_step2_seconds",
]
