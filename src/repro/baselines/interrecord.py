"""The Inter-record (IR) prior-work baseline (Sec. II-E, compared in Sec. V-A).

IR [Tanaka et al.] parallelizes GB training *only across records*, like a
multicore: each processing unit (PU) owns a full private histogram copy and
consumes whole records serially, field by field.  Two structural weaknesses
versus Booster:

1. **Capacity**: without the group-by-field insight, IR provisions the naive
   256 bins for every one-hot *feature*, so one histogram copy costs
   ``features * 256 * 8 B``.  The paper reports the area-limited copy counts
   for an IR ASIC with Booster's area: 271 copies for Higgs and 179 for
   Mq2008, and "for the other benchmarks, even one copy does not fit".  Our
   budget/PU-overhead constants are solved from those two published numbers,
   so Higgs/Mq2008 reproduce exactly and the categorical benchmarks come out
   at a handful of copies.
2. **Serial fields**: a PU performs one field update per ``ir_field_cycles``,
   so per-record latency grows with the field count, unlike Booster's
   field-parallel BU fan-out.
"""

from __future__ import annotations

from ..gbdt.workprofile import InferenceWork, WorkProfile
from .base import HardwareModel, StepTimes, host_step2_seconds

__all__ = ["InterRecordAccelerator"]


class InterRecordAccelerator(HardwareModel):
    """Area-limited inter-record-parallel ASIC at Booster's clock."""

    name = "inter-record"

    def copies(self, profile: WorkProfile) -> int:
        """Histogram copies (= PUs) that fit in the area budget."""
        c = self.costs
        features = profile.spec.n_features
        hist_bytes = features * c.ir_bins_per_feature * c.ir_bin_bytes
        per_copy = hist_bytes + c.ir_pu_overhead_bytes
        return max(1, c.ir_sram_budget_bytes // per_copy)

    def _compute_seconds(self, cycles: float, copies: int) -> float:
        return cycles / copies / (self.costs.ir_clock_ghz * 1e9)

    def training_times(self, profile: WorkProfile) -> StepTimes:
        c = self.costs
        layout = self.layout(profile)
        n_copies = self.copies(profile)

        # Step 1: each PU streams whole records, updating its private
        # histogram one field at a time.
        s1_cycles = profile.binned_record_fields() * c.ir_field_cycles
        s1 = max(
            self._compute_seconds(s1_cycles, n_copies),
            self.mem_seconds(profile.step1_bytes(layout)),
        )

        # Step 2 on the host; the PU histograms are reduced on-chip (adder
        # per PU), charged as a per-vertex overhead below.
        s2 = host_step2_seconds(profile, c, reduce_copies=0)
        bins = profile.n_total_bins
        evals = profile.step2_evaluations()
        reduce_cycles = evals * _log2ceil(n_copies) * bins * c.reduce_cycles_per_entry
        offload = evals * (
            bins * c.offload_bin_bytes / (c.pcie_gbps * 1e9) + c.booster_node_overhead_s
        )
        other = reduce_cycles / (c.ir_clock_ghz * 1e9) + offload

        # Step 3: inter-record parallel predicate evaluation (row-major --
        # IR has no redundant column format).
        s3_cycles = profile.partition_records() * c.ir_partition_cycles
        s3 = max(
            self._compute_seconds(s3_cycles, n_copies),
            self.mem_seconds(profile.step3_bytes(layout, column_format=False)),
        )

        # Step 5: inter-record parallel tree traversal.
        s5_cycles = (
            profile.traversal_hops() * c.ir_hop_cycles
            + profile.traversal_records() * c.cpu_record_update_cycles
        )
        s5 = max(
            self._compute_seconds(s5_cycles, n_copies),
            self.mem_seconds(profile.step5_bytes(layout, column_format=False)),
        )
        return StepTimes(step1=s1, step2=s2, step3=s3, step5=s5, other=other)

    def inference_seconds(self, work: InferenceWork) -> float:
        c = self.costs
        # Inference needs trees, not histograms; reuse the PU count from a
        # tree-table footprint of the same budget.
        per_copy = max(work.table_bytes_total / max(work.n_trees, 1), 1.0)
        pus = max(1, int(c.ir_sram_budget_bytes // (per_copy + c.ir_pu_overhead_bytes)))
        cycles = work.total_hops_actual * c.ir_hop_cycles
        return cycles / min(pus, 4096) / (c.ir_clock_ghz * 1e9)


def _log2ceil(x: int) -> int:
    n = 0
    v = 1
    while v < x:
        v *= 2
        n += 1
    return n
