"""Sequential, Ideal 32-core, and Real 32-core CPU models.

The paper's *Ideal 32-core* is "constrained only by 32-way parallelism
without any implementation artifacts ... perfect pipelines and caches"
(Sec. IV) -- an upper bound on any real multicore.  One structural cost
survives even under those assumptions: random histogram updates to a working
set larger than the L1 (Table V pins the ideal multicore's SRAM at a 32 KB
L1D) must pay the next-level access, which is the paper's stated reason
multicores cannot hold the replicated histograms on chip (Sec. II-D).

The *sequential* variant (1 thread, 1 histogram copy, no sync) produces the
Fig. 6 breakdown; the *Real* variant layers locality derating on the ideal
model and is only used for the Fig. 11 validation.
"""

from __future__ import annotations

from ..gbdt.workprofile import InferenceWork, WorkProfile
from .base import HardwareModel, StepTimes, host_step2_seconds

__all__ = ["SequentialCPU", "IdealMulticore", "RealMulticore"]


class SequentialCPU(HardwareModel):
    """One core of the host CPU, one histogram copy (Fig. 6 reference)."""

    name = "sequential"
    threads = 1
    reduce_copies = 0  # single copy: nothing to reduce
    sync_overhead = False

    def _hist_bytes(self, profile: WorkProfile) -> float:
        return profile.n_total_bins * self.costs.host_bin_bytes

    def _compute_seconds(self, cycles: float) -> float:
        return cycles / (self.costs.cpu_clock_ghz * 1e9) / self.threads

    def training_times(self, profile: WorkProfile) -> StepTimes:
        c = self.costs
        layout = self.layout(profile)
        # Access-weighted L1 behaviour: the cache holds the hottest bin
        # entries; the measured root-histogram counts give the hit fraction.
        l1_bin_slots = c.cpu_l1_bytes // c.host_bin_bytes
        hit = profile.hot_access_fraction(l1_bin_slots)
        update_cycles = c.cpu_bin_update_cycles_from_hit(hit)

        # Step 1: histogram binning of the gradient statistics.
        s1_cycles = (
            profile.binned_records() * c.cpu_record_overhead_cycles
            + profile.binned_record_fields() * update_cycles
        )
        s1 = max(self._compute_seconds(s1_cycles), self.mem_seconds(profile.step1_bytes(layout)))

        # Step 2: split choice (plus reduction of per-thread histogram copies).
        s2 = host_step2_seconds(
            profile, c, self.reduce_copies, parallel=self.threads > 1
        )
        if self.sync_overhead:
            s2 += profile.step2_evaluations() * c.host_node_overhead_s

        # Step 3: single-predicate partition (row-major records: a CPU fetches
        # the whole record to use one field -- the waste the redundant format
        # removes; Sec. V-C measured <4% benefit on CPUs so they keep rows).
        s3_cycles = profile.partition_records() * c.cpu_partition_cycles
        s3 = max(
            self._compute_seconds(s3_cycles),
            self.mem_seconds(profile.step3_bytes(layout, column_format=False)),
        )

        # Step 5: one-tree traversal + gradient update for every record.
        s5_cycles = (
            profile.traversal_hops() * c.cpu_hop_cycles
            + profile.traversal_records() * c.cpu_record_update_cycles
        )
        s5 = max(
            self._compute_seconds(s5_cycles),
            self.mem_seconds(profile.step5_bytes(layout, column_format=False)),
        )
        return StepTimes(step1=s1, step2=s2, step3=s3, step5=s5)

    def inference_seconds(self, work: InferenceWork) -> float:
        c = self.costs
        cycles = (
            work.total_hops_actual * c.cpu_inference_hop_cycles
            + work.n_records * work.n_trees * c.cpu_record_overhead_cycles
        )
        layout_bytes = work.n_records * 64.0 * (work.n_trees / max(work.n_trees, 1))
        return max(self._compute_seconds(cycles), self.mem_seconds(layout_bytes))


class IdealMulticore(SequentialCPU):
    """The paper's baseline: 32 threads, 32 histogram copies, perfect scaling."""

    name = "ideal-32-core"
    threads = 32
    reduce_copies = 32
    sync_overhead = True


class RealMulticore(IdealMulticore):
    """Real 32-core derating for Fig. 11.

    The ideal model's times are inflated by a locality factor: close to 1 when
    the full working set (records + statistics) fits in the last-level cache
    (Mq2008's 1M records do), and larger when training streams from DRAM.
    """

    name = "real-32-core"

    def _derate(self, profile: WorkProfile) -> float:
        c = self.costs
        layout = self.layout(profile)
        # Raw payload bytes (records + gradient statistics): what actually
        # competes for cache lines, not the block-padded DRAM footprint.
        working_set = profile.n_records * (
            layout.record_bytes + layout.config.stat_bytes
        )
        if working_set <= c.cpu_l3_bytes:
            return c.real_cpu_fit_factor
        return c.real_cpu_spill_factor

    def training_times(self, profile: WorkProfile) -> StepTimes:
        ideal = super().training_times(profile)
        f = self._derate(profile)
        # Step 2 is host-side scalar work either way; only the parallel,
        # memory-streaming steps suffer the locality derating.
        return StepTimes(
            step1=ideal.step1 * f,
            step2=ideal.step2,
            step3=ideal.step3 * f,
            step5=ideal.step5 * f,
            other=ideal.other,
        )

    def inference_seconds(self, work: InferenceWork) -> float:
        return super().inference_seconds(work) * self.costs.real_cpu_spill_factor
