"""Tests for the energy/area substrate (repro.energy): Tables V, VI, Fig. 10."""

import pytest

from repro.energy import (
    TABLE5_POINTS,
    TABLE6,
    AreaPowerModel,
    EnergyModel,
    SRAMEnergyModel,
)


class TestSRAMEnergyModel:
    def test_reproduces_table5_exactly(self):
        m = SRAMEnergyModel()
        assert m.validate_table5()
        for cap, banks, target in TABLE5_POINTS:
            assert m.normalized(cap, banks) == pytest.approx(target, rel=1e-9)

    def test_monotone_in_capacity(self):
        m = SRAMEnergyModel()
        vals = [m.normalized(kb * 1024) for kb in (1, 2, 8, 32, 128, 512)]
        assert vals == sorted(vals)

    def test_monotone_in_banking(self):
        m = SRAMEnergyModel()
        vals = [m.normalized(96 * 1024, b) for b in (1, 2, 8, 32)]
        assert vals == sorted(vals)

    def test_absolute_scale(self):
        m = SRAMEnergyModel()
        assert m.picojoules(32 * 1024) == pytest.approx(m.pj_at_ref)

    def test_validation(self):
        m = SRAMEnergyModel()
        with pytest.raises(ValueError):
            m.normalized(0)
        with pytest.raises(ValueError):
            m.normalized(1024, banks=0)


class TestAreaPowerModel:
    def test_reproduces_table6(self):
        budget = AreaPowerModel().estimate()
        for (name, area, power), (ref_a, ref_p) in zip(
            budget.rows(), [TABLE6["control"], TABLE6["fpu"], TABLE6["sram"], TABLE6["total"]]
        ):
            assert area == pytest.approx(ref_a, rel=0.02), name
            assert power == pytest.approx(ref_p, rel=0.02), name

    def test_sram_banking_overhead_structure(self):
        # Paper: 3200-bank area ~70% above a 1-bank equal-capacity array.
        m = AreaPowerModel()
        many = m.estimate(n_bus=3200, sram_bytes=2048).sram_mm2
        one = m.estimate(n_bus=1, sram_bytes=3200 * 2048).sram_mm2
        assert many / one == pytest.approx(1.7, rel=0.02)

    def test_area_scales_with_bus(self):
        m = AreaPowerModel()
        half = m.estimate(n_bus=1600, n_clusters=25)
        full = m.estimate()
        assert half.total_mm2 < full.total_mm2
        assert half.fpu_mm2 == pytest.approx(full.fpu_mm2 / 2)

    def test_dynamic_power_scales_with_clock(self):
        m = AreaPowerModel()
        slow = m.estimate(clock_ghz=0.5)
        fast = m.estimate(clock_ghz=1.0)
        assert slow.fpu_w == pytest.approx(fast.fpu_w / 2)
        assert slow.sram_w == pytest.approx(fast.sram_w)  # static-dominated

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaPowerModel().estimate(n_bus=0)

    def test_sram_budget_inverse(self):
        m = AreaPowerModel()
        area = m.estimate().sram_mm2
        recovered = m.sram_budget_bytes(area, banks=3200)
        assert recovered == pytest.approx(3200 * 2048, rel=0.01)


class TestEnergyModel:
    def test_fig10_sram_ratios(self, executor):
        em = EnergyModel()
        prof = executor.profile("higgs")
        cmp = em.compare(prof)
        base = cmp["ideal-32-core"].sram_joules
        # Same access counts, Table V per-access energies => exact ratios.
        assert cmp["ideal-gpu"].sram_joules / base == pytest.approx(2.64, rel=1e-6)
        assert cmp["booster"].sram_joules / base == pytest.approx(0.71, rel=1e-6)

    def test_fig10_booster_strictly_lower_both(self, executor):
        # "Booster is strictly better in both SRAM energy and DRAM energy."
        em = EnergyModel()
        for name in executor.all_datasets():
            cmp = em.compare(executor.profile(name))
            b, cpu = cmp["booster"], cmp["ideal-32-core"]
            assert b.sram_joules < cpu.sram_joules
            assert b.dram_joules < cpu.dram_joules

    def test_cpu_gpu_identical_dram(self, executor):
        # "Ideal 32-core and Ideal GPU are identical as they access the same
        # set of blocks."
        em = EnergyModel()
        cmp = em.compare(executor.profile("iot"))
        assert cmp["ideal-gpu"].dram_joules == cmp["ideal-32-core"].dram_joules

    def test_access_counts_track_work(self, executor):
        em = EnergyModel()
        p1 = executor.profile("higgs")
        p2 = executor.profile("higgs", extra_scale=2.0)
        assert em.sram_accesses(p2) == pytest.approx(2 * em.sram_accesses(p1), rel=0.01)

    def test_unknown_system_rejected(self, executor):
        em = EnergyModel()
        with pytest.raises(KeyError):
            em.training_energy(executor.profile("higgs"), "tpu")
