"""Unit and property tests for memory layouts (repro.datasets.layout)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    LayoutConfig,
    RecordLayout,
    dataset_spec,
    expected_touched_blocks,
    field_element_bytes,
)
from tests.conftest import small_spec_factory


class TestFieldElementBytes:
    def test_byte_sized_fields(self):
        assert field_element_bytes(256) == 1

    def test_two_byte_fields(self):
        assert field_element_bytes(257) == 2
        assert field_element_bytes(65536) == 2

    def test_four_byte_fields(self):
        assert field_element_bytes(65537) == 4


class TestLayoutConfig:
    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            LayoutConfig(block_bytes=48)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LayoutConfig(stat_bytes=0)


class TestExpectedTouchedBlocks:
    def test_zero_selection(self):
        assert expected_touched_blocks(0, 1000, 8) == 0.0

    def test_full_selection_touches_all(self):
        assert expected_touched_blocks(1024, 1024, 8) == pytest.approx(128)

    def test_never_below_packing_lower_bound(self):
        # 100 records can never fit in fewer than ceil(100/8) blocks.
        assert expected_touched_blocks(100, 10**9, 8) >= 13

    def test_sparse_selection_one_block_each(self):
        # At density 1e-6 each selected record sits alone in its block.
        got = expected_touched_blocks(10, 10_000_000, 8)
        assert got == pytest.approx(10, rel=0.01)

    def test_monotone_in_selection(self):
        vals = [expected_touched_blocks(k, 10_000, 16) for k in (10, 100, 1000, 10_000)]
        assert vals == sorted(vals)

    def test_array_input(self):
        out = expected_touched_blocks(np.array([0, 8, 64]), 64, 8)
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[2] == pytest.approx(8.0)

    def test_matches_monte_carlo(self, rng):
        n, k, epb = 5000, 800, 8
        trials = []
        for _ in range(30):
            sel = rng.choice(n, size=k, replace=False)
            trials.append(len(np.unique(sel // epb)))
        expect = expected_touched_blocks(k, n, epb)
        assert expect == pytest.approx(np.mean(trials), rel=0.03)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            expected_touched_blocks(-1, 10, 8)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=10_000),
        st.sampled_from([1, 2, 4, 8, 16, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, sel, universe, epb):
        sel = min(sel, universe)
        got = expected_touched_blocks(sel, universe, epb)
        total = -(-universe // epb)
        assert 0 <= got <= total + 1e-9
        assert got >= -(-sel // epb) - 1e-9  # at least the dense packing


class TestRecordLayout:
    def test_record_bytes_sum_of_fields(self, small_spec):
        lay = RecordLayout(small_spec)
        assert lay.record_bytes == int(lay.field_bytes.sum())

    def test_packing_small_records(self):
        spec = small_spec_factory(n_numerical=8, n_categorical=0)  # 8-byte records
        lay = RecordLayout(spec)
        assert lay.records_per_block == 8
        assert lay.blocks_per_record == 1

    def test_wide_records_span_blocks(self):
        spec = dataset_spec("iot", n_records=256)  # 115 one-byte fields
        lay = RecordLayout(spec)
        assert lay.records_per_block == 1
        assert lay.blocks_per_record == 2

    def test_row_sequential_block_granularity(self):
        spec = small_spec_factory(n_numerical=8, n_categorical=0)
        lay = RecordLayout(spec)
        # 100 packed records at 8/block -> 13 blocks.
        assert lay.row_bytes_sequential(100) == 13 * 64

    def test_row_gather_density_one_equals_sequential(self):
        spec = small_spec_factory(n_numerical=8, n_categorical=0, n_records=640)
        lay = RecordLayout(spec)
        assert lay.row_bytes_gather(640, 640) == pytest.approx(
            lay.row_bytes_sequential(640)
        )

    def test_row_gather_sparse_costs_block_per_record(self):
        spec = small_spec_factory(n_numerical=8, n_categorical=0, n_records=800)
        lay = RecordLayout(spec)
        got = lay.row_bytes_gather(5, 1_000_000)
        assert got == pytest.approx(5 * 64, rel=0.01)

    def test_column_sequential_bytes(self, small_spec):
        lay = RecordLayout(small_spec)
        one = lay.column_bytes_sequential([0], 1000)
        assert one == -(-1000 // 64) * 64  # 1-byte column, block-rounded

    def test_column_gather_inflates_at_low_density(self, small_spec):
        lay = RecordLayout(small_spec)
        dense = lay.column_bytes_gather(0, 1000, 1000)
        sparse = lay.column_bytes_gather(0, 1000, 1_000_000)
        assert sparse > 10 * dense

    def test_column_gather_vector_fields(self, small_spec):
        lay = RecordLayout(small_spec)
        fields = np.array([0, 1])
        sel = np.array([100, 200])
        out = lay.column_bytes_gather(fields, sel, 1000)
        assert out.shape == (2,)
        assert np.all(out > 0)

    def test_stats_bytes(self, small_spec):
        lay = RecordLayout(small_spec)
        assert lay.stats_bytes_sequential(64) == 512  # 64 * 8B exactly 8 blocks

    def test_pointer_bytes_rounding(self, small_spec):
        lay = RecordLayout(small_spec)
        assert lay.pointer_bytes(1) == 64
        assert lay.pointer_bytes(16) == 64
        assert lay.pointer_bytes(17) == 128

    def test_redundancy_overhead_near_two(self, small_spec):
        lay = RecordLayout(small_spec)
        # Row + column copies: overhead factor in (1.5, 2.5) for byte fields.
        assert 1.5 < lay.redundancy_overhead() < 2.5

    def test_zero_requests_cost_zero(self, small_spec):
        lay = RecordLayout(small_spec)
        assert lay.row_bytes_sequential(0) == 0.0
        assert lay.row_bytes_gather(0, 100) == 0.0
        assert lay.column_bytes_sequential([], 100) == 0.0
        assert lay.pointer_bytes(0) == 0.0
