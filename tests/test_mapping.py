"""Tests for bin-to-SRAM mappings (repro.core.mapping) -- the Fig. 9 mechanism."""

import numpy as np
import pytest

from repro.core import BoosterConfig, group_by_field_mapping, naive_packing_mapping
from repro.datasets import DatasetSpec, FieldKind, FieldSpec, dataset_spec, make_numerical_fields

CFG = BoosterConfig()  # 50 x 64 = 3200 BUs, 2 KB SRAM (256 bins at 8 B)


def spec_of(fields):
    return DatasetSpec(name="m", fields=tuple(fields), n_records=10)


class TestGroupByField:
    def test_one_sram_per_default_numerical_field(self):
        spec = spec_of(make_numerical_fields(28))  # higgs shape: 256 bins each
        m = group_by_field_mapping(spec, CFG)
        assert m.srams_per_copy == 28
        assert m.serialization == 1.0
        assert m.replicas == 3200 // 28
        assert m.field_passes == 1

    def test_oversized_field_groups_srams(self):
        big = FieldSpec(name="c", kind=FieldKind.CATEGORICAL, n_categories=1500)
        m = group_by_field_mapping(spec_of([big]), CFG)
        assert m.srams_per_copy == -(-1501 // 256)  # 6 SRAMs (extension 3)
        assert m.serialization == 1.0  # repeated-bin trick: 1 update lands in 1

    def test_oversized_field_load_split(self):
        big = FieldSpec(name="c", kind=FieldKind.CATEGORICAL, n_categories=1500)
        m = group_by_field_mapping(spec_of([big]), CFG)
        assert np.allclose(m.sram_load, 1.0 / 6.0)

    def test_more_fields_than_bus_partitions(self):
        tiny_cfg = BoosterConfig(n_clusters=1, bus_per_cluster=8)
        spec = spec_of(make_numerical_fields(20))
        m = group_by_field_mapping(spec, tiny_cfg)
        assert m.replicas == 1
        assert m.field_passes == -(-20 // 8)  # extension (1)

    def test_utilization_high_for_full_fields(self):
        spec = spec_of(make_numerical_fields(10))  # 256-bin fields fill SRAMs
        m = group_by_field_mapping(spec, CFG)
        assert m.utilization == pytest.approx(1.0)

    def test_paper_utilization_claim(self):
        # Sec. III-C: "our results show 89% capacity utilization" -- our five
        # benchmarks averaged must be in that neighbourhood.
        from repro.datasets import BENCHMARK_NAMES

        utils = []
        for name in BENCHMARK_NAMES:
            m = group_by_field_mapping(dataset_spec(name), CFG)
            utils.append(m.utilization)
        assert 0.75 < float(np.mean(utils)) <= 1.0

    def test_throughput_rate_matches_paper_design_point(self):
        # 64 one-byte fields -> one cluster per record, 50 records in flight,
        # 8-cycle occupancy: 6.25 records/cycle, the Sec. III-B rate match.
        spec = spec_of(make_numerical_fields(64))
        m = group_by_field_mapping(spec, CFG)
        assert m.throughput_records_per_cycle(8) == pytest.approx(6.25)


class TestNaivePacking:
    def test_equals_group_by_field_for_numerical(self):
        # Paper Sec. V-C: "For benchmarks without a single categorical field,
        # naive packing achieves the same effect."
        spec = spec_of(make_numerical_fields(28))
        g = group_by_field_mapping(spec, CFG)
        n = naive_packing_mapping(spec, CFG)
        assert n.srams_per_copy == g.srams_per_copy
        assert n.serialization == pytest.approx(1.0)

    def test_small_fields_share_sram_and_serialize(self):
        fields = [
            FieldSpec(name=f"c{i}", kind=FieldKind.CATEGORICAL, n_categories=30)
            for i in range(8)
        ]  # 31 bins each; 8 fields pack into one 256-entry SRAM
        m = naive_packing_mapping(spec_of(fields), CFG)
        assert m.srams_per_copy == 1
        assert m.serialization == pytest.approx(8.0)

    def test_serialization_at_least_one(self):
        for name in ("iot", "higgs", "allstate", "mq2008", "flight"):
            m = naive_packing_mapping(dataset_spec(name), CFG)
            assert m.serialization >= 1.0 - 1e-9

    def test_load_sums_to_field_count(self):
        spec = dataset_spec("flight")
        m = naive_packing_mapping(spec, CFG)
        assert m.sram_load.sum() == pytest.approx(spec.n_fields)

    def test_categorical_benchmarks_serialize_more(self):
        # The Fig. 9 story: group-by-field only wins on categorical data.
        for name in ("allstate", "flight"):
            m = naive_packing_mapping(dataset_spec(name), CFG)
            assert m.serialization > 1.5
        for name in ("higgs", "mq2008"):
            m = naive_packing_mapping(dataset_spec(name), CFG)
            assert m.serialization == pytest.approx(1.0)

    def test_naive_throughput_never_beats_grouped(self):
        for name in ("iot", "higgs", "allstate", "mq2008", "flight"):
            spec = dataset_spec(name)
            g = group_by_field_mapping(spec, CFG)
            n = naive_packing_mapping(spec, CFG)
            assert n.throughput_records_per_cycle(8) <= g.throughput_records_per_cycle(8) * 1.0001

    def test_naive_packs_denser(self):
        # Capacity-greedy packing never uses more SRAMs than group-by-field.
        for name in ("iot", "allstate", "flight"):
            spec = dataset_spec(name)
            g = group_by_field_mapping(spec, CFG)
            n = naive_packing_mapping(spec, CFG)
            assert n.srams_per_copy <= g.srams_per_copy


class TestBenchmarkMappings:
    @pytest.mark.parametrize(
        "name,srams",
        [("iot", 115), ("higgs", 28), ("mq2008", 46)],
    )
    def test_numerical_benchmarks_one_sram_per_field(self, name, srams):
        m = group_by_field_mapping(dataset_spec(name), CFG)
        assert m.srams_per_copy == srams

    def test_allstate_srams(self):
        # 16 numerical (1 each) + categorical ceil((cards+1)/256) each.
        spec = dataset_spec("allstate")
        m = group_by_field_mapping(spec, CFG)
        expected = 16 + sum(
            -(-(f.n_categories + 1) // 256) for f in spec.fields if f.is_categorical
        )
        assert m.srams_per_copy == expected

    def test_replicas_times_srams_fits_chip(self):
        for name in ("iot", "higgs", "allstate", "mq2008", "flight"):
            m = group_by_field_mapping(dataset_spec(name), CFG)
            assert m.replicas * m.srams_per_copy <= CFG.n_bus
