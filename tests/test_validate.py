"""Tests for the claims checklist (repro.sim.validate)."""

import pytest

from repro.sim.validate import Claim, report, validate_all


@pytest.fixture(scope="module")
def claims(executor):
    return validate_all(executor)


class TestValidateAll:
    def test_all_claims_pass(self, claims):
        failing = [c for c in claims if not c.passed]
        assert not failing, f"failing claims: {[(c.exp_id, c.name) for c in failing]}"

    def test_every_experiment_covered(self, claims):
        ids = {c.exp_id for c in claims}
        for exp in ("Table III", "Table IV", "Table V", "Table VI",
                    "Fig. 6", "Fig. 7", "Fig. 9", "Fig. 10", "Fig. 11",
                    "Fig. 12", "Fig. 13"):
            assert exp in ids, exp

    def test_claim_count(self, claims):
        assert len(claims) >= 14

    def test_verdict_strings(self):
        assert Claim("x", "y", "a", "b", True).verdict == "ok"
        assert Claim("x", "y", "a", "b", False).verdict == "FAIL"


class TestReport:
    def test_renders_summary_line(self, claims):
        text = report(claims)
        assert "claim checklist" in text
        assert f"{len(claims)}/{len(claims)} passing" in text

    def test_contains_paper_values(self, claims):
        text = report(claims)
        assert "11.4x" in text
        assert "60.0 mm2" in text
