"""Work-stealing coordination: lease lifecycle, races, reclaim, equivalence.

The fast tests monkeypatch ``run_scenario`` so claiming/stealing semantics
are exercised without training anything; the equivalence tests run real
(tiny) scenarios so the steal-mode manifests can be compared against the
unsharded sweep's payloads byte for byte.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import (
    Coordinator,
    LeaseLost,
    ProfileCache,
    ResultStore,
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    cost_order,
    lease_name,
    scenario_key,
    steal_status,
)
from repro.experiments.steal import LEASE_SUFFIX, SWEEP_FILE, Lease
from repro.gbdt import TrainParams


def tiny_scenario(seed: int = 1, depth: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        dataset="mq2008",
        seed=seed,
        train=TrainParams(n_trees=2, max_depth=depth),
        systems=("ideal-32-core", "booster"),
    )


def dead_pid() -> int:
    """A pid that provably belonged to a now-dead process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestLeaseName:
    def test_content_keys_pass_through(self):
        assert lease_name("s0123abc") == "s0123abc"
        assert lease_name("t99.v2") == "t99.v2"

    def test_unsafe_keys_are_hashed_flat(self):
        spec = ScenarioSpec(dataset="mq2008")
        unkeyable = "!" + spec.to_json()  # the scenario_key fallback form
        name = lease_name(unkeyable)
        assert name.startswith("x")
        assert "/" not in name and "\\" not in name and len(name) <= 64

    def test_hostile_keys_cannot_escape(self):
        for evil in ("../evil", "/abs/path", "a/b", ".", "..", ""):
            name = lease_name(evil)
            assert os.path.basename(name) == name and name not in (".", "..")

    def test_hashing_is_stable_and_injective_enough(self):
        assert lease_name("../a") == lease_name("../a")
        assert lease_name("../a") != lease_name("../b")


class TestLeaseLifecycle:
    def test_claim_is_exclusive(self, tmp_path):
        c1 = Coordinator(tmp_path, ttl=60.0, host="h1", pid=101)
        c2 = Coordinator(tmp_path, ttl=60.0, host="h2", pid=202)
        assert c1.claim("sk1") is True
        assert c2.claim("sk1") is False
        assert c1.claimed == 1 and c2.claimed == 0

    def test_lease_stamp_contents(self, tmp_path):
        before = time.time()
        c = Coordinator(tmp_path, ttl=60.0, host="h1", pid=101)
        assert c.claim("sk1")
        lease = c.read("sk1")
        assert lease.key == "sk1" and lease.holder == "h1:101"
        assert before <= lease.started <= lease.renewed <= time.time()
        assert not lease.done and lease.error is None
        assert (tmp_path / ("sk1" + LEASE_SUFFIX)).is_file()

    def test_renew_advances_timestamp(self, tmp_path):
        c = Coordinator(tmp_path, ttl=60.0)
        c.claim("sk1")
        first = c.read("sk1").renewed
        time.sleep(0.01)
        fresh = c.renew("sk1")
        assert fresh.renewed > first
        assert c.read("sk1").renewed == fresh.renewed

    def test_renew_of_unheld_lease_raises(self, tmp_path):
        ours = Coordinator(tmp_path, ttl=60.0, host="h1", pid=101)
        theirs = Coordinator(tmp_path, ttl=60.0, host="h2", pid=202)
        with pytest.raises(LeaseLost, match="gone"):
            ours.renew("sk1")
        theirs.claim("sk1")
        with pytest.raises(LeaseLost, match="h2:202"):
            ours.renew("sk1")

    def test_mark_done_is_permanent(self, tmp_path):
        c1 = Coordinator(tmp_path, ttl=0.01, host="h1", pid=101)
        c2 = Coordinator(tmp_path, ttl=0.01, host="h2", pid=202)
        c1.claim("sk1")
        c1.mark_done("sk1")
        time.sleep(0.05)
        # Done leases never go stale, even far past the TTL.
        assert c2.claim("sk1") is False
        lease = c2.read("sk1")
        assert lease.done and lease.error is None

    def test_mark_done_records_error(self, tmp_path):
        c = Coordinator(tmp_path, ttl=60.0)
        c.claim("sk1")
        c.mark_done("sk1", error="ValueError: boom")
        assert c.read("sk1").error == "ValueError: boom"

    def test_release_hands_the_scenario_back(self, tmp_path):
        c1 = Coordinator(tmp_path, ttl=60.0, host="h1", pid=101)
        c2 = Coordinator(tmp_path, ttl=60.0, host="h2", pid=202)
        c1.claim("sk1")
        c1.release("sk1")
        assert c1.read("sk1") is None
        assert c2.claim("sk1") is True

    def test_release_never_touches_others_leases(self, tmp_path):
        c1 = Coordinator(tmp_path, ttl=60.0, host="h1", pid=101)
        c2 = Coordinator(tmp_path, ttl=60.0, host="h2", pid=202)
        c1.claim("sk1")
        c2.release("sk1")
        assert c1.read("sk1").holder == "h1:101"

    def test_renewing_context_keeps_lease_fresh(self, tmp_path):
        c = Coordinator(tmp_path, ttl=0.4, host="h1", pid=101)
        thief = Coordinator(tmp_path, ttl=0.4, host="h2", pid=202)
        c.claim("sk1")
        with c.renewing("sk1") as renewer:
            time.sleep(1.0)  # several TTLs: renewal must keep it live
            assert thief.claim("sk1") is False
        assert not renewer.lost


class TestStaleReclaim:
    def test_ttl_expiry_allows_steal(self, tmp_path):
        holder = Coordinator(tmp_path, ttl=0.05, host="h1", pid=101)
        thief = Coordinator(tmp_path, ttl=0.05, host="h2", pid=202)
        holder.claim("sk1")
        assert thief.claim("sk1") is False  # still fresh
        time.sleep(0.1)
        assert thief.claim("sk1") is True
        assert thief.stolen == 1
        assert thief.read("sk1").holder == "h2:202"

    def test_stolen_holder_loses_renewal(self, tmp_path):
        holder = Coordinator(tmp_path, ttl=0.05, host="h1", pid=101)
        thief = Coordinator(tmp_path, ttl=0.05, host="h2", pid=202)
        holder.claim("sk1")
        time.sleep(0.1)
        thief.claim("sk1")
        with pytest.raises(LeaseLost):
            holder.renew("sk1")

    def test_dead_holder_on_this_host_is_stale_immediately(self, tmp_path):
        crashed = Coordinator(tmp_path, ttl=9999.0, pid=dead_pid())
        crashed.claim("sk1")
        fresh = Coordinator(tmp_path, ttl=9999.0)
        # Hours of TTL left, but the kernel already knows the holder died.
        assert fresh.claim("sk1") is True
        assert fresh.stolen == 1

    def test_live_holder_on_this_host_is_not_stale(self, tmp_path):
        mine = Coordinator(tmp_path, ttl=9999.0)  # our own live pid
        other = Coordinator(tmp_path, ttl=9999.0, host=mine.host, pid=mine.pid + 0)
        other.claim("sk1")
        contender = Coordinator(tmp_path, ttl=9999.0, host=mine.host, pid=123456789)
        lease = contender.read("sk1")
        assert contender.is_stale(lease) is False

    def test_slow_breaker_cannot_remove_a_freshly_stolen_lease(self, tmp_path):
        """The double-steal hole `_break` exists to close.

        A slow thief that judged the lease stale a moment ago must not
        unlink the fresh lease a faster thief has already re-stamped --
        that would hand one scenario to two workers.  ``_break``
        re-verifies staleness under its exclusive marker, so the late
        break is a no-op.
        """
        crashed = Coordinator(tmp_path, ttl=9999.0, pid=dead_pid())
        crashed.claim("sk1")
        # Same host, live pids: the dead holder is stale to both thieves,
        # and the winner's fresh lease is live (pid 1 always exists).
        fast = Coordinator(tmp_path, ttl=9999.0, pid=1)
        slow = Coordinator(tmp_path, ttl=9999.0, pid=2)
        # `slow` observed the stale lease ... but `fast` steals it first.
        assert slow.is_stale(slow.read("sk1"))
        assert fast.claim("sk1") is True
        # ... now `slow` finally gets around to breaking: must refuse.
        assert slow._break("sk1") is False
        assert slow.read("sk1").pid == 1
        assert slow.claim("sk1") is False

    def test_break_marker_of_crashed_breaker_ages_out(self, tmp_path):
        # Same-host dead holder: stale immediately, so only the marker
        # governs whether the break may proceed.
        crashed = Coordinator(tmp_path, ttl=60.0, pid=dead_pid())
        crashed.claim("sk1")
        marker = tmp_path / ("sk1" + LEASE_SUFFIX + ".break")
        marker.write_bytes(b"")  # a breaker crashed mid-break
        thief = Coordinator(tmp_path, ttl=60.0)
        assert thief.claim("sk1") is False  # fresh marker blocks the break
        old = time.time() - 120.0
        os.utime(marker, (old, old))
        thief.claim("sk1")  # aged marker is cleaned up ...
        assert not marker.exists()
        assert thief.claim("sk1") is True  # ... and the steal goes through

    def test_corrupt_lease_blocks_until_ttl_then_steals(self, tmp_path):
        c = Coordinator(tmp_path, ttl=60.0)
        path = c.lease_path("sk1")
        path.write_bytes(b"{not json")
        lease = c.read("sk1")
        assert lease.host == "?" and lease.pid == 0
        assert c.claim("sk1") is False  # fresh garbage: maybe a mid-claim peer
        old = time.time() - 120.0
        os.utime(path, (old, old))
        assert c.claim("sk1") is True  # aged garbage: abandoned, reclaimed


def _race_claim(payload):
    """Subprocess body for the claim race (module-level so it pickles)."""
    root, key, start_at = payload
    from repro.experiments.steal import Coordinator

    while time.time() < start_at:
        time.sleep(0.001)
    return Coordinator(root, ttl=60.0).claim(key)


class TestConcurrentClaimRace:
    def test_exactly_one_process_wins(self, tmp_path):
        """N processes slam the same lease at the same instant: one winner.

        The whole claim race is a single ``O_CREAT | O_EXCL`` create, so
        this holds no matter how the processes interleave.
        """
        n = 4
        start_at = time.time() + 0.5
        with ProcessPoolExecutor(max_workers=n) as pool:
            outcomes = list(
                pool.map(_race_claim, [(str(tmp_path), "sk1", start_at)] * n)
            )
        assert sum(outcomes) == 1, outcomes

    def test_stale_break_race_has_one_winner(self, tmp_path):
        """Racing thieves over one stale lease: exactly one reclaims it."""
        crashed = Coordinator(tmp_path, ttl=9999.0, pid=dead_pid())
        crashed.claim("sk1")
        n = 4
        start_at = time.time() + 0.5
        with ProcessPoolExecutor(max_workers=n) as pool:
            outcomes = list(
                pool.map(_race_claim, [(str(tmp_path), "sk1", start_at)] * n)
            )
        assert sum(outcomes) == 1, outcomes


class TestEnsureSweep:
    def test_first_worker_publishes_descriptor(self, tmp_path):
        c = Coordinator(tmp_path, ttl=60.0)
        sweep = c.ensure_sweep(["sk1", "sk2"], "compare")
        assert sweep["n_scenarios"] == 2 and sweep["mode"] == "compare"
        assert (tmp_path / SWEEP_FILE).is_file()

    def test_same_sweep_matches_regardless_of_order_and_dups(self, tmp_path):
        c1 = Coordinator(tmp_path, ttl=60.0)
        c2 = Coordinator(tmp_path, ttl=60.0)
        c1.ensure_sweep(["sk1", "sk2"], "compare")
        c2.ensure_sweep(["sk2", "sk1", "sk1"], "compare")  # no raise

    def test_different_sweep_is_rejected(self, tmp_path):
        Coordinator(tmp_path, ttl=60.0).ensure_sweep(["sk1", "sk2"], "compare")
        with pytest.raises(ValueError, match="different sweep"):
            Coordinator(tmp_path, ttl=60.0).ensure_sweep(["sk3"], "compare")

    def test_different_mode_is_rejected(self, tmp_path):
        Coordinator(tmp_path, ttl=60.0).ensure_sweep(["sk1"], "compare")
        with pytest.raises(ValueError, match="different sweep"):
            Coordinator(tmp_path, ttl=60.0).ensure_sweep(["sk1"], "inference")

    def test_bad_ttl_rejected(self, tmp_path):
        for ttl in (0, -1.0):
            with pytest.raises(ValueError, match="TTL"):
                Coordinator(tmp_path, ttl=ttl)


@pytest.fixture()
def fake_runs(monkeypatch):
    """Replace ``run_scenario`` with an instant fake; returns the call log."""
    calls: list[str] = []
    lock = threading.Lock()

    def fake(scenario, cache=None, results=None, mode="compare"):
        with lock:
            calls.append(scenario_key(scenario))
        if scenario.seed == 99:
            raise ValueError("seed 99 always fails")
        return SweepResult(
            scenario=scenario,
            comparison=None,
            cache_hit=True,
            worker_pid=os.getpid(),
            kind=mode,
            duration_s=0.01,
        )

    monkeypatch.setattr(runner_mod, "run_scenario", fake)
    return calls


def _runner(tmp_path) -> SweepRunner:
    cache = ProfileCache(root=tmp_path / "cache")
    return SweepRunner(cache=cache, parallel=False, results=ResultStore(root=cache.root))


class TestRunStealing:
    def test_single_worker_drains_everything_in_cost_order(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s, depth=d) for s in (1, 2) for d in (2, 5)]
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        results = list(_runner(tmp_path).run_stealing(scenarios, coordinator))
        assert {scenario_key(r.scenario) for r in results} == {
            scenario_key(s) for s in scenarios
        }
        # Claimed most-expensive-first: the fake ran deep trees before shallow.
        expected = [scenario_key(s) for s in cost_order(scenarios)]
        assert fake_runs == expected
        # One lease per scenario, all done.
        leases = coordinator.leases()
        assert len(leases) == len(scenarios) and all(lease.done for lease in leases)

    def test_two_workers_split_without_double_running(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s, depth=d) for s in (1, 2, 3) for d in (2, 4)]
        coord_dir = tmp_path / "coord"
        outputs: dict[str, list] = {"a": [], "b": []}

        def worker(name):
            # Distinct *hosts* (not fake pids: a nonexistent pid on this
            # host would look like a crashed worker and invite stealing).
            coordinator = Coordinator(coord_dir, ttl=60.0, host=f"host-{name}")
            runner = _runner(tmp_path)
            outputs[name] = list(
                runner.run_stealing(scenarios, coordinator, poll_interval=0.01)
            )

        threads = [
            threading.Thread(target=worker, args=("a",)),
            threading.Thread(target=worker, args=("b",)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        keys_a = {scenario_key(r.scenario) for r in outputs["a"]}
        keys_b = {scenario_key(r.scenario) for r in outputs["b"]}
        assert keys_a.isdisjoint(keys_b)
        assert keys_a | keys_b == {scenario_key(s) for s in scenarios}
        # The lease files enforced exactly one execution per scenario.
        assert sorted(fake_runs) == sorted({scenario_key(s) for s in scenarios})

    def test_fresh_worker_completes_after_a_crash(self, tmp_path, fake_runs):
        """Kill a worker mid-sweep; a fresh one still completes every scenario."""
        scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3)]
        coord_dir = tmp_path / "coord"
        # The "crashed" worker: claimed a scenario, died without renewing
        # (its stamp carries a provably dead pid).
        crashed = Coordinator(coord_dir, ttl=9999.0, pid=dead_pid())
        assert crashed.claim(scenario_key(scenarios[0]))
        fresh = Coordinator(coord_dir, ttl=9999.0)
        results = list(_runner(tmp_path).run_stealing(scenarios, fresh))
        assert {scenario_key(r.scenario) for r in results} == {
            scenario_key(s) for s in scenarios
        }
        assert fresh.stolen == 1
        assert all(lease.done for lease in fresh.leases())

    def test_ttl_reclaim_between_worker_generations(self, tmp_path, fake_runs):
        """A remote host's abandoned lease ages out and is stolen."""
        scenarios = [tiny_scenario(seed=s) for s in (1, 2)]
        coord_dir = tmp_path / "coord"
        remote = Coordinator(coord_dir, ttl=0.05, host="elsewhere", pid=4242)
        assert remote.claim(scenario_key(scenarios[0]))
        time.sleep(0.1)
        fresh = Coordinator(coord_dir, ttl=0.05)
        results = list(
            _runner(tmp_path).run_stealing(scenarios, fresh, poll_interval=0.01)
        )
        assert len(results) == len(scenarios) and fresh.stolen == 1

    def test_peer_completions_are_skipped_not_rerun(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3)]
        coord_dir = tmp_path / "coord"
        peer = Coordinator(coord_dir, ttl=60.0, host="peer", pid=777)
        done_key = scenario_key(scenarios[1])
        peer.claim(done_key)
        peer.mark_done(done_key)
        results = list(_runner(tmp_path).run_stealing(scenarios, Coordinator(coord_dir, ttl=60.0)))
        assert done_key not in {scenario_key(r.scenario) for r in results}
        assert done_key not in fake_runs
        assert len(results) == 2

    def test_completed_keys_mark_done_without_running(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s) for s in (1, 2)]
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        done_key = scenario_key(scenarios[0])
        results = list(
            _runner(tmp_path).run_stealing(scenarios, coordinator, completed=[done_key])
        )
        assert [scenario_key(r.scenario) for r in results] == [scenario_key(scenarios[1])]
        assert done_key not in fake_runs
        lease = coordinator.read(done_key)
        assert lease is not None and lease.done

    def test_failed_scenario_lease_is_done_with_error(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=99)]  # the fake raises for seed 99
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        (result,) = _runner(tmp_path).run_stealing(scenarios, coordinator)
        assert result.error is not None and "seed 99" in result.error
        lease = coordinator.read(scenario_key(scenarios[0]))
        assert lease.done and "seed 99" in lease.error
        status = steal_status(tmp_path / "coord")
        assert status["counts"]["failed"] == 1

    def test_worker_waits_for_live_peer_to_finish(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s) for s in (1, 2)]
        coord_dir = tmp_path / "coord"
        held_key = scenario_key(cost_order(scenarios)[0])
        peer = Coordinator(coord_dir, ttl=9999.0)  # live pid: not stealable
        assert peer.claim(held_key)
        collected = []

        def worker():
            runner = _runner(tmp_path)
            coordinator = Coordinator(coord_dir, ttl=9999.0, pid=31337)
            collected.extend(
                runner.run_stealing(scenarios, coordinator, poll_interval=0.01)
            )

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.3)
        assert thread.is_alive()  # polling: one scenario is held by the peer
        peer.mark_done(held_key)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert [scenario_key(r.scenario) for r in collected] == [
            k for k in (scenario_key(s) for s in scenarios) if k != held_key
        ]

    def test_interrupt_releases_the_claimed_lease(self, tmp_path, monkeypatch):
        def explode(scenario, cache=None, results=None, mode="compare"):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "run_scenario", explode)
        scenarios = [tiny_scenario(seed=1)]
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        with pytest.raises(KeyboardInterrupt):
            list(_runner(tmp_path).run_stealing(scenarios, coordinator))
        # The lease was handed back, not left to age out.
        assert coordinator.read(scenario_key(scenarios[0])) is None

    def test_empty_sweep_yields_nothing(self, tmp_path, fake_runs):
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        assert list(_runner(tmp_path).run_stealing([], coordinator)) == []


class TestStealStatus:
    def test_missing_directory_is_none(self, tmp_path):
        assert steal_status(tmp_path / "nope") is None

    def test_counts_and_unclaimed(self, tmp_path, fake_runs):
        scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3)]
        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        coordinator.ensure_sweep([scenario_key(s) for s in scenarios], "compare")
        coordinator.claim(scenario_key(scenarios[0]))
        coordinator.mark_done(scenario_key(scenarios[0]))
        coordinator.claim(scenario_key(scenarios[1]))
        status = steal_status(tmp_path / "coord")
        assert status["counts"] == {"done": 1, "failed": 0, "running": 1, "stale": 0}
        assert status["unclaimed"] == 1
        assert status["sweep"]["n_scenarios"] == 3

    def test_stale_rows_are_reported_claimable(self, tmp_path):
        coordinator = Coordinator(tmp_path / "coord", ttl=9999.0, pid=dead_pid())
        coordinator.claim("sk1")
        status = steal_status(tmp_path / "coord", ttl=9999.0)
        assert status["counts"]["stale"] == 1

    def test_sweep_descriptor_only_directory_renders_empty_ledger(
        self, capsys, tmp_path
    ):
        """Regression: a directory holding only ``sweep.json`` -- a sweep
        announced but nothing claimed yet -- must render as an empty ledger
        (exit 0), not trip over the zero-row table."""
        from repro.cli import main

        coordinator = Coordinator(tmp_path / "coord", ttl=60.0)
        coordinator.ensure_sweep(["sk1", "sk2"], "compare")
        assert [p.name for p in (tmp_path / "coord").iterdir()] == ["sweep.json"]
        status = steal_status(tmp_path / "coord")
        assert status["counts"] == {"done": 0, "failed": 0, "running": 0, "stale": 0}
        assert status["unclaimed"] == 2
        assert main(["steal-status", str(tmp_path / "coord")]) == 0
        out = capsys.readouterr().out
        assert "0 done, 0 failed, 0 running, 0 stale" in out
        assert "2 unclaimed of 2 scenario(s)" in out


class TestStoreHelpers:
    """The path-validation/atomic-write helpers shared with the lease code."""

    def test_validate_flat_name_accepts_flat(self):
        from repro.experiments.cache import validate_flat_name

        for ok in ("s0abc.json", "t9.pkl", "sk1.lease"):
            validate_flat_name(ok)

    def test_validate_flat_name_rejects_paths(self):
        from repro.experiments.cache import validate_flat_name

        for evil in ("../x.pkl", "a/b.json", "/abs.pkl", "", ".", ".."):
            with pytest.raises(ValueError, match="refusing"):
                validate_flat_name(evil)

    def test_atomic_write_creates_parents_and_replaces(self, tmp_path):
        from repro.experiments.cache import atomic_write_bytes

        target = tmp_path / "deep" / "nested" / "x.json"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert list(target.parent.glob("*.tmp")) == []

    def test_sweep_stale_tmp_spares_fresh_files(self, tmp_path):
        from repro.experiments.cache import sweep_stale_tmp

        fresh = tmp_path / "live.tmp"
        fresh.write_bytes(b"in flight")
        old = tmp_path / "orphan.tmp"
        old.write_bytes(b"abandoned")
        ancient = time.time() - 3600.0
        os.utime(old, (ancient, ancient))
        assert sweep_stale_tmp(tmp_path) == 1
        assert fresh.exists() and not old.exists()

    def test_validate_flat_name_accepts_unicode_and_long_stems(self):
        from repro.experiments.cache import validate_flat_name

        # Unicode hostnames reach lease stems via f"{host}-{pid}"; a flat
        # non-ASCII basename is legitimate and must pass the gate.
        for ok in ("wörker-42.lease", "机-7.tmp", "café.json", "a" * 255):
            validate_flat_name(ok)

    def test_validate_flat_name_rejects_separators_anywhere(self):
        from repro.experiments.cache import validate_flat_name

        for evil in ("wö/rker.lease", "a" * 200 + "/x", "../up.json"):
            with pytest.raises(ValueError, match="refusing"):
                validate_flat_name(evil)

    def test_sweep_stale_tmp_age_boundary(self, tmp_path):
        """A ``.tmp`` newer than the age gate survives; at/past it, reclaimed."""
        from repro.experiments.cache import sweep_stale_tmp

        just_under = tmp_path / "under.tmp"
        just_under.write_bytes(b"x")
        young = time.time() - 1.0
        os.utime(just_under, (young, young))
        assert sweep_stale_tmp(tmp_path, max_age=30.0) == 0
        assert just_under.exists()
        assert sweep_stale_tmp(tmp_path, max_age=0.5) == 1
        assert not just_under.exists()

    def test_sweep_stale_tmp_missing_and_non_dir_roots(self, tmp_path):
        from repro.experiments.cache import sweep_stale_tmp

        assert sweep_stale_tmp(tmp_path / "nope") == 0
        plain = tmp_path / "file"
        plain.write_bytes(b"")
        assert sweep_stale_tmp(plain) == 0

    def test_sweep_stale_tmp_ignores_non_tmp_entries(self, tmp_path):
        from repro.experiments.cache import sweep_stale_tmp

        keep = tmp_path / "entry.json"
        keep.write_bytes(b"{}")
        ancient = time.time() - 3600.0
        os.utime(keep, (ancient, ancient))
        assert sweep_stale_tmp(tmp_path) == 0
        assert keep.exists()


class TestStealCLI:
    """CLI integration: --coordinate / --lease-ttl / steal-status."""

    def _isolate_cache(self, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)

    def _sweep_argv(self, extra):
        return [
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "max_depth=2,3",
            "--systems", "ideal-32-core", "booster",
            *extra,
        ]

    def test_steal_merge_equals_unsharded(self, capsys, monkeypatch, tmp_path):
        """One steal worker + one late (empty) worker merge to exactly the
        unsharded sweep's manifest -- the static-partition equivalence,
        under dynamic claiming."""
        from repro.cli import main

        self._isolate_cache(monkeypatch, tmp_path)
        coord = tmp_path / "coord"
        full = tmp_path / "full.jsonl"
        w1, w2 = tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"
        assert main(self._sweep_argv(["--out", str(full)])) == 0
        assert main(
            self._sweep_argv(["--coordinate", str(coord), "--out", str(w1)])
        ) == 0
        out = capsys.readouterr().out
        assert "steal: claimed 2/2 scenario(s)" in out
        assert "stealing from" in out
        # A worker arriving after the sweep drained claims nothing.
        assert main(
            self._sweep_argv(["--coordinate", str(coord), "--out", str(w2)])
        ) == 0
        assert "steal: claimed 0/2 scenario(s)" in capsys.readouterr().out
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(merged), str(w1), str(w2)]) == 0

        def load(p):
            return {d["cache_key"]: d for d in map(json.loads, p.read_text().splitlines())}

        full_lines, merged_lines = load(full), load(merged)
        assert set(full_lines) == set(merged_lines)
        for key, line in merged_lines.items():
            assert line["error"] is None
            assert line["comparison"] == full_lines[key]["comparison"]
            assert line["scenario"] == full_lines[key]["scenario"]
        # One lease per scenario, every one done.
        leases = list(coord.glob(f"*{LEASE_SUFFIX}"))
        assert len(leases) == 2
        assert all(json.loads(p.read_bytes())["done"] for p in leases)

    def test_steal_status_renders_ledger(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        self._isolate_cache(monkeypatch, tmp_path)
        coord = tmp_path / "coord"
        assert main(self._sweep_argv(["--coordinate", str(coord)])) == 0
        capsys.readouterr()
        assert main(["steal-status", str(coord)]) == 0
        out = capsys.readouterr().out
        assert "work-stealing leases" in out
        assert "2 done, 0 failed, 0 running, 0 stale" in out
        assert "0 unclaimed of 2 scenario(s)" in out

    def test_steal_status_missing_dir(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["steal-status", str(tmp_path / "nope")]) == 2
        assert "no such lease store (or unreachable)" in capsys.readouterr().err

    def test_restart_with_resume_keeps_manifest_whole(
        self, capsys, monkeypatch, tmp_path
    ):
        """Re-running a finished steal worker with --resume re-emits its rows
        as resumed instead of losing them to done leases."""
        from repro.cli import main

        self._isolate_cache(monkeypatch, tmp_path)
        coord = tmp_path / "coord"
        w1 = tmp_path / "w1.jsonl"
        argv = self._sweep_argv(["--coordinate", str(coord), "--out", str(w1)])
        assert main(argv) == 0
        first = w1.read_text()
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 2/2 scenarios already in" in out
        assert "steal: claimed 0/2" in out
        assert w1.read_text() == first  # nothing lost, nothing duplicated

    def test_coordinating_a_different_sweep_is_rejected(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.cli import main

        self._isolate_cache(monkeypatch, tmp_path)
        coord = tmp_path / "coord"
        assert main(self._sweep_argv(["--coordinate", str(coord)])) == 0
        capsys.readouterr()
        argv = [
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "max_depth=4,5",  # different sweep, same directory
            "--systems", "ideal-32-core", "booster",
            "--coordinate", str(coord),
        ]
        assert main(argv) == 2
        assert "different sweep" in capsys.readouterr().err

    def test_coordinate_flag_validation(self, capsys, tmp_path):
        from repro.cli import main

        coord = str(tmp_path / "coord")
        cases = [
            (["--coordinate", coord, "--shard", "1/2"], "pick one"),
            (["--coordinate", coord, "--workers", "2"], "start more workers"),
            (["--lease-ttl", "60"], "--lease-ttl only applies"),
            (["--coordinate", coord, "--lease-ttl", "0"], "must be positive"),
        ]
        for extra, message in cases:
            assert main(self._sweep_argv(extra)) == 2, extra
            assert message in capsys.readouterr().err

    def test_coordinate_requires_axes(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["sweep", "--coordinate", str(tmp_path / "coord")]) == 2
        err = capsys.readouterr().err
        assert "--coordinate" in err and "apply to axis sweeps" in err
        assert main(["sweep", "--lease-ttl", "60"]) == 2
        assert "apply to axis sweeps" in capsys.readouterr().err


class TestLeaseSerialization:
    def test_round_trip(self):
        lease = Lease(
            key="sk1", host="h", pid=12, started=1.5, renewed=2.5,
            done=True, error="boom",
        )
        assert Lease.from_dict(json.loads(lease.to_json())) == lease

    def test_defaults(self):
        lease = Lease.from_dict(
            {"key": "k", "host": "h", "pid": 1, "started": 0.0, "renewed": 0.0}
        )
        assert not lease.done and lease.error is None
