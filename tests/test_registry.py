"""Tests for the benchmark registry (Table III structure)."""

import pytest

from repro.datasets import (
    BENCHMARK_NAMES,
    dataset_spec,
    load,
    paper_records,
    table3_rows,
)

#: Table III structural ground truth: (fields, categorical fields, features).
TABLE3 = {
    "iot": (115, 0, 115),
    "higgs": (28, 0, 28),
    "allstate": (32, 16, 4232),
    "mq2008": (46, 0, 46),
    "flight": (8, 7, 666),
}

PAPER_RECORDS = {
    "iot": 7_000_000,
    "higgs": 10_000_000,
    "allstate": 10_000_000,
    "mq2008": 1_000_000,
    "flight": 10_000_000,
}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table3_structure_exact(name):
    spec = dataset_spec(name)
    fields, cats, feats = TABLE3[name]
    assert spec.n_fields == fields
    assert spec.n_categorical_fields == cats
    assert spec.n_features == feats


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_paper_record_counts(name):
    assert paper_records(name) == PAPER_RECORDS[name]
    assert dataset_spec(name).paper_records == PAPER_RECORDS[name]


def test_default_scale_is_thousandth():
    spec = dataset_spec("higgs")
    assert spec.n_records == 10_000


def test_scale_override():
    assert dataset_spec("higgs", scale=1e-4).n_records == 1000


def test_records_override():
    assert dataset_spec("iot", n_records=1234).n_records == 1234


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        dataset_spec("mnist")


def test_load_returns_valid_binned(tmp_path):
    ds = load("flight", n_records=500)
    ds.validate_codes()
    assert ds.n_records == 500


def test_table3_rows_complete():
    rows = table3_rows()
    assert [r["name"] for r in rows] == list(BENCHMARK_NAMES)
    for r in rows:
        assert r["features_onehot"] == TABLE3[r["name"]][2]
        assert r["paper_seq_minutes"] > 0


def test_iot_has_dominant_fields():
    spec = dataset_spec("iot")
    weights = sorted((f.target_weight for f in spec.fields), reverse=True)
    assert weights[0] >= 3.0  # dominant step fields -> shallow trees
    assert weights[3] == 0.0  # the rest is noise


def test_allstate_categorical_cardinalities_sum():
    spec = dataset_spec("allstate")
    total = sum(f.n_categories for f in spec.fields if f.is_categorical)
    assert total + spec.n_numerical_fields == 4232


def test_flight_categorical_cardinalities_sum():
    spec = dataset_spec("flight")
    total = sum(f.n_categories for f in spec.fields if f.is_categorical)
    assert total + spec.n_numerical_fields == 666


def test_specs_deterministic():
    assert dataset_spec("mq2008") == dataset_spec("mq2008")
