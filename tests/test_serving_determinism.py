"""Cross-process serving determinism: the content-keyed store's bedrock.

A stored ``ServingResult`` is replayed on any later run, on any host, so
the simulation must be a pure function of the scenario: same seed and
parameters (or same recorded trace) => bit-identical JSON in a fresh
process, even under a different ``PYTHONHASHSEED`` and a cold cache.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from repro.experiments import ScenarioSpec, ServingParams
from repro.gbdt import TrainParams

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")

#: Runs the scenario in a clean interpreter and prints the canonical
#: serving JSON; each invocation gets its own cache root so the second
#: process genuinely re-trains and re-simulates instead of replaying.
CODE = """
import json
from repro.experiments import ProfileCache, ScenarioSpec, run_scenario

scenario = ScenarioSpec.from_json({scenario_json!r})
result = run_scenario(scenario, ProfileCache(root={cache_root!r}), mode="serving")
assert result.ok, result.error
print(json.dumps(result.serving.to_dict(), sort_keys=True))
"""


def _serving_json(scenario: ScenarioSpec, cache_root: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    code = CODE.format(scenario_json=scenario.to_json(), cache_root=cache_root)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout.strip().splitlines()[-1]


def _tiny(serving: ServingParams) -> ScenarioSpec:
    return ScenarioSpec(
        dataset="mq2008",
        sim_records=500,
        train=TrainParams(n_trees=2),
        systems=("ideal-32-core", "booster"),
        serving=serving,
    )


def test_generated_arrivals_bit_identical_across_processes(tmp_path):
    scenario = _tiny(ServingParams(qps=150.0, duration_s=1.0))
    a = _serving_json(scenario, str(tmp_path / "a"), hashseed="0")
    b = _serving_json(scenario, str(tmp_path / "b"), hashseed="31337")
    assert a == b
    payload = json.loads(a)
    assert payload["systems"]["booster"]["n_requests"] > 0


def test_trace_replay_bit_identical_across_processes(tmp_path):
    from repro.serving import trace_digest

    trace = tmp_path / "trace.jsonl"
    trace.write_text(
        "".join(
            json.dumps({"t": round(0.004 * i, 6), "priority": i % 3}) + "\n"
            for i in range(200)
        )
    )
    scenario = _tiny(
        ServingParams(
            arrival="trace",
            trace_path=str(trace),
            trace_sha=trace_digest(str(trace)),
            policy="timeout",
            max_batch=8,
            timeout_ms=4.0,
            queue="priority",
        )
    )
    a = _serving_json(scenario, str(tmp_path / "a"), hashseed="0")
    b = _serving_json(scenario, str(tmp_path / "b"), hashseed="31337")
    assert a == b
    payload = json.loads(a)
    assert payload["systems"]["booster"]["n_requests"] == 200
