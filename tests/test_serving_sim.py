"""Discrete-event queue semantics: policies, disciplines, saturation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import simulate

COST = 0.010  # flat 10 ms per batch unless a test says otherwise


def flat_cost(n_records: int) -> float:
    return COST


def run(times, priorities=None, **overrides):
    ts = np.asarray(times, dtype=np.float64)
    ps = np.asarray(
        priorities if priorities is not None else np.zeros(ts.size), dtype=np.int64
    )
    kwargs = dict(
        policy="batch",
        max_batch=32,
        timeout_s=0.0,
        queue="fifo",
        records_per_request=1,
        service_seconds=flat_cost,
    )
    kwargs.update(overrides)
    return simulate(ts, ps, **kwargs)


class TestPolicies:
    def test_immediate_serves_one_request_per_batch(self):
        trace = run([0.0, 0.0, 0.0, 0.0], policy="immediate")
        assert trace.batch_sizes == [1, 1, 1, 1]
        # Serialized through a single server: each waits for its predecessors.
        assert trace.latencies_s.tolist() == pytest.approx([COST * k for k in (1, 2, 3, 4)])

    def test_batch_greedy_caps_at_max_batch(self):
        trace = run([0.0] * 10, max_batch=4)
        assert trace.batch_sizes == [4, 4, 2]
        assert trace.queue_depth == [(0.0, 6), (COST, 2), (2 * COST, 0)]
        assert trace.max_queue_depth == 10

    def test_timeout_holds_unfilled_window_to_deadline(self):
        trace = run([0.0], policy="timeout", max_batch=4, timeout_s=0.005)
        # Alone in the window: the server launches at the deadline.
        assert trace.latencies_s.tolist() == pytest.approx([0.005 + COST])

    def test_timeout_launches_early_once_window_fills(self):
        trace = run(
            [0.0, 0.001, 0.002, 0.5], policy="timeout", max_batch=3, timeout_s=0.005
        )
        assert trace.batch_sizes == [3, 1]
        # Window fills at t=0.002 and launches immediately -- the deadline
        # (t=0.005) never binds; the straggler waits out its own window.
        assert trace.latencies_s.tolist() == pytest.approx(
            [0.002 + COST, 0.001 + COST, COST, 0.005 + COST]
        )

    def test_zero_timeout_degenerates_to_greedy_batching(self):
        greedy = run([0.0] * 6, max_batch=4)
        timeout = run([0.0] * 6, policy="timeout", max_batch=4, timeout_s=0.0)
        assert timeout.batch_sizes == greedy.batch_sizes
        assert np.array_equal(timeout.latencies_s, greedy.latencies_s)


class TestQueueDisciplines:
    def test_fifo_serves_in_arrival_order(self):
        trace = run([0.0, 0.0, 0.0], [2, 1, 0], policy="immediate", queue="fifo")
        assert trace.latencies_s.tolist() == pytest.approx([COST, 2 * COST, 3 * COST])

    def test_priority_serves_lowest_rank_first(self):
        trace = run([0.0, 0.0, 0.0], [2, 1, 0], policy="immediate", queue="priority")
        assert trace.latencies_s.tolist() == pytest.approx([3 * COST, 2 * COST, COST])

    def test_priority_ties_break_by_arrival(self):
        trace = run([0.0, 0.0], [5, 5], policy="immediate", queue="priority")
        assert trace.latencies_s.tolist() == pytest.approx([COST, 2 * COST])


class TestMechanics:
    def test_bit_identical_across_calls(self):
        rng = np.random.default_rng(11)
        times = np.sort(rng.uniform(0.0, 1.0, size=400))
        priorities = rng.integers(0, 4, size=400)
        a = run(times, priorities, max_batch=8, queue="priority")
        b = run(times, priorities, max_batch=8, queue="priority")
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert a.batch_sizes == b.batch_sizes
        assert a.queue_depth == b.queue_depth

    def test_empty_trace(self):
        trace = run([])
        assert trace.latencies_s.size == 0
        assert trace.batch_sizes == [] and trace.queue_depth == []
        assert trace.max_queue_depth == 0

    def test_unsorted_input_is_sorted_stably(self):
        trace = run([0.5, 0.0], policy="immediate")
        # latencies_s is indexed in arrival-time order after the stable sort.
        assert trace.first_arrival_s == 0.0
        assert trace.latencies_s.tolist() == pytest.approx([COST, COST])

    def test_per_record_costs_reach_service_function(self):
        seen: list[int] = []

        def record_cost(n_records: int) -> float:
            seen.append(n_records)
            return 1e-4 * n_records

        run([0.0] * 4, max_batch=4, records_per_request=3, service_seconds=record_cost)
        assert seen == [12]  # one batch of 4 requests x 3 records each

    def test_saturation_grows_the_queue_without_bound(self):
        # Offered 1000 qps against a 100 qps server: the backlog and the
        # latency ramp are the signature the saturation verdict keys on.
        times = np.linspace(0.0, 0.999, 1000)
        trace = run(times, policy="immediate")
        assert trace.max_queue_depth > 100
        assert float(trace.latencies_s[-1]) > 50 * COST
        depths = [d for _, d in trace.queue_depth]
        assert max(depths) > depths[0]


class TestValidation:
    def test_rejects_unknown_policy_and_queue(self):
        with pytest.raises(ValueError, match="unknown batching policy"):
            run([0.0], policy="psychic")
        with pytest.raises(ValueError, match="unknown queue discipline"):
            run([0.0], queue="lifo")

    def test_rejects_bad_sizes_and_timeouts(self):
        with pytest.raises(ValueError, match=">= 1"):
            run([0.0], max_batch=0)
        with pytest.raises(ValueError, match=">= 1"):
            run([0.0], records_per_request=0)
        with pytest.raises(ValueError, match="timeout_s"):
            run([0.0], timeout_s=float("nan"))
        with pytest.raises(ValueError, match="timeout_s"):
            run([0.0], timeout_s=-1.0)

    def test_rejects_nonpositive_service_cost(self):
        with pytest.raises(ValueError, match="finite and positive"):
            run([0.0], service_seconds=lambda n: 0.0)
