"""Tests for loss functions and gradient statistics (repro.gbdt.losses)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import TaskKind
from repro.gbdt import LogisticLoss, SquaredErrorLoss, loss_for_task


def numeric_gradients(loss, margin, y, eps=1e-5):
    """Central-difference g and h for verification."""
    g = np.empty_like(margin)
    h = np.empty_like(margin)
    for i in range(len(margin)):
        up = margin.copy()
        dn = margin.copy()
        up[i] += eps
        dn[i] -= eps
        lu = loss.value(up, y) * len(y)
        ld = loss.value(dn, y) * len(y)
        l0 = loss.value(margin, y) * len(y)
        g[i] = (lu - ld) / (2 * eps)
        h[i] = (lu - 2 * l0 + ld) / (eps * eps)
    return g, h


class TestSquaredError:
    def test_gradients_closed_form(self):
        loss = SquaredErrorLoss()
        margin = np.array([0.0, 1.0, -2.0])
        y = np.array([1.0, 1.0, 1.0])
        g, h = loss.gradients(margin, y)
        assert np.allclose(g, margin - y)
        assert np.allclose(h, 1.0)

    def test_gradients_match_numeric(self, rng):
        loss = SquaredErrorLoss()
        margin = rng.standard_normal(8)
        y = rng.standard_normal(8)
        g, h = loss.gradients(margin, y)
        gn, hn = numeric_gradients(loss, margin, y)
        assert np.allclose(g, gn, atol=1e-4)
        assert np.allclose(h, hn, atol=1e-3)

    def test_base_margin_is_mean(self):
        loss = SquaredErrorLoss()
        y = np.array([1.0, 3.0, 5.0])
        assert loss.base_margin(y) == pytest.approx(3.0)

    def test_value_zero_at_perfect_fit(self):
        loss = SquaredErrorLoss()
        y = np.array([1.0, 2.0])
        assert loss.value(y, y) == 0.0

    def test_empty_inputs(self):
        loss = SquaredErrorLoss()
        assert loss.base_margin(np.array([])) == 0.0
        assert loss.value(np.array([]), np.array([])) == 0.0


class TestLogistic:
    def test_gradients_closed_form(self):
        loss = LogisticLoss()
        margin = np.array([0.0])
        y = np.array([1.0])
        g, h = loss.gradients(margin, y)
        assert g[0] == pytest.approx(-0.5)
        assert h[0] == pytest.approx(0.25)

    def test_gradients_match_numeric(self, rng):
        loss = LogisticLoss()
        margin = rng.standard_normal(8) * 2
        y = (rng.random(8) > 0.5).astype(float)
        g, h = loss.gradients(margin, y)
        gn, hn = numeric_gradients(loss, margin, y)
        assert np.allclose(g, gn, atol=1e-4)
        assert np.allclose(h, hn, atol=1e-3)

    def test_hessian_positive(self, rng):
        loss = LogisticLoss()
        margin = rng.standard_normal(100) * 30  # extreme margins
        y = (rng.random(100) > 0.5).astype(float)
        _, h = loss.gradients(margin, y)
        assert np.all(h > 0)

    def test_numerically_stable_at_extremes(self):
        loss = LogisticLoss()
        margin = np.array([1000.0, -1000.0])
        y = np.array([1.0, 0.0])
        g, h = loss.gradients(margin, y)
        assert np.all(np.isfinite(g))
        assert np.all(np.isfinite(h))
        assert np.isfinite(loss.value(margin, y))

    def test_base_margin_log_odds(self):
        loss = LogisticLoss()
        y = np.array([1.0, 1.0, 1.0, 0.0])
        assert loss.base_margin(y) == pytest.approx(np.log(0.75 / 0.25))

    def test_predict_transform_is_probability(self, rng):
        loss = LogisticLoss()
        p = loss.predict_transform(rng.standard_normal(100) * 5)
        assert np.all((p > 0) & (p < 1))

    def test_sigmoid_symmetry(self):
        loss = LogisticLoss()
        x = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        s = loss.predict_transform(x)
        assert np.allclose(s + loss.predict_transform(-x), 1.0)

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_g_bounded_by_one(self, m):
        loss = LogisticLoss()
        g, h = loss.gradients(np.array([m]), np.array([1.0]))
        assert -1.0 <= g[0] <= 1.0
        assert 0.0 < h[0] <= 0.25 + 1e-12


class TestLossForTask:
    def test_binary_gets_logistic(self):
        assert isinstance(loss_for_task(TaskKind.BINARY), LogisticLoss)

    def test_regression_gets_squared(self):
        assert isinstance(loss_for_task(TaskKind.REGRESSION), SquaredErrorLoss)

    def test_ranking_trained_pointwise(self):
        assert isinstance(loss_for_task(TaskKind.RANKING), SquaredErrorLoss)
