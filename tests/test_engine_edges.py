"""Edge-case tests for the Booster engine and microarch extensions (Sec. III-C)."""

import numpy as np
import pytest

from repro.core import BoosterConfig, BoosterEngine
from repro.datasets import RecordLayout, dataset_spec
from repro.gbdt.workprofile import InferenceWork


class TestFieldPartitioning:
    """Extension (1): more fields than SRAMs -> per-pass record streaming."""

    def test_tiny_chip_partitions_iot(self, executor):
        prof = executor.profile("iot")  # 115 fields
        tiny = BoosterConfig(n_clusters=1, bus_per_cluster=32)
        engine = BoosterEngine(config=tiny, bandwidth=executor.bandwidth)
        mapping = engine.bin_mapping(prof)
        assert mapping.field_passes == -(-115 // 32)
        assert mapping.replicas == 1

    def test_partitioning_costs_extra_stat_fetches(self, executor):
        prof = executor.profile("iot")
        tiny = BoosterConfig(n_clusters=1, bus_per_cluster=32)
        small = BoosterEngine(config=tiny, bandwidth=executor.bandwidth)
        big = BoosterEngine(bandwidth=executor.bandwidth)
        assert small.training_times(prof).step1 > big.training_times(prof).step1


class TestRecordPacking:
    """Extension (2): small records pack two-plus per memory block."""

    def test_flight_packs_seven(self):
        # 7 one-byte fields plus one 301-bin categorical (2-byte code) give
        # 9-byte records: seven pack into a 64 B block.
        layout = RecordLayout(dataset_spec("flight", n_records=512))
        assert layout.record_bytes == 9
        assert layout.records_per_block == 7

    def test_higgs_packs_two(self):
        layout = RecordLayout(dataset_spec("higgs", n_records=512))
        assert layout.records_per_block == 2

    def test_iot_spans_two_blocks(self):
        layout = RecordLayout(dataset_spec("iot", n_records=512))
        assert layout.blocks_per_record == 2


class TestOversizedFields:
    """Extension (3): fields with more bins than one SRAM span a group."""

    def test_allstate_biggest_field_groups(self, executor):
        prof = executor.profile("allstate")
        engine = executor.model("booster")
        mapping = engine.bin_mapping(prof)
        # 1500-category field + absent bin -> ceil(1501/256) = 6 SRAMs.
        assert mapping.srams_per_copy > prof.n_fields
        assert mapping.serialization == 1.0  # repeated-bin trick preserved


class TestMultiChipInference:
    """Sec. III-D: trees beyond one chip round-robin across chips."""

    def make_work(self, executor, n_trees):
        spec = dataset_spec("higgs")
        return InferenceWork(
            spec=spec,
            n_records=1_000_000,
            n_trees=n_trees,
            max_depth=6,
            mean_path_len=6.0,
            sum_path_len=6.0 * 1_000_000 * n_trees,
            path_len_cv=0.0,
            mean_tree_nodes=100.0,
            table_bytes_total=800.0 * n_trees,
        )

    def test_latency_flat_beyond_one_chip(self, executor):
        engine = executor.model("booster")
        t1 = engine.inference_seconds(self.make_work(executor, 3200))
        t2 = engine.inference_seconds(self.make_work(executor, 6400))
        t4 = engine.inference_seconds(self.make_work(executor, 12800))
        # Chips work on the same records concurrently: more trees, same time.
        assert t2 == pytest.approx(t1, rel=0.01)
        assert t4 == pytest.approx(t1, rel=0.01)

    def test_replication_speeds_small_ensembles(self, executor):
        engine = executor.model("booster")
        t500 = engine.inference_seconds(self.make_work(executor, 500))
        t3200 = engine.inference_seconds(self.make_work(executor, 3200))
        assert t500 < t3200  # 6 replicas vs 1

    def test_depth_bound_not_path_bound(self, executor):
        # Booster pays max depth: halving the mean path does not help it.
        engine = executor.model("booster")
        w = self.make_work(executor, 500)
        shallow = self.make_work(executor, 500)
        shallow.mean_path_len = 3.0
        shallow.sum_path_len /= 2
        assert engine.inference_seconds(shallow) == pytest.approx(
            engine.inference_seconds(w)
        )


class TestWideFieldBytes:
    """Fields above 256 bins store 2-byte codes; layouts must account it."""

    def test_allstate_mixed_element_widths(self):
        spec = dataset_spec("allstate", n_records=256)
        layout = RecordLayout(spec)
        assert set(np.unique(layout.field_bytes)) == {1, 2}
        assert layout.record_bytes > spec.n_fields  # some 2-byte fields

    def test_column_gather_handles_mixed_widths(self):
        spec = dataset_spec("allstate", n_records=4096)
        layout = RecordLayout(spec)
        wide = int(np.argmax(layout.field_bytes))
        narrow = int(np.argmin(layout.field_bytes))
        b_wide = layout.column_bytes_gather(wide, 4096, 4096)
        b_narrow = layout.column_bytes_gather(narrow, 4096, 4096)
        assert b_wide == pytest.approx(2 * b_narrow, rel=0.05)
