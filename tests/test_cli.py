"""Tests for the command-line interface (repro.cli) and artifact builders."""

import pytest

from repro.cli import build_parser, main
from repro.sim.artifacts import ARTIFACTS, build, build_all


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(["train", "higgs", "--trees", "3", "--level-wise"])
        assert args.command == "train"
        assert args.dataset == "higgs"
        assert args.trees == 3
        assert args.level_wise

    def test_compare_args(self):
        args = build_parser().parse_args(
            ["compare", "flight", "--scale", "10", "--systems", "booster"]
        )
        assert args.scale == 10.0
        assert args.systems == ["booster"]

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "mnist"])

    def test_figures_defaults_empty(self):
        args = build_parser().parse_args(["figures"])
        assert args.names == []


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("iot", "higgs", "allstate", "mq2008", "flight"):
            assert name in out

    def test_train(self, capsys):
        assert main(["train", "flight", "--trees", "2", "--records", "800"]) == 0
        out = capsys.readouterr().out
        assert "training summary: flight" in out
        assert "final loss" in out

    def test_train_level_wise(self, capsys):
        assert main(["train", "flight", "--trees", "2", "--records", "800", "--level-wise"]) == 0
        assert "level" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "mq2008", "--trees", "2", "--systems", "ideal-32-core", "booster"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "booster" in out and "speedup" in out

    def test_inference(self, capsys):
        assert main(["inference", "mq2008", "--trees", "2"]) == 0
        assert "batch inference" in capsys.readouterr().out

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "fig99", "--trees", "2"]) == 2

    def test_figures_single(self, capsys):
        assert main(["figures", "table5", "--trees", "2"]) == 0
        out = capsys.readouterr().out
        assert "0.71" in out and "2.64" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--dataset", "mq2008", "--trees", "2"]) == 0
        assert "3200" in capsys.readouterr().out

    def test_sweep_axes_serial_and_warm_rerun(self, capsys, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        argv = [
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "max_depth=2,3",
            "--systems", "ideal-32-core", "booster",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 scenarios)" in out
        assert out.count("[trained]") == 2
        # Identical sweep again: timing results replayed from the result
        # store -- zero retraining AND zero re-simulation.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[stored]") == 2
        assert "[trained]" not in out

    def test_sweep_duplicate_axis_values_keep_rows(self, capsys, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        assert main([
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "seed=7,7",
            "--systems", "ideal-32-core", "booster",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 scenarios)" in out

    def _isolate_cache(self, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)

    SWEEP_ARGV = [
        "sweep",
        "--trees", "2",
        "--serial",
        "--dataset", "mq2008",
        "--axis", "max_depth=2,3",
        "--systems", "ideal-32-core", "booster",
    ]

    #: Appended to SWEEP_ARGV for serving-mode sweeps (short horizon so the
    #: generated arrival traces stay small).
    SERVE_ARGV = ["--serve", "--qps", "150", "--serve-duration", "1.0"]

    def test_sweep_out_writes_jsonl_manifest(self, capsys, monkeypatch, tmp_path):
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "sweeps" / "m.jsonl"
        assert main(self.SWEEP_ARGV + ["--out", str(manifest)]) == 0
        lines = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert len(lines) == 2
        assert all(l["error"] is None for l in lines)
        assert all(l["comparison"]["systems"]["booster"]["total"] > 0 for l in lines)
        assert {l["scenario"]["train"]["max_depth"] for l in lines} == {2, 3}

    def test_sweep_resume_runs_only_missing(self, capsys, monkeypatch, tmp_path):
        """Interrupt-and-resume: the missing scenario is re-executed with
        zero training and zero simulation (replayed from the result store)."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        capsys.readouterr()
        lines = manifest.read_text().splitlines()
        manifest.write_text(lines[0] + "\n")  # simulate an interrupted run

        def boom(*a, **k):
            raise AssertionError("resumed run retrained or re-simulated")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        monkeypatch.setattr("repro.sim.executor.Executor.from_scenario", boom)
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 1/2 scenarios already in" in out
        assert out.count("[stored]") == 1
        assert "resumed" in out  # the manifest-served row's provenance
        recovered = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert len(recovered) == 2
        assert recovered[1]["stored"] is True and recovered[1]["error"] is None

    def test_sweep_failure_streams_error_and_resume_retries(
        self, capsys, monkeypatch, tmp_path
    ):
        """A failing scenario streams a structured error line (exit code 1)
        without aborting the sweep; --resume re-runs only the failed one."""
        import json

        from repro.gbdt import train as real_train

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]

        def flaky(data, params):
            if params.max_depth == 3:
                raise RuntimeError("injected trainer fault")
            return real_train(data, params)

        monkeypatch.setattr("repro.experiments.pipeline.train", flaky)
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out and "injected trainer fault" in captured.out
        assert "1 scenario(s) failed" in captured.err
        lines = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert len(lines) == 2  # the good scenario still completed + streamed
        assert sorted(l["error"] is None for l in lines) == [False, True]

        # Heal the trainer; resume re-runs exactly the failed scenario.
        monkeypatch.setattr("repro.experiments.pipeline.train", real_train)
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 1/2 scenarios already in" in out
        lines = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert len(lines) == 3  # appended, not rewritten
        assert lines[-1]["error"] is None
        assert lines[-1]["scenario"]["train"]["max_depth"] == 3

    def test_sweep_resume_requires_out(self, capsys):
        assert main(["sweep", "--axis", "seed=1", "--resume", "--trees", "2"]) == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_sweep_resume_skips_stale_sim_fingerprint_lines(
        self, capsys, monkeypatch, tmp_path
    ):
        """Manifest lines recorded under different simulation source must
        not be replayed as current results: they re-run instead."""
        import repro.experiments.cache as cache_mod

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        capsys.readouterr()
        # Pretend the simulation source changed since the manifest was
        # written (also invalidates the result store, so everything re-runs).
        monkeypatch.setattr(cache_mod, "_SIM_FINGERPRINT", "feedfacefeedface")
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume:" not in out  # nothing was considered resumable
        assert out.count("[cache hit]") == 2  # re-simulated, training cached

    def test_sweep_out_requires_axes(self, capsys, tmp_path):
        assert main(["sweep", "--trees", "2", "--out", str(tmp_path / "m.jsonl")]) == 2
        assert "apply to axis sweeps" in capsys.readouterr().err

    def test_sweep_shard_requires_axes(self, capsys):
        assert main(["sweep", "--trees", "2", "--shard", "1/2"]) == 2
        assert "apply to axis sweeps" in capsys.readouterr().err

    def test_sweep_inference_requires_axes(self, capsys):
        assert main(["sweep", "--trees", "2", "--inference"]) == 2
        assert "apply to axis sweeps" in capsys.readouterr().err

    def test_sweep_resume_rejects_refresh(self, capsys, tmp_path):
        """--refresh forces recomputation, --resume skips completed work:
        accepting both would silently replay the manifest (stale timings)."""
        argv = self.SWEEP_ARGV + [
            "--out", str(tmp_path / "m.jsonl"), "--resume", "--refresh"
        ]
        assert main(argv) == 2
        assert "contradictory" in capsys.readouterr().err

    def test_sweep_resume_terminates_partial_manifest_line(
        self, capsys, monkeypatch, tmp_path
    ):
        """A run killed mid-write leaves a final line without a newline; the
        appended resume lines must not fuse with that garbage."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        capsys.readouterr()
        lines = manifest.read_text().splitlines()
        # First line intact, second line cut mid-JSON with no trailing newline.
        manifest.write_text(lines[0] + "\n" + lines[1][:40])
        assert main(argv + ["--resume"]) == 0
        parsed = []
        for line in manifest.read_text().splitlines():
            try:
                parsed.append(json.loads(line))
            except ValueError:
                continue  # the tolerated partial-line garbage
        assert len(parsed) == 2  # original + appended, none fused
        assert parsed[-1]["error"] is None
        assert parsed[-1]["scenario"]["train"]["max_depth"] == 3

    def _tripwire_runs(self, monkeypatch):
        """Fail the test if anything trains or simulates from here on."""

        def boom(*a, **k):
            raise AssertionError("retrained or re-simulated")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        monkeypatch.setattr("repro.sim.executor.Executor.from_scenario", boom)

    def test_sweep_shard_merge_report_equals_unsharded(
        self, capsys, monkeypatch, tmp_path
    ):
        """The acceptance criterion: --shard 1/2 + --shard 2/2 + merge yields
        a manifest and report identical (up to line order) to the unsharded
        sweep, with zero retraining on merge/report."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        full = tmp_path / "full.jsonl"
        s1, s2 = tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"
        merged = tmp_path / "merged.jsonl"
        assert main(self.SWEEP_ARGV + ["--out", str(full)]) == 0
        assert main(self.SWEEP_ARGV + ["--shard", "1/2", "--out", str(s1)]) == 0
        assert main(self.SWEEP_ARGV + ["--shard", "2/2", "--out", str(s2)]) == 0
        out = capsys.readouterr().out
        assert "(shard 1/2 of 2)" in out and "(shard 2/2 of 2)" in out

        def by_key(path):
            return {
                json.loads(l)["cache_key"]: json.loads(l)
                for l in path.read_text().splitlines()
            }

        # The shards are a disjoint cover of the full sweep.
        shard_lines = len(s1.read_text().splitlines()) + len(
            s2.read_text().splitlines()
        )
        assert shard_lines == 2
        assert set(by_key(s1)) | set(by_key(s2)) == set(by_key(full))

        # Merge and report are pure file work: no training, no simulation.
        self._tripwire_runs(monkeypatch)
        assert main(["merge", str(merged), str(s1), str(s2)]) == 0
        full_lines, merged_lines = by_key(full), by_key(merged)
        assert set(merged_lines) == set(full_lines)
        for key, line in merged_lines.items():
            assert line["error"] is None
            assert line["scenario"] == full_lines[key]["scenario"]
            assert line["comparison"] == full_lines[key]["comparison"]
        assert main(["report", "--from-manifest", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 scenarios" in out
        assert "max_depth" in out  # the varying axis was inferred

    def test_sweep_resume_skips_alias_respelled_manifest(
        self, capsys, monkeypatch, tmp_path
    ):
        """Regression: a manifest written by a `trees=` sweep must fully
        resume an `n_trees=` invocation of the same sweep (axis aliases
        canonicalize at parse time; scenario keys hash content)."""
        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        base = [
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--systems", "ideal-32-core", "booster",
            "--out", str(manifest),
        ]
        assert main(base + ["--axis", "trees=3,4"]) == 0
        out = capsys.readouterr().out
        assert "axes n_trees" in out  # canonical label, not the raw alias
        self._tripwire_runs(monkeypatch)
        assert main(base + ["--axis", "n_trees=3,4", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 2/2 scenarios already in" in out

    def test_sweep_bad_shard_spec(self, capsys):
        for spec in ("3/2", "0/2", "x/2", "2"):
            assert main(["sweep", "--axis", "seed=1", "--shard", spec, "--trees", "2"]) == 2
            assert "bad shard spec" in capsys.readouterr().err

    def test_merge_prefers_success_over_error(self, capsys, monkeypatch, tmp_path):
        import json

        from repro.gbdt import train as real_train

        self._isolate_cache(monkeypatch, tmp_path)
        broken = tmp_path / "broken.jsonl"
        healed = tmp_path / "healed.jsonl"
        merged = tmp_path / "merged.jsonl"

        def flaky(data, params):
            if params.max_depth == 3:
                raise RuntimeError("injected trainer fault")
            return real_train(data, params)

        monkeypatch.setattr("repro.experiments.pipeline.train", flaky)
        assert main(self.SWEEP_ARGV + ["--out", str(broken)]) == 1
        monkeypatch.setattr("repro.experiments.pipeline.train", real_train)
        assert main(self.SWEEP_ARGV + ["--out", str(healed)]) == 0
        capsys.readouterr()
        # Overlapping manifests: the failed line loses to the success.
        assert main(["merge", str(merged), str(broken), str(healed)]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios (2 ok, 0 failed" in out
        assert "2 duplicate line(s) dropped" in out  # collapsed, not lost
        lines = [json.loads(l) for l in merged.read_text().splitlines()]
        assert len(lines) == 2
        assert all(l["error"] is None for l in lines)

    def test_report_dedupes_healed_resumed_manifest(
        self, capsys, monkeypatch, tmp_path
    ):
        """A --resume run appends the healed line after the error line it
        supersedes; report must render one (freshest) row per scenario and
        not count the healed failure."""
        from repro.gbdt import train as real_train

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]

        def flaky(data, params):
            if params.max_depth == 3:
                raise RuntimeError("injected trainer fault")
            return real_train(data, params)

        monkeypatch.setattr("repro.experiments.pipeline.train", flaky)
        assert main(argv) == 1
        monkeypatch.setattr("repro.experiments.pipeline.train", real_train)
        assert main(argv + ["--resume"]) == 0
        assert len(manifest.read_text().splitlines()) == 3  # err + ok + ok
        capsys.readouterr()
        assert main(["report", "--from-manifest", str(manifest)]) == 0
        captured = capsys.readouterr()
        assert "scenario sweep (2 scenarios" in captured.out
        assert "error" not in captured.out.split("training")[-1]
        assert "scenario(s) failed" not in captured.err
        assert "collapsed 1 superseded" in captured.err

    def test_merge_accepts_manifest_resumed_after_sim_edit(
        self, capsys, monkeypatch, tmp_path
    ):
        """A shard resumed after a simulator edit appends fresh lines for
        every scenario; the stale lines are superseded, so the manifest
        must merge cleanly (uniformity is judged on the winners)."""
        import json

        import repro.experiments.cache as cache_mod

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        # The simulation source "changes": every old line becomes stale,
        # resume re-runs everything and appends fresh lines.
        monkeypatch.setattr(cache_mod, "_SIM_FINGERPRINT", "feedfacefeedface")
        assert main(argv + ["--resume"]) == 0
        assert len(manifest.read_text().splitlines()) == 4
        capsys.readouterr()
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(merged), str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios (2 ok, 0 failed; 2 duplicate line(s) dropped" in out
        lines = [json.loads(l) for l in merged.read_text().splitlines()]
        assert len(lines) == 2
        assert all(l["sim_code"] == "feedfacefeedface" for l in lines)

    def test_merge_rejects_mixed_sim_code(self, capsys, monkeypatch, tmp_path):
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        m1 = tmp_path / "m1.jsonl"
        assert main(self.SWEEP_ARGV + ["--out", str(m1)]) == 0
        lines = m1.read_text().splitlines()
        stale = json.loads(lines[1])
        stale["sim_code"] = "feedfacefeedface"  # recorded under other source
        m2 = tmp_path / "m2.jsonl"
        m2.write_text(json.dumps(stale) + "\n")
        m1.write_text(lines[0] + "\n")
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "out.jsonl"), str(m1), str(m2)]) == 2
        assert "sim_code" in capsys.readouterr().err
        assert not (tmp_path / "out.jsonl").exists()

    def test_merge_accepts_mixed_kinds(self, capsys, monkeypatch, tmp_path):
        """Compare/inference/serving manifests of one sweep merge side by
        side: lines dedupe per (kind, cache_key), so the kinds never
        collapse into each other, and `repro report` renders one table
        per kind from the merged manifest."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        cmp_m = tmp_path / "cmp.jsonl"
        inf_m = tmp_path / "inf.jsonl"
        srv_m = tmp_path / "srv.jsonl"
        assert main(self.SWEEP_ARGV + ["--out", str(cmp_m)]) == 0
        assert main(self.SWEEP_ARGV + ["--inference", "--out", str(inf_m)]) == 0
        assert main(self.SWEEP_ARGV + self.SERVE_ARGV + ["--out", str(srv_m)]) == 0
        capsys.readouterr()
        out_m = tmp_path / "out.jsonl"
        assert main(["merge", str(out_m), str(cmp_m), str(inf_m), str(srv_m)]) == 0
        assert "kinds: compare+inference+serving" in capsys.readouterr().out
        lines = [json.loads(x) for x in out_m.read_text().splitlines()]
        assert {d["kind"] for d in lines} == {"compare", "inference", "serving"}
        # Every line of every input survives: the kinds are different
        # measurements of the same scenarios, not supersessions.
        assert len(lines) == 6
        capsys.readouterr()
        assert main(["report", "--from-manifest", str(out_m)]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep" in out
        assert "inference sweep" in out
        assert "serving sweep" in out
        assert "geomean booster speedup" in out

    def test_merge_missing_input(self, capsys, tmp_path):
        assert main(["merge", str(tmp_path / "out.jsonl"), str(tmp_path / "no.jsonl")]) == 2
        assert "no such manifest" in capsys.readouterr().err

    def test_report_missing_manifest(self, capsys, tmp_path):
        assert main(["report", "--from-manifest", str(tmp_path / "no.jsonl")]) == 2
        assert "no such manifest" in capsys.readouterr().err

    def test_sweep_inference_mode_stores_and_replays(
        self, capsys, monkeypatch, tmp_path
    ):
        """Inference sweeps write `kind: inference` manifests and replay
        from the ResultStore on identical re-runs (the acceptance
        criterion's inference half)."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "inf.jsonl"
        assert main(self.SWEEP_ARGV + ["--inference", "--out", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "inference sweep (2 scenarios)" in out
        lines = [json.loads(l) for l in manifest.read_text().splitlines()]
        assert len(lines) == 2
        assert all(l["kind"] == "inference" and l["comparison"] is None for l in lines)
        assert all(l["inference"]["seconds"]["booster"] > 0 for l in lines)
        self._tripwire_runs(monkeypatch)
        assert main(self.SWEEP_ARGV + ["--inference"]) == 0
        out = capsys.readouterr().out
        assert out.count("[stored]") == 2

    def test_compare_manifest_does_not_resume_inference_sweep(
        self, capsys, monkeypatch, tmp_path
    ):
        """A compare manifest must not satisfy --resume for an inference
        sweep: the kinds measure different things."""
        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "m.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--inference", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume:" not in out  # nothing in the manifest was resumable

    def test_sweep_serving_mode_stores_and_replays(self, capsys, monkeypatch, tmp_path):
        """Serving sweeps write `kind: serving` manifests with latency-tail
        payloads and replay from the ResultStore's `v` namespace on
        identical re-runs, with zero retraining and zero re-simulation."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "srv.jsonl"
        argv = self.SWEEP_ARGV + self.SERVE_ARGV
        assert main(argv + ["--out", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "serving sweep (2 scenarios)" in out
        lines = [json.loads(x) for x in manifest.read_text().splitlines()]
        assert len(lines) == 2
        assert all(d["kind"] == "serving" and d["comparison"] is None for d in lines)
        for d in lines:
            stats = d["serving"]["systems"]["booster"]
            assert stats["n_requests"] > 0
            assert stats["p99_ms"] >= stats["p50_ms"] > 0
            assert stats["sustained_qps"] > 0
        self._tripwire_runs(monkeypatch)
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[stored]") == 2

    def test_serving_axes_require_serve_flag(self, capsys, monkeypatch, tmp_path):
        """A serving knob axis on a compare sweep is an error, not a
        silently key-changing no-op."""
        self._isolate_cache(monkeypatch, tmp_path)
        assert main(self.SWEEP_ARGV + ["--axis", "policy=batch,timeout"]) == 2
        err = capsys.readouterr().err
        assert "serving knobs" in err and "--serve" in err

    def test_serve_and_inference_conflict(self, capsys, monkeypatch, tmp_path):
        self._isolate_cache(monkeypatch, tmp_path)
        assert main(self.SWEEP_ARGV + self.SERVE_ARGV + ["--inference"]) == 2
        assert "pick one" in capsys.readouterr().err

    def test_resume_refuses_unknown_kind_manifest(self, capsys, monkeypatch, tmp_path):
        """Forward compatibility fails loudly: a manifest holding rows of a
        sweep kind this version does not know (written by a newer repro)
        must not be silently dropped and re-run under --resume."""
        import json

        from repro.experiments import ScenarioSpec

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "future.jsonl"
        line = {
            "kind": "holographic",
            "scenario": ScenarioSpec(dataset="mq2008").to_dict(),
            "error": None,
        }
        manifest.write_text(json.dumps(line) + "\n")
        capsys.readouterr()
        assert main(self.SWEEP_ARGV + ["--out", str(manifest), "--resume"]) == 2
        err = capsys.readouterr().err
        assert "unknown sweep kind 'holographic'" in err

    def test_report_all_failed_manifest_renders_without_geomean(
        self, capsys, monkeypatch, tmp_path
    ):
        """A manifest whose surviving rows all failed still renders a
        table; the geomean summary is simply omitted (no geomean-of-empty
        traceback)."""
        import json

        from repro.experiments import ScenarioSpec

        manifest = tmp_path / "failed.jsonl"
        line = {
            "kind": "compare",
            "scenario": ScenarioSpec(dataset="mq2008").to_dict(),
            "comparison": None,
            "error": "RuntimeError: boom",
            "worker_pid": 1,
            "cache_hit": False,
        }
        manifest.write_text(json.dumps(line) + "\n")
        assert main(["report", "--from-manifest", str(manifest)]) == 0
        captured = capsys.readouterr()
        assert "scenario sweep (1 scenarios" in captured.out
        assert "geomean" not in captured.out
        assert "1 scenario(s) failed" in captured.err

    def test_cache_export_import_seeds_cold_host(self, capsys, monkeypatch, tmp_path):
        """A warm host's exported entries let a cold shard run the same
        sweep with zero retraining and zero simulation."""
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        assert main(self.SWEEP_ARGV) == 0
        tar = tmp_path / "warm.tar"
        assert main([
            "cache", "export", str(tar),
            "--trees", "2",
            "--dataset", "mq2008",
            "--axis", "max_depth=2,3",
            "--systems", "ideal-32-core", "booster",
        ]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cold"))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        assert main(["cache", "import", str(tar)]) == 0
        capsys.readouterr()
        self._tripwire_runs(monkeypatch)
        assert main(self.SWEEP_ARGV) == 0
        out = capsys.readouterr().out
        assert out.count("[stored]") == 2

    def test_old_manifest_without_durations_resumes_merges_reports(
        self, capsys, monkeypatch, tmp_path
    ):
        """A manifest written before wall times existed (no duration_s
        field) must still resume completely, merge cleanly, and report --
        with `-` duration cells and no wall-time total."""
        import json

        self._isolate_cache(monkeypatch, tmp_path)
        manifest = tmp_path / "old.jsonl"
        argv = self.SWEEP_ARGV + ["--out", str(manifest)]
        assert main(argv) == 0
        lines = []
        for line in manifest.read_text().splitlines():
            d = json.loads(line)
            del d["duration_s"]  # age the manifest to the pre-duration format
            lines.append(json.dumps(d))
        manifest.write_text("".join(l + "\n" for l in lines))
        capsys.readouterr()

        self._tripwire_runs(monkeypatch)
        assert main(argv + ["--resume"]) == 0
        assert "resume: 2/2 scenarios already in" in capsys.readouterr().out
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(merged), str(manifest)]) == 0
        capsys.readouterr()
        assert main(["report", "--from-manifest", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "wall (s)" in out
        assert "recorded wall time" not in out  # nothing was recorded

    def test_cache_import_rejects_escaping_archive(
        self, capsys, monkeypatch, tmp_path
    ):
        """`repro cache import` of a crafted archive whose members carry
        path components exits 2 without writing anything."""
        import io
        import tarfile

        import repro.experiments.cache as cache_mod

        store = tmp_path / "store"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(store))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        evil = tmp_path / "evil.tar"
        with tarfile.open(evil, "w") as tar:
            info = tarfile.TarInfo("../escape.pkl")
            info.size = 7
            tar.addfile(info, io.BytesIO(b"payload"))
        assert main(["cache", "import", str(evil)]) == 2
        assert "refusing to import" in capsys.readouterr().err
        assert not (tmp_path / "escape.pkl").exists()
        assert list(store.iterdir()) == []

    def test_cache_export_unfiltered_and_bad_axis(self, capsys, monkeypatch, tmp_path):
        import tarfile

        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        assert main(self.SWEEP_ARGV) == 0
        capsys.readouterr()
        tar = tmp_path / "all.tar"
        assert main(["cache", "export", str(tar)]) == 0
        with tarfile.open(tar) as t:
            names = t.getnames()
        # One trained profile (max_depth is a train axis: two artifacts)
        # plus two stored results.
        assert sum(n.endswith(".pkl") for n in names) == 2
        assert sum(n.endswith(".json") for n in names) == 2
        assert main(["cache", "export", str(tar), "--axis", "bogus=1"]) == 2
        assert "unknown sweep axis" in capsys.readouterr().err

    def test_sweep_bad_axis(self, capsys):
        assert main(["sweep", "--axis", "bogus=1", "--trees", "2"]) == 2
        assert "unknown sweep axis" in capsys.readouterr().err

    def test_sweep_unknown_dataset_value(self, capsys):
        assert main(["sweep", "--axis", "dataset=bogus", "--trees", "2"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_sweep_empty_axis_values(self, capsys):
        assert main(["sweep", "--axis", "seed=,", "--trees", "2"]) == 2
        assert "bad axis spec" in capsys.readouterr().err

    def test_sweep_unknown_system(self, capsys):
        code = main(["sweep", "--axis", "seed=1", "--systems", "boster", "--trees", "2"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err

    def test_sweep_non_numeric_axis_value(self, capsys):
        assert main(["sweep", "--axis", "pcie_gbps=fast", "--trees", "2"]) == 2
        assert "needs a numeric value" in capsys.readouterr().err


class TestArtifacts:
    def test_registry_complete(self):
        expected = {"table3", "table4", "table5", "table6"} | {
            f"fig{i}" for i in range(6, 14)
        }
        assert set(ARTIFACTS) == expected

    def test_unknown_raises(self, executor):
        with pytest.raises(KeyError, match="unknown artifact"):
            build("fig1", executor)

    def test_every_artifact_renders(self, executor):
        for name in ARTIFACTS:
            text = build(name, executor)
            assert len(text.splitlines()) >= 3, name

    def test_build_all_joins(self, executor):
        text = build_all(executor, ["table5", "table6"])
        assert "Table V" in text and "Table VI" in text


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert main(["validate", "--trees", "3"]) == 0
        out = capsys.readouterr().out
        assert "claim checklist" in out
        assert "FAIL" not in out
