"""Tests for the command-line interface (repro.cli) and artifact builders."""

import pytest

from repro.cli import build_parser, main
from repro.sim.artifacts import ARTIFACTS, build, build_all


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(["train", "higgs", "--trees", "3", "--level-wise"])
        assert args.command == "train"
        assert args.dataset == "higgs"
        assert args.trees == 3
        assert args.level_wise

    def test_compare_args(self):
        args = build_parser().parse_args(
            ["compare", "flight", "--scale", "10", "--systems", "booster"]
        )
        assert args.scale == 10.0
        assert args.systems == ["booster"]

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "mnist"])

    def test_figures_defaults_empty(self):
        args = build_parser().parse_args(["figures"])
        assert args.names == []


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("iot", "higgs", "allstate", "mq2008", "flight"):
            assert name in out

    def test_train(self, capsys):
        assert main(["train", "flight", "--trees", "2", "--records", "800"]) == 0
        out = capsys.readouterr().out
        assert "training summary: flight" in out
        assert "final loss" in out

    def test_train_level_wise(self, capsys):
        assert main(["train", "flight", "--trees", "2", "--records", "800", "--level-wise"]) == 0
        assert "level" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "mq2008", "--trees", "2", "--systems", "ideal-32-core", "booster"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "booster" in out and "speedup" in out

    def test_inference(self, capsys):
        assert main(["inference", "mq2008", "--trees", "2"]) == 0
        assert "batch inference" in capsys.readouterr().out

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "fig99", "--trees", "2"]) == 2

    def test_figures_single(self, capsys):
        assert main(["figures", "table5", "--trees", "2"]) == 0
        out = capsys.readouterr().out
        assert "0.71" in out and "2.64" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--dataset", "mq2008", "--trees", "2"]) == 0
        assert "3200" in capsys.readouterr().out

    def test_sweep_axes_serial_and_warm_rerun(self, capsys, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        argv = [
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "max_depth=2,3",
            "--systems", "ideal-32-core", "booster",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 scenarios)" in out
        assert out.count("[trained]") == 2
        # Identical sweep again: served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[cache hit]") == 2
        assert "[trained]" not in out

    def test_sweep_duplicate_axis_values_keep_rows(self, capsys, monkeypatch, tmp_path):
        import repro.experiments.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        assert main([
            "sweep",
            "--trees", "2",
            "--serial",
            "--dataset", "mq2008",
            "--axis", "seed=7,7",
            "--systems", "ideal-32-core", "booster",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 scenarios)" in out

    def test_sweep_bad_axis(self, capsys):
        assert main(["sweep", "--axis", "bogus=1", "--trees", "2"]) == 2
        assert "unknown sweep axis" in capsys.readouterr().err

    def test_sweep_unknown_dataset_value(self, capsys):
        assert main(["sweep", "--axis", "dataset=bogus", "--trees", "2"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_sweep_empty_axis_values(self, capsys):
        assert main(["sweep", "--axis", "seed=,", "--trees", "2"]) == 2
        assert "bad axis spec" in capsys.readouterr().err

    def test_sweep_unknown_system(self, capsys):
        code = main(["sweep", "--axis", "seed=1", "--systems", "boster", "--trees", "2"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err

    def test_sweep_non_numeric_axis_value(self, capsys):
        assert main(["sweep", "--axis", "pcie_gbps=fast", "--trees", "2"]) == 2
        assert "needs a numeric value" in capsys.readouterr().err


class TestArtifacts:
    def test_registry_complete(self):
        expected = {"table3", "table4", "table5", "table6"} | {
            f"fig{i}" for i in range(6, 14)
        }
        assert set(ARTIFACTS) == expected

    def test_unknown_raises(self, executor):
        with pytest.raises(KeyError, match="unknown artifact"):
            build("fig1", executor)

    def test_every_artifact_renders(self, executor):
        for name in ARTIFACTS:
            text = build(name, executor)
            assert len(text.splitlines()) >= 3, name

    def test_build_all_joins(self, executor):
        text = build_all(executor, ["table5", "table6"])
        assert "Table V" in text and "Table VI" in text


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert main(["validate", "--trees", "3"]) == 0
        out = capsys.readouterr().out
        assert "claim checklist" in out
        assert "FAIL" not in out
