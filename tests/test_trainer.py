"""Tests for the instrumented GBDT trainer (repro.gbdt.trainer)."""

import numpy as np
import pytest

from repro.datasets import TaskKind, generate
from repro.gbdt import TrainParams, train
from tests.conftest import small_spec_factory


class TestTrainingInvariants:
    def test_loss_monotonically_decreases(self, trained):
        losses = trained.losses
        assert np.all(np.diff(losses) <= 1e-12)

    def test_tree_count(self, trained):
        assert len(trained.trees) == 6
        assert trained.profile.n_trees == 6

    def test_trees_validate(self, trained):
        for t in trained.trees:
            t.validate()

    def test_depth_limit_respected(self, trained):
        for t in trained.trees:
            assert t.max_depth <= trained.params.max_depth

    def test_predictions_improve_over_base(self, trained, small_data):
        p = trained.predict(small_data.codes)
        acc = np.mean((p > 0.5) == (small_data.y > 0.5))
        assert acc > 0.8  # separable synthetic data must be learnable

    def test_deterministic(self, small_data):
        a = train(small_data, TrainParams(n_trees=2))
        b = train(small_data, TrainParams(n_trees=2))
        assert np.allclose(a.losses, b.losses)
        assert a.profile.binned_records() == b.profile.binned_records()

    def test_regression_task(self):
        data = generate(small_spec_factory(task=TaskKind.REGRESSION, n_records=500))
        res = train(data, TrainParams(n_trees=3))
        assert np.all(np.diff(res.losses) <= 1e-12)
        # Margin predictions should correlate strongly with targets.
        pred = res.predict(data.codes)
        assert np.corrcoef(pred, data.y)[0, 1] > 0.7


class TestWorkAccounting:
    def test_root_binned_every_tree(self, trained, small_data):
        n = small_data.n_records
        for tw in trained.profile.trees:
            root_mask = tw.depth == 0
            assert tw.n_reach[root_mask][0] == n
            assert tw.n_binned[root_mask][0] == n  # root is always binned

    def test_children_reach_sums_to_parent_partition(self, trained, small_data):
        # Conservation: records reaching depth d+1 == records partitioned at d.
        for tw in trained.profile.trees:
            for d in range(tw.max_depth):
                partitioned = tw.n_reach[(tw.depth == d) & tw.is_split].sum()
                reached_next = tw.n_reach[tw.depth == d + 1].sum()
                assert partitioned == reached_next

    def test_subtraction_trick_bins_smaller_child(self, trained):
        # Explicit binning below the root must be at most half the records
        # partitioned at the parent level (only the smaller child binned).
        for tw in trained.profile.trees:
            for d in range(1, tw.max_depth + 1):
                level = tw.depth == d
                binned = tw.n_binned[level].sum()
                parent_part = tw.n_reach[(tw.depth == d - 1) & tw.is_split].sum()
                assert binned <= parent_part / 2 + 1e-9

    def test_max_depth_nodes_never_binned(self, trained):
        for tw in trained.profile.trees:
            deepest = tw.depth == 6
            if deepest.any():
                assert tw.n_binned[deepest].sum() == 0

    def test_split_evaluations_subset_of_nodes(self, trained):
        p = trained.profile
        total_nodes = sum(t.n_nodes for t in p.trees)
        assert 0 < p.step2_evaluations() <= total_nodes

    def test_split_fields_valid(self, trained, small_data):
        for tw in trained.profile.trees:
            used = tw.split_field[tw.is_split]
            assert np.all(used >= 0)
            assert np.all(used < small_data.n_fields)
            assert np.all(tw.split_field[~tw.is_split] == -1)

    def test_traversal_hops_match_tree_predictions(self, trained, small_data):
        for tree, tw in zip(trained.trees, trained.profile.trees):
            _, depths = tree.predict(small_data.codes, return_depth=True)
            assert tw.sum_path_len == pytest.approx(depths.sum())
            assert tw.max_path_len == depths.max()

    def test_relevant_fields_match_trees(self, trained):
        for tree, tw in zip(trained.trees, trained.profile.trees):
            assert np.array_equal(tw.relevant_fields, tree.relevant_fields())

    def test_root_bin_counts_recorded(self, trained, small_data):
        counts = trained.profile.root_bin_counts
        assert counts is not None
        assert counts.shape == (small_data.spec.n_total_bins,)
        # Density property at the root: fields x records total updates.
        assert counts.sum() == pytest.approx(
            small_data.n_records * small_data.n_fields
        )

    def test_smaller_child_fraction_bounded(self, trained):
        frac = trained.profile.smaller_child_fraction_mean
        assert 0.0 < frac <= 0.5

    def test_wall_time_recorded(self, trained):
        assert trained.profile.train_seconds_wall > 0


class TestParams:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TrainParams(n_trees=0)
        with pytest.raises(ValueError):
            TrainParams(max_depth=0)
        with pytest.raises(ValueError):
            TrainParams(learning_rate=0.0)

    def test_max_depth_one_gives_stumps(self, small_data):
        res = train(small_data, TrainParams(n_trees=2, max_depth=1))
        for t in res.trees:
            assert t.max_depth <= 1
            assert t.n_nodes <= 3

    def test_predict_margin_consistency(self, trained, small_data):
        margin = trained.predict_margin(small_data.codes)
        manual = np.full(small_data.n_records, trained.base_margin)
        for t in trained.trees:
            manual += t.predict(small_data.codes)
        assert np.allclose(margin, manual)
