"""Test package for the Booster reproduction."""
