"""Tests for array-encoded trees and node tables (repro.gbdt.tree)."""

import numpy as np
import pytest

from repro.datasets import DatasetSpec, FieldKind, FieldSpec
from repro.gbdt import Tree


@pytest.fixture()
def spec():
    return DatasetSpec(
        name="t",
        fields=(
            FieldSpec(name="x", kind=FieldKind.NUMERICAL, n_bins=8),
            FieldSpec(name="c", kind=FieldKind.CATEGORICAL, n_categories=4),
        ),
        n_records=10,
    )


@pytest.fixture()
def stump(spec):
    """Root split on numerical field 0 (bin <= 3 goes left)."""
    t = Tree(spec)
    root = t.add_split(0, split_field=0, threshold_bin=3, is_categorical=False, missing_left=False)
    left = t.add_leaf(1, weight=-1.0)
    right = t.add_leaf(1, weight=2.0)
    t.set_children(root, left, right)
    return t


class TestConstruction:
    def test_counts(self, stump):
        assert stump.n_nodes == 3
        assert stump.n_leaves == 2
        assert stump.max_depth == 1

    def test_validate_passes(self, stump):
        stump.validate()

    def test_validate_catches_half_attached(self, spec):
        t = Tree(spec)
        root = t.add_split(0, 0, 2, False, False)
        leaf = t.add_leaf(1, 0.0)
        t.set_children(root, leaf, -1)
        with pytest.raises(ValueError, match="only one child"):
            t.validate()

    def test_validate_catches_double_parent(self, spec):
        t = Tree(spec)
        a = t.add_split(0, 0, 2, False, False)
        b = t.add_split(1, 0, 1, False, False)
        leaf = t.add_leaf(2, 0.0)
        leaf2 = t.add_leaf(2, 0.0)
        t.set_children(a, b, leaf)
        t.set_children(b, leaf, leaf2)  # `leaf` has two parents
        with pytest.raises(ValueError, match="two parents"):
            t.validate()

    def test_rejects_bad_field(self, spec):
        t = Tree(spec)
        with pytest.raises(ValueError, match="out of range"):
            t.add_split(
                0, split_field=99, threshold_bin=0, is_categorical=False, missing_left=False
            )


class TestPredict:
    def test_numerical_threshold(self, stump):
        codes = np.array([[0, 0], [3, 0], [4, 0], [7, 0]], dtype=np.int64)
        out = stump.predict(codes)
        assert out.tolist() == [-1.0, -1.0, 2.0, 2.0]

    def test_missing_follows_direction(self, spec):
        t = Tree(spec)
        root = t.add_split(0, 0, 3, False, missing_left=True)
        l = t.add_leaf(1, -1.0)
        r = t.add_leaf(1, 2.0)
        t.set_children(root, l, r)
        missing_code = spec.fields[0].missing_bin
        out = t.predict(np.array([[missing_code, 0]], dtype=np.int64))
        assert out[0] == -1.0

    def test_categorical_one_vs_rest(self, spec):
        t = Tree(spec)
        root = t.add_split(
            0, split_field=1, threshold_bin=2, is_categorical=True, missing_left=False
        )
        l = t.add_leaf(1, 10.0)
        r = t.add_leaf(1, -10.0)
        t.set_children(root, l, r)
        codes = np.array([[0, 2], [0, 1], [0, 3]], dtype=np.int64)
        assert t.predict(codes).tolist() == [10.0, -10.0, -10.0]

    def test_depth_counts_interior_hops(self, stump):
        _, depth = stump.predict(np.array([[0, 0]], dtype=np.int64), return_depth=True)
        assert depth[0] == 1

    def test_two_level_tree(self, spec):
        t = Tree(spec)
        root = t.add_split(0, 0, 3, False, False)
        inner = t.add_split(1, 1, 1, True, False)
        leaf_a = t.add_leaf(2, 1.0)
        leaf_b = t.add_leaf(2, 2.0)
        leaf_c = t.add_leaf(1, 3.0)
        t.set_children(root, inner, leaf_c)
        t.set_children(inner, leaf_a, leaf_b)
        t.validate()
        codes = np.array([[0, 1], [0, 2], [9, 0]], dtype=np.int64)
        out, depth = t.predict(codes, return_depth=True)
        assert out.tolist() == [1.0, 2.0, 3.0]
        assert depth.tolist() == [2, 2, 1]

    def test_single_leaf_tree(self, spec):
        t = Tree(spec)
        t.add_leaf(0, 5.0)
        out, depth = t.predict(np.zeros((4, 2), dtype=np.int64), return_depth=True)
        assert np.all(out == 5.0)
        assert np.all(depth == 0)

    def test_go_left_matches_predict(self, stump):
        codes_col = np.array([0, 3, 4, 7, 9], dtype=np.int64)
        left = stump.go_left(codes_col, 0)
        assert left.tolist() == [True, True, False, False, False]


class TestNodeTable:
    def test_relevant_fields_sorted_unique(self, spec):
        t = Tree(spec)
        root = t.add_split(0, 1, 0, True, False)
        inner = t.add_split(1, 0, 3, False, False)
        l1 = t.add_leaf(2, 0.0)
        l2 = t.add_leaf(2, 0.0)
        l3 = t.add_leaf(1, 0.0)
        t.set_children(root, inner, l3)
        t.set_children(inner, l1, l2)
        assert t.relevant_fields().tolist() == [0, 1]

    def test_renumbering(self, spec):
        t = Tree(spec)
        root = t.add_split(0, 1, 0, True, False)  # only field 1 used
        l = t.add_leaf(1, 0.0)
        r = t.add_leaf(1, 0.0)
        t.set_children(root, l, r)
        table = t.node_table()
        assert table.relevant_fields.tolist() == [1]
        assert table.field_renumbered[0] == 0  # original field 1 -> new id 0
        assert table.field_renumbered[1] == -1  # leaves carry no field

    def test_table_bytes(self, stump):
        table = stump.node_table()
        assert table.table_bytes() == 3 * 8

    def test_leaf_depths(self, stump):
        assert sorted(stump.leaf_depths().tolist()) == [1, 1]
