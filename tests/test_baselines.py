"""Tests for the CPU/GPU/IR baseline models (repro.baselines)."""

import pytest

from repro.baselines.base import host_step2_seconds
from repro.sim.calibrate import DEFAULT_COSTS


class TestSequential:
    def test_slower_than_multicore(self, executor):
        prof = executor.profile("higgs")
        seq = executor.model("sequential").training_seconds(prof)
        par = executor.model("ideal-32-core").training_seconds(prof)
        assert seq > 10 * par  # near-linear scaling on the parallel steps

    def test_steps135_dominate_sequential(self, paper_comparisons):
        # Fig. 6: steps 1+3+5 are >90% of sequential time for the large sets.
        for name in ("iot", "higgs", "flight"):
            st = paper_comparisons[name].systems["sequential"]
            share = (st.step1 + st.step3 + st.step5) / st.total
            assert share > 0.90

    def test_mq2008_step2_share_largest(self, paper_comparisons):
        # Fig. 6: Mq2008's small dataset gives step 2 its largest share.
        shares = {
            name: cmp.systems["sequential"].step2 / cmp.systems["sequential"].total
            for name, cmp in paper_comparisons.items()
        }
        assert shares["mq2008"] == max(shares.values())


class TestIdealMulticore:
    def test_parallel_steps_scale_by_threads(self, executor):
        prof = executor.profile("higgs")
        seq = executor.model("sequential").training_times(prof)
        par = executor.model("ideal-32-core").training_times(prof)
        assert par.step1 == pytest.approx(seq.step1 / 32, rel=0.05)
        assert par.step5 == pytest.approx(seq.step5 / 32, rel=0.05)

    def test_step2_scales_worse_than_32x(self, executor):
        # Fig. 8: "The 32-core baseline relatively increases Step 2's
        # fraction of time."
        prof = executor.profile("mq2008")
        seq = executor.model("sequential").training_times(prof)
        par = executor.model("ideal-32-core").training_times(prof)
        assert par.step2 > seq.step2 / 32
        assert par.step2 / par.total > seq.step2 / seq.total


class TestIdealGPU:
    def test_speedup_band(self, paper_comparisons):
        # Fig. 7: "Ideal GPU achieves modest speedups between 1.6x and 1.9x"
        for name, cmp in paper_comparisons.items():
            s = cmp.speedup("ideal-gpu")
            assert 1.4 < s < 2.0, (name, s)

    def test_never_doubles_multicore(self, paper_comparisons):
        # 64 lanes vs 32 threads caps the ratio at 2; Amdahl keeps it below.
        for cmp in paper_comparisons.values():
            assert cmp.speedup("ideal-gpu") < 2.0


class TestRealModels:
    def test_ideal_bounds_real_cpu(self, executor):
        for name in executor.all_datasets():
            prof = executor.profile(name)
            ideal = executor.model("ideal-32-core").training_seconds(prof)
            real = executor.model("real-32-core").training_seconds(prof)
            assert real >= ideal  # Fig. 11 property 1

    def test_ideal_bounds_real_gpu(self, executor):
        for name in executor.all_datasets():
            prof = executor.profile(name)
            ideal = executor.model("ideal-gpu").training_seconds(prof)
            real = executor.model("real-gpu").training_seconds(prof)
            assert real >= ideal

    def test_real_gpu_loses_on_irregular_benchmarks(self, executor):
        # Fig. 11: "GPU performance is worse than that of the multicore for
        # two of the five benchmarks (Allstate and Mq2008)."
        losers = []
        for name in executor.all_datasets():
            prof = executor.profile(name)
            gpu = executor.model("real-gpu").training_seconds(prof)
            cpu = executor.model("real-32-core").training_seconds(prof)
            if gpu > cpu:
                losers.append(name)
        assert sorted(losers) == ["allstate", "mq2008"]

    def test_mq2008_fits_llc(self, executor):
        # The real-CPU derate for Mq2008 uses the cache-resident factor.
        model = executor.model("real-32-core")
        assert model._derate(executor.profile("mq2008")) == DEFAULT_COSTS.real_cpu_fit_factor
        assert model._derate(executor.profile("higgs")) == DEFAULT_COSTS.real_cpu_spill_factor


class TestInterRecord:
    def test_published_copy_counts(self, executor):
        # Sec. V-A: "IR can fit 271 copies ... for Higgs and 179 for Mq2008."
        ir = executor.model("inter-record")
        assert ir.copies(executor.profile("higgs")) == 271
        assert ir.copies(executor.profile("mq2008")) == 179

    def test_categorical_benchmarks_few_copies(self, executor):
        # Naive one-hot provisioning blows up the footprint (Sec. V-A:
        # "even one copy does not fit" without flexibility assumptions).
        ir = executor.model("inter-record")
        assert ir.copies(executor.profile("allstate")) <= 3
        assert ir.copies(executor.profile("flight")) <= 16

    def test_modest_speedup_on_numerical(self, paper_comparisons):
        # Fig. 7: IR achieves "some modest speedups over Ideal 32-core".
        s = paper_comparisons["higgs"].speedup("inter-record")
        assert 1.5 < s < 8.0

    def test_ir_well_behind_booster(self, paper_comparisons):
        for cmp in paper_comparisons.values():
            assert cmp.speedup("inter-record") < cmp.speedup("booster")


class TestHostStep2:
    def test_scales_with_copies(self, executor):
        prof = executor.profile("higgs")
        t0 = host_step2_seconds(prof, DEFAULT_COSTS, reduce_copies=0)
        t32 = host_step2_seconds(prof, DEFAULT_COSTS, reduce_copies=32)
        assert t32 > t0

    def test_sequential_variant_slower(self, executor):
        prof = executor.profile("higgs")
        par = host_step2_seconds(prof, DEFAULT_COSTS, 0, parallel=True)
        seq = host_step2_seconds(prof, DEFAULT_COSTS, 0, parallel=False)
        assert seq == pytest.approx(par * DEFAULT_COSTS.step2_parallel)
