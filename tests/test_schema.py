"""Unit tests for dataset schemas (repro.datasets.schema)."""

import pytest

from repro.datasets import (
    DEFAULT_NUMERICAL_BINS,
    DatasetSpec,
    FieldKind,
    FieldSpec,
    TaskKind,
    make_numerical_fields,
)


def num_field(name="x", n_bins=10, **kw):
    return FieldSpec(name=name, kind=FieldKind.NUMERICAL, n_bins=n_bins, **kw)


def cat_field(name="c", n_categories=5, **kw):
    return FieldSpec(name=name, kind=FieldKind.CATEGORICAL, n_categories=n_categories, **kw)


class TestFieldSpec:
    def test_numerical_feature_count_is_one(self):
        assert num_field().n_features == 1

    def test_categorical_feature_count_is_cardinality(self):
        assert cat_field(n_categories=9).n_features == 9

    def test_numerical_value_bins(self):
        assert num_field(n_bins=12).n_value_bins == 12

    def test_categorical_value_bins(self):
        assert cat_field(n_categories=4).n_value_bins == 4

    def test_total_bins_adds_missing_bin(self):
        assert num_field(n_bins=12).n_total_bins == 13
        assert cat_field(n_categories=4).n_total_bins == 5

    def test_missing_bin_is_last(self):
        f = num_field(n_bins=12)
        assert f.missing_bin == 12

    def test_default_numerical_bins_make_one_sram(self):
        # 255 value bins + missing = 256 total = one 2 KB / 8 B SRAM.
        f = FieldSpec(name="x", kind=FieldKind.NUMERICAL)
        assert f.n_bins == DEFAULT_NUMERICAL_BINS == 255
        assert f.n_total_bins == 256

    def test_rejects_tiny_categorical(self):
        with pytest.raises(ValueError, match="categories"):
            cat_field(n_categories=1)

    def test_rejects_tiny_numerical_bins(self):
        with pytest.raises(ValueError, match="bins"):
            num_field(n_bins=1)

    def test_rejects_bad_missing_rate(self):
        with pytest.raises(ValueError, match="missing_rate"):
            num_field(missing_rate=1.0)
        with pytest.raises(ValueError, match="missing_rate"):
            num_field(missing_rate=-0.1)

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError, match="skew"):
            cat_field(skew=-1.0)

    def test_is_categorical_flag(self):
        assert cat_field().is_categorical
        assert not num_field().is_categorical


class TestDatasetSpec:
    def make(self, **kw):
        defaults = dict(
            name="d",
            fields=(num_field("a"), num_field("b"), cat_field("c", 6)),
            n_records=100,
        )
        defaults.update(kw)
        return DatasetSpec(**defaults)

    def test_field_counts(self):
        spec = self.make()
        assert spec.n_fields == 3
        assert spec.n_categorical_fields == 1
        assert spec.n_numerical_fields == 2

    def test_feature_count_matches_onehot(self):
        spec = self.make()
        assert spec.n_features == 1 + 1 + 6

    def test_total_bins(self):
        spec = self.make()
        assert spec.n_total_bins == 11 + 11 + 7

    def test_has_categorical(self):
        assert self.make().has_categorical
        spec = self.make(fields=(num_field("a"),))
        assert not spec.has_categorical

    def test_rejects_zero_records(self):
        with pytest.raises(ValueError, match="n_records"):
            self.make(n_records=0)

    def test_rejects_empty_fields(self):
        with pytest.raises(ValueError, match="field"):
            self.make(fields=())

    def test_rejects_duplicate_field_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            self.make(fields=(num_field("a"), num_field("a")))

    def test_scaled_rounds_records(self):
        spec = self.make(n_records=100)
        assert spec.scaled(10).n_records == 1000
        assert spec.scaled(0.1).n_records == 10

    def test_scaled_preserves_structure(self):
        spec = self.make()
        scaled = spec.scaled(7)
        assert scaled.fields == spec.fields
        assert scaled.name == spec.name
        assert scaled.n_features == spec.n_features

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self.make().scaled(0)

    def test_scaled_never_below_one_record(self):
        assert self.make(n_records=3).scaled(1e-6).n_records == 1

    def test_with_records(self):
        assert self.make().with_records(42).n_records == 42

    def test_task_default_binary(self):
        assert self.make().task is TaskKind.BINARY


class TestMakeNumericalFields:
    def test_count_and_names(self):
        fields = make_numerical_fields(4, prefix="q")
        assert len(fields) == 4
        assert [f.name for f in fields] == ["q0", "q1", "q2", "q3"]

    def test_target_weights_applied_in_order(self):
        fields = make_numerical_fields(3, target_weights=[2.0, 1.0])
        assert [f.target_weight for f in fields] == [2.0, 1.0, 0.0]

    def test_all_numerical(self):
        assert all(f.kind is FieldKind.NUMERICAL for f in make_numerical_fields(5))

    def test_missing_rate_propagates(self):
        fields = make_numerical_fields(2, missing_rate=0.2)
        assert all(f.missing_rate == 0.2 for f in fields)
